"""Quickstart: p-skyline queries in five minutes.

Runs the paper's Example 1 (the used-car dealership) end to end: build a
relation, express preferences as p-expressions, evaluate them with
different algorithms, and inspect the work counters.

Usage::

    python examples/quickstart.py
"""

from repro import (Relation, Stats, lowest, p_skyline, parse, ranked,
                   skyline)


def main() -> None:
    # -- the dealership of Example 1 -------------------------------------
    schema = [
        lowest("id"),
        lowest("price"),
        lowest("mileage"),
        ranked("transmission", ["manual", "automatic"]),
    ]
    cars = Relation.from_records(
        [
            {"id": 1, "price": 11500, "mileage": 50000,
             "transmission": "automatic"},
            {"id": 2, "price": 11500, "mileage": 60000,
             "transmission": "manual"},
            {"id": 3, "price": 12000, "mileage": 50000,
             "transmission": "manual"},
            {"id": 4, "price": 12000, "mileage": 60000,
             "transmission": "automatic"},
        ],
        schema,
    )
    print(f"relation: {cars}")

    # -- the four preferences of Example 1 ---------------------------------
    # `&` is prioritized accumulation (left side more important),
    # `*` is Pareto accumulation (equal importance).
    expressions = {
        "only price matters": "price",
        "Pareto on price/mileage, transmission breaks ties":
            "(price * mileage) & transmission",
        "manual shift, but never for an extra charge":
            "(price & transmission) * mileage",
        "lexicographic: mileage, then transmission, then price":
            "mileage & transmission & price",
    }
    for description, text in expressions.items():
        result = p_skyline(cars, text)
        ids = sorted(r["id"] for r in result.to_records())
        print(f"\n  {description}\n    pi = {parse(text)}\n"
              f"    best cars: {ids}")

    # -- plain skylines are the special case with no priorities ------------
    sky = skyline(cars.project(["price", "mileage"]))
    print(f"\nplain skyline on (price, mileage): "
          f"{sorted(r['price'] for r in sky.to_records())}")

    # -- every algorithm gives the same answer; stats show the work --------
    print("\nalgorithm comparison on '(price & transmission) * mileage':")
    for algorithm in ("naive", "bnl", "sfs", "less", "dc", "osdc"):
        stats = Stats()
        result = p_skyline(cars, "(price & transmission) * mileage",
                           algorithm=algorithm, stats=stats)
        ids = sorted(r["id"] for r in result.to_records())
        print(f"  {algorithm:6s} -> {ids}   "
              f"(dominance tests: {stats.dominance_tests})")


if __name__ == "__main__":
    main()
