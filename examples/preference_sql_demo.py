"""Preference SQL in action: declarative queries with priorities.

Registers a car inventory and runs SELECT / WHERE / PREFERRING / TOP
statements -- the Kiessling-style language the paper cites as one of the
query languages extended with Pareto and prioritized accumulation.

Usage::

    python examples/preference_sql_demo.py
"""

import numpy as np

from repro import Relation, highest, lowest, ranked
from repro.sql import PreferenceSQL


def build_inventory(n: int = 3000) -> Relation:
    rng = np.random.default_rng(11)
    schema = [
        lowest("id"),
        lowest("price"),
        lowest("mileage"),
        highest("horsepower"),
        ranked("transmission", ["manual", "automatic"]),
    ]
    records = []
    for i in range(n):
        mileage = int(rng.integers(5, 120)) * 1000
        records.append({
            "id": i,
            "price": 28000 - mileage // 8 + int(rng.integers(-20, 21)) * 100,
            "mileage": mileage,
            "horsepower": int(rng.integers(90, 400)),
            "transmission": str(rng.choice(["manual", "automatic"])),
        })
    return Relation.from_records(records, schema)


def main() -> None:
    db = PreferenceSQL()
    db.register("cars", build_inventory())
    print(f"registered tables: {db.tables()}")

    statements = [
        # plain filtering
        "SELECT id, price, mileage FROM cars "
        "WHERE price <= 18000 AND mileage < 90000 TOP 5",
        # the paper's Example 1 preference, on the whole inventory
        "SELECT id, price, mileage, transmission FROM cars "
        "PREFERRING (lowest(price) & transmission) * lowest(mileage) TOP 5",
        # mixing directions and a WHERE pre-filter
        "SELECT id, price, horsepower FROM cars "
        "WHERE transmission = 'manual' "
        "PREFERRING lowest(price) * highest(horsepower) TOP 5",
    ]
    for statement in statements:
        print(f"\nsql> {statement}")
        result = db.execute(statement)
        for record in result.to_records():
            print("   ", record)


if __name__ == "__main__":
    main()
