"""Learning a customer's priorities from their choices.

A dealer observes which cars a customer picked over which others, and
wants to learn a p-expression explaining the behaviour so future
inventory can be ranked the same way.  Demonstrates
:mod:`repro.elicitation`: example pairs in, a valid p-graph and its
p-expression out, and the learned preference replayed on fresh data.

Usage::

    python examples/elicitation_demo.py
"""

import random

import numpy as np

from repro import p_skyline, Relation, lowest
from repro.algorithms import osdc
from repro.core.dominance import Dominance
from repro.elicitation import ExamplePair, elicit
from repro.sampling import PExpressionSampler

NAMES = ("price", "mileage", "age", "distance")


def main() -> None:
    rng = random.Random(2025)
    nrng = np.random.default_rng(2025)

    # a hidden ground-truth preference the customer acts by
    hidden = PExpressionSampler(NAMES, method="counting").sample_graph(rng)
    oracle = Dominance(hidden)
    print(f"hidden preference p-graph: {hidden}")

    # observed choices: pairs where the customer picked `s` over `t`
    pairs = []
    while len(pairs) < 20:
        s = nrng.integers(0, 5, len(NAMES)).astype(float)
        t = nrng.integers(0, 5, len(NAMES)).astype(float)
        if oracle.dominates(s, t):
            pairs.append(ExamplePair(dict(zip(NAMES, s)),
                                     dict(zip(NAMES, t))))
    print(f"observed {len(pairs)} choice pairs")

    result = elicit(NAMES, pairs)
    print(f"\nlearned p-graph:      {result.graph}")
    print(f"learned p-expression: {result.expression}")
    print(f"satisfied {len(result.satisfied)}/{len(pairs)} pairs "
          f"({len(result.infeasible)} infeasible)")
    assert result.complete

    # the learned preference never contradicts the hidden one on the
    # observed pairs; replay it on a fresh inventory
    inventory = Relation.from_records(
        [dict(zip(NAMES, row))
         for row in nrng.integers(0, 30, size=(2000, len(NAMES)))],
        [lowest(name) for name in NAMES],
    )
    learned_best = p_skyline(inventory, result.expression)
    hidden_best = inventory.take(osdc(inventory.ranks, hidden))
    print(f"\nfresh inventory of {len(inventory)} cars:")
    print(f"  hidden preference keeps  {len(hidden_best):4d} cars")
    print(f"  learned preference keeps {len(learned_best):4d} cars")
    print("(the learned graph only asserts priorities the examples "
          "support, so it is weaker and keeps at least as many cars)")


if __name__ == "__main__":
    main()
