"""Maintaining a p-skyline over a live stream of offers.

A marketplace keeps the current "best deals" (the p-skyline) while offers
arrive and expire.  Demonstrates
:class:`repro.algorithms.PSkylineMaintainer`: O(|skyline|) per insertion,
promotion of retained tuples after deletions, and agreement with
recomputation from scratch.

Usage::

    python examples/streaming_updates.py [events]
"""

import sys
import time

import numpy as np

from repro import PGraph, parse
from repro.algorithms import PSkylineMaintainer, osdc

EXPRESSION = "price & (rating * shipping_days)"


def main() -> None:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    rng = np.random.default_rng(7)
    expr = parse(EXPRESSION)
    graph = PGraph.from_expression(expr)
    print(f"preference: {expr}  (price first; rating and shipping "
          f"tie-break, equally important)")

    maintainer = PSkylineMaintainer(graph, capacity=events)
    alive: list[int] = []
    inserts = deletes = 0
    start = time.perf_counter()
    for step in range(events):
        if alive and rng.random() < 0.3:
            victim = alive.pop(rng.integers(0, len(alive)))
            maintainer.delete(victim)
            deletes += 1
        else:
            offer = np.array([
                float(rng.integers(10, 500)),     # price (lower better)
                float(rng.integers(0, 50)) / 10,  # 5 - rating as rank
                float(rng.integers(1, 14)),       # shipping days
            ])
            alive.append(maintainer.insert(offer))
            inserts += 1
    elapsed = time.perf_counter() - start
    print(f"processed {inserts} inserts + {deletes} deletes in "
          f"{elapsed:.2f}s ({events / elapsed:,.0f} events/s)")
    print(f"alive offers: {maintainer.num_alive}, "
          f"current p-skyline: {maintainer.skyline_ids().size} offers")

    # cross-check against recomputation from scratch
    alive_ids = np.array(sorted(alive))
    recomputed = alive_ids[osdc(maintainer._ranks[alive_ids], graph)]
    assert set(recomputed.tolist()) == \
        set(maintainer.skyline_ids().tolist())
    print("matches a from-scratch OSDC recomputation — maintained "
          "answer is exact")

    print("\ncurrent best deals (price rank, 5-rating, days):")
    for row in maintainer.skyline_ranks()[:8]:
        print(f"  price={row[0]:5.0f}  rating={5 - row[1]:.1f}  "
              f"ships in {row[2]:.0f}d")


if __name__ == "__main__":
    main()
