"""Out-of-core p-skylines: the paper's Section 8 future-work question.

Runs the same query through the three external-memory operators over
simulated paged storage and reports wall-clock plus *page I/O* -- the
metric that matters when the input does not fit in RAM.  The external
OSDC keeps the output-sensitive behaviour: tiny answers cost a handful
of passes regardless of n.

Usage::

    python examples/external_memory.py [rows]
"""

import sys
import time

import numpy as np

from repro import PGraph, Stats, parse
from repro.algorithms import external_bnl, external_osdc, external_sfs


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    rng = np.random.default_rng(3)
    data = np.round(rng.normal(size=(rows, 6)), 2)
    graph = PGraph.from_expression(
        parse("(A0 & A1) * A2 * (A3 & (A4 * A5))"),
        names=[f"A{i}" for i in range(6)])
    page_size = 512
    pages = (rows + page_size - 1) // page_size
    print(f"input: {rows} tuples over 6 attributes = {pages} pages of "
          f"{page_size}\npreference: (A0 & A1) * A2 * (A3 & (A4 * A5))\n")
    print(f"{'operator':15s} {'time':>9s} {'page reads':>11s} "
          f"{'page writes':>12s} {'v':>6s}")
    for name, function, options in [
        ("external-bnl", external_bnl, {"window_pages": 8}),
        ("external-sfs", external_sfs, {"buffer_pages": 16}),
        ("external-osdc", external_osdc, {"memory_budget": 4096}),
    ]:
        stats = Stats()
        start = time.perf_counter()
        result = function(data, graph, stats=stats, page_size=page_size,
                          **options)
        elapsed = time.perf_counter() - start
        print(f"{name:15s} {elapsed*1000:7.1f}ms {stats.io_reads:11d} "
              f"{stats.io_writes:12d} {result.size:6d}")
    print("\nSame answer from all three. BNL reads the fewest pages when "
          "the answer fits its window\nbut pays a tuple-at-a-time CPU "
          "cost; the external OSDC stays output-sensitive:\ntry a "
          "lexicographic preference (tiny v) or a skyline over "
          "anti-correlated data (huge v)\nand watch its page counts "
          "track the output.")


if __name__ == "__main__":
    main()
