"""Scouting NBA player seasons with prioritized skylines (Figure 6 data).

Uses the NBA-style simulated data set (21,959 player seasons over 14
stats, larger is better) and contrasts three scouting philosophies:

* a plain skyline over the five core stats -- hundreds of candidates;
* "scoring first": points dominate, the rest is tie-breaking;
* "two-way player": defense (steals * blocks) and offense (points)
  equally important, both above playmaking.

Also demonstrates the output-size estimator (Section 8 / future work)
and the algorithm chooser built on it.

Usage::

    python examples/nba_analysis.py [rows]
"""

import sys

import numpy as np

from repro import Relation, Stats, highest, p_skyline
from repro.data.nba import NBA_ATTRIBUTES, nba_dataset
from repro.estimation import choose_algorithm, estimate_pskyline_size
from repro.core.parser import parse
from repro.core.pgraph import PGraph


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 21_959
    data = nba_dataset(rows)
    schema = [highest(name) for name in NBA_ATTRIBUTES]
    seasons = Relation.from_records(
        [dict(zip(NBA_ATTRIBUTES, row)) for row in data], schema)
    print(f"data set: {seasons}")

    queries = {
        "plain skyline (five core stats)":
            "pts * reb * asts * stl * blk",
        "scoring first, then boards, then the rest":
            "pts & reb & (asts * stl * blk)",
        "two-way player":
            "((stl * blk) & pf) * (pts & fga)",
        "minutes-weighted veteran":
            "(gp & minutes) * (pts & (reb * asts))",
    }

    rng = np.random.default_rng(0)
    for description, text in queries.items():
        expr = parse(text)
        graph = PGraph.from_expression(expr)
        names = list(expr.attributes())
        ranks = -data[:, [NBA_ATTRIBUTES.index(n) for n in names]]
        estimate = estimate_pskyline_size(ranks, graph, rng,
                                          sample_size=128)
        picked = choose_algorithm(ranks, graph, rng, sample_size=128)
        stats = Stats()
        result = p_skyline(seasons, expr, algorithm=picked, stats=stats)
        print(f"\n{description}")
        print(f"  pi            = {expr}")
        print(f"  estimated v   ~ {estimate:8.1f}")
        print(f"  chosen algo   = {picked}")
        print(f"  actual v      = {len(result)}  "
              f"({100 * len(result) / rows:.2f}% of seasons)")
        best = max(result.to_records(), key=lambda r: r["pts"])
        print(f"  top scorer in answer: {best['pts']:.0f} pts, "
              f"{best['reb']:.0f} reb, {best['asts']:.0f} ast")


if __name__ == "__main__":
    main()
