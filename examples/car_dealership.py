"""Example 2 of the paper: a realistic multi-priority car search.

A customer looks for a low-mileage (M) car; among barely-used models she
wants one available nearby (D) for a good price (P), possibly still under
warranty (W) -- she will pay more for a warranty but not drive farther.
All else being equal she prefers heated seats (H) and a manual
transmission (T):

    M & ((D & W) * P) & (T * H)

This script builds a synthetic inventory, inspects the p-graph (Figure 1)
and compares the p-skyline with the plain skyline to show how priorities
shrink the answer.

Usage::

    python examples/car_dealership.py [inventory_size]
"""

import sys

import numpy as np

from repro import (PGraph, Relation, highest, lowest, p_skyline, parse,
                   ranked, skyline)

EXPRESSION = "M & ((D & W) * P) & (T * H)"


def build_inventory(n: int, seed: int = 42) -> Relation:
    rng = np.random.default_rng(seed)
    mileage_band = rng.choice([20, 30, 40, 50, 60], size=n)  # thousands
    records = []
    for i in range(n):
        mileage = int(mileage_band[i])
        base_price = 25_000 - mileage * 220
        records.append({
            "id": i,
            "M": mileage,
            "D": float(rng.choice([2, 5, 10, 25, 60])),       # miles away
            "W": int(rng.integers(0, 3)),                     # years left
            "P": base_price + int(rng.integers(-15, 16)) * 100,
            "T": str(rng.choice(["manual", "automatic"])),
            "H": str(rng.choice(["heated", "plain"])),
        })
    schema = [
        lowest("id"),
        lowest("M"),
        lowest("D"),
        highest("W"),
        lowest("P"),
        ranked("T", ["manual", "automatic"]),
        ranked("H", ["heated", "plain"]),
    ]
    return Relation.from_records(records, schema)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    inventory = build_inventory(n)
    print(f"inventory: {inventory}")

    expr = parse(EXPRESSION)
    graph = PGraph.from_expression(expr)
    print(f"\npreference: {expr}")
    print(f"p-graph (transitive reduction): {graph}")
    print(f"roots: {graph.num_roots}, "
          f"depths: {dict(zip(graph.names, graph.depths))}")

    answer = p_skyline(inventory, expr)
    plain = skyline(inventory.project(list(expr.attributes())))
    print(f"\np-skyline size:     {len(answer):5d}  "
          f"({100 * len(answer) / n:.2f}% of inventory)")
    print(f"plain skyline size: {len(plain):5d}  "
          f"({100 * len(plain) / n:.2f}% of inventory)")
    print("\nThe p-skyline is always a subset of the skyline "
          "(Proposition 2); priorities prune the rest.")

    print("\ntop picks:")
    for record in answer.to_records()[:8]:
        print(f"  #{record['id']:<6} {record['M']}k miles, "
              f"{record['D']:.0f} mi away, {record['W']}y warranty, "
              f"${record['P']}, {record['T']}, {record['H']}")


if __name__ == "__main__":
    main()
