"""The Section 7.1 benchmarking framework: uniform random p-expressions.

Demonstrates the two sampling back ends (exact enumeration for small d,
CNF + SampleSAT for large d), validates Theorem 4 on the samples, and
shows how p-graph topology correlates with output size -- the paper's
observation that "highly-prioritized p-expressions (those with few roots)
are likely to produce smaller p-skylines".

Usage::

    python examples/preference_sampling.py
"""

import random
from collections import Counter

import numpy as np

from repro.algorithms import osdc
from repro.data.gaussian import equicorrelated_gaussian
from repro.sampling import PExpressionSampler, count_pgraphs, decompose


def main() -> None:
    rng = random.Random(2015)

    # -- exact sampling for small d ----------------------------------------
    print("labelled p-graph counts:",
          {d: count_pgraphs(d) for d in range(1, 6)})
    exact = PExpressionSampler(["A", "B", "C"], method="exact")
    counts = Counter()
    for _ in range(1900):
        counts[exact.sample_graph(rng).closure] += 1
    print(f"\nexact sampler at d=3: {len(counts)} distinct graphs "
          f"(expected {count_pgraphs(3)}), frequencies "
          f"{min(counts.values())}..{max(counts.values())} "
          f"(uniform would be 100)")

    # -- SampleSAT for large d (the paper uses f = 0.5, d up to 20) -------
    sampler = PExpressionSampler([f"A{i}" for i in range(12)], f=0.5)
    print("\nfive uniform random p-expressions over 12 attributes:")
    for _ in range(5):
        graph = sampler.sample_graph(rng)
        expr = decompose(graph)
        assert graph.is_valid()  # Theorem 4 holds for every sample
        print(f"  roots={graph.num_roots:2d} edges={graph.num_edges:3d}  "
              f"{expr}")

    # -- topology vs. output size (the Figure 5 effect) --------------------
    print("\np-graph roots vs. p-skyline size "
          "(20k uncorrelated Gaussian tuples, d=8):")
    data_rng = np.random.default_rng(7)
    data = equicorrelated_gaussian(20_000, 8, 1.0, data_rng)
    sampler8 = PExpressionSampler([f"A{i}" for i in range(8)])
    by_roots: dict[int, list[int]] = {}
    for _ in range(60):
        graph = sampler8.sample_graph(rng)
        size = osdc(data, graph).size
        by_roots.setdefault(graph.num_roots, []).append(size)
    for roots in sorted(by_roots):
        sizes = by_roots[roots]
        print(f"  {roots} roots: mean v = {np.mean(sizes):8.1f}  "
              f"({len(sizes)} queries)")
    print("\nFewer roots => more prioritization => smaller outputs, "
          "matching Section 7.2.")


if __name__ == "__main__":
    main()
