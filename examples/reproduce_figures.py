"""Regenerate every figure of the paper's evaluation (Section 7).

Runs the full benchmark harness and prints one text table per figure
series -- the same rows the paper plots:

* E1  Figure 4 (left):  mean time vs. measured data correlation
* E2  Figure 4 (right): mean time vs. output size + polynomial fits
* E3  Figure 5 (top):   mean time by number of attributes
* E4  Figure 5 (bottom): mean time by number of p-graph roots
* E5/E6  Figure 6: NBA workload by d and by output size
* E7/E8  Figure 7: CoverType workload by d and by output size
* A5  scaling sanity: OSDC on growing CI inputs

Usage::

    python examples/reproduce_figures.py [quick|default|full] [--out FILE]

``quick`` takes seconds, ``default`` (used for EXPERIMENTS.md) takes
minutes, ``full`` is the paper's scale (hours in pure Python).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.bench.ascii_plot import line_plot, series_from_grouped
from repro.bench.harness import (geometric_buckets, group_records, run_pool,
                                 time_algorithm)
from repro.bench.regression import fit_polynomial
from repro.bench.report import format_series, format_table
from repro.bench.workloads import (DEFAULT, FULL, PAPER_ALGORITHMS, QUICK,
                                   covertype_tasks, gaussian_tasks,
                                   nba_tasks, scaling_tasks)

SCALES = {"quick": QUICK, "default": DEFAULT, "full": FULL}


def emit(text: str, sink) -> None:
    print(text)
    if sink is not None:
        sink.write(text + "\n")


def figure4_and_5(scale, sink) -> None:
    start = time.time()
    tasks = gaussian_tasks(scale)
    records = run_pool(PAPER_ALGORITHMS, tasks, repeats=scale.repeats)
    emit(f"\n[gaussian workload: {len(tasks)} tasks x "
         f"{len(PAPER_ALGORITHMS)} algorithms in {time.time() - start:.1f}s]",
         sink)

    grouped = group_records(
        records, key=lambda r: round(r.metadata["measured_correlation"], 2))
    emit(format_series("E1 / Figure 4 (left): time vs. data correlation",
                       grouped, PAPER_ALGORITHMS, "corr"), sink)

    buckets = geometric_buckets(records)
    grouped_v = group_records(records, key=buckets)
    emit(format_series("E2 / Figure 4 (right): time vs. output size "
                       "(geometric buckets)",
                       grouped_v, PAPER_ALGORITHMS, "v-bucket"), sink)
    emit(line_plot(series_from_grouped(grouped_v, PAPER_ALGORITHMS),
                   log_x=True, log_y=True, x_label="v",
                   y_label="seconds", width=56, height=12), sink)
    rows = []
    for algorithm in PAPER_ALGORITHMS:
        points = [(r.output_size, r.seconds) for r in records
                  if r.algorithm == algorithm]
        if len(points) >= 3:
            fit = fit_polynomial([p[0] for p in points],
                                 [p[1] for p in points], degree=2)
            rows.append([algorithm] + [f"{c:+.3e}" for c in
                                       fit.coefficients]
                        + [f"{fit.r_squared:.3f}"])
    emit("\n2nd-order polynomial fits time(v) [seconds]:", sink)
    emit(format_table(["algorithm", "c0", "c1", "c2", "R^2"], rows), sink)

    grouped_d = group_records(records, key=lambda r: r.num_attributes)
    emit(format_series("E3 / Figure 5 (top): time vs. number of attributes",
                       grouped_d, PAPER_ALGORITHMS, "d"), sink)

    grouped_roots = group_records(records, key=lambda r: r.num_roots)
    emit(format_series("E4 / Figure 5 (bottom): time vs. number of roots",
                       grouped_roots, PAPER_ALGORITHMS, "roots"), sink)

    sizes_by_roots = group_records(
        [r for r in records if r.algorithm == "osdc"],
        key=lambda r: r.num_roots)
    rows = [[roots, np.mean([r.output_size for r in records
                             if r.num_roots == roots])]
            for roots in sorted(sizes_by_roots)]
    emit("\nmean output size by number of roots "
         "(the Section 7.2 observation):", sink)
    emit(format_table(["roots", "mean v"], rows), sink)


def figure6(scale, sink) -> None:
    start = time.time()
    tasks = nba_tasks(scale)
    records = run_pool(PAPER_ALGORITHMS, tasks, repeats=scale.repeats)
    emit(f"\n[nba workload: {len(tasks)} tasks in "
         f"{time.time() - start:.1f}s]", sink)
    grouped_d = group_records(records, key=lambda r: r.num_attributes)
    emit(format_series("E5 / Figure 6 (left): NBA, time vs. d",
                       grouped_d, PAPER_ALGORITHMS, "d"), sink)
    grouped_v = group_records(records, key=geometric_buckets(records))
    emit(format_series("E6 / Figure 6 (right): NBA, time vs. output size",
                       grouped_v, PAPER_ALGORITHMS, "v-bucket"), sink)


def figure7(scale, sink) -> None:
    start = time.time()
    tasks = covertype_tasks(scale)
    records = run_pool(PAPER_ALGORITHMS, tasks, repeats=scale.repeats)
    emit(f"\n[covertype workload: {len(tasks)} tasks in "
         f"{time.time() - start:.1f}s]", sink)
    grouped_d = group_records(records, key=lambda r: r.num_attributes)
    emit(format_series("E7 / Figure 7 (left): CoverType, time vs. d",
                       grouped_d, PAPER_ALGORITHMS, "d"), sink)
    grouped_v = group_records(records, key=geometric_buckets(records))
    emit(format_series("E8 / Figure 7 (right): CoverType, time vs. "
                       "output size", grouped_v, PAPER_ALGORITHMS,
                       "v-bucket"), sink)


def scaling(sink) -> None:
    rows = []
    for n in (5_000, 20_000, 80_000):
        for ranks, graph, _ in scaling_tasks((n,), d=6):
            record = time_algorithm("osdc-linear", ranks, graph)
            rows.append([n, record.output_size,
                         record.seconds * 1000,
                         record.seconds * 1e9 / n])
    emit("\n== A5: OSDC-linear scaling on CI data "
         "(ns/tuple should stay ~flat) ==", sink)
    emit(format_table(["n", "v", "time [ms]", "ns/tuple"], rows), sink)


def main() -> None:
    scale_name = "quick"
    out_path = None
    arguments = sys.argv[1:]
    while arguments:
        argument = arguments.pop(0)
        if argument == "--out":
            out_path = arguments.pop(0)
        elif argument in SCALES:
            scale_name = argument
        else:
            raise SystemExit(f"unknown argument {argument!r}; "
                             f"use one of {sorted(SCALES)} or --out FILE")
    scale = SCALES[scale_name]
    sink = open(out_path, "w") if out_path else None
    emit(f"# p-skyline figure reproduction -- scale: {scale.name}", sink)
    emit(f"# gaussian: n={scale.gaussian_rows} cols="
         f"{scale.gaussian_columns}; nba: n={scale.nba_rows}; "
         f"covertype: n={scale.covertype_rows}", sink)
    figure4_and_5(scale, sink)
    figure6(scale, sink)
    figure7(scale, sink)
    scaling(sink)
    if sink is not None:
        sink.close()
        print(f"\n(series also written to {out_path})")


if __name__ == "__main__":
    main()
