"""repro: output-sensitive evaluation of prioritized skyline queries.

A complete reproduction of Meneghetti, Mindolin, Ciaccia and Chomicki,
*"Output-sensitive Evaluation of Prioritized Skyline Queries"*,
SIGMOD 2015 -- the OSDC algorithm, its p-screening machinery, scan-based
baselines (BNL / SFS / LESS / SALSA), the uniform p-expression sampling
framework, the equicorrelated synthetic data generator, and a benchmark
harness regenerating every figure of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import Relation, lowest, highest, p_skyline

    cars = Relation.from_records(
        [{"price": 11500, "mileage": 50000, "hp": 190}, ...],
        [lowest("price"), lowest("mileage"), highest("hp")],
    )
    best = p_skyline(cars, "(price & hp) * mileage")
"""

from .algorithms import REGISTRY, Stats, get_algorithm
from .core import (Att, Attribute, Direction, Dominance, ExtensionOrder,
                   ParseError, Pareto, PExpr, PGraph, Prioritized, Relation,
                   highest, lex, lowest, pareto, parse, prioritized, ranked,
                   sky)
from .core.preferring import (PreferringClause, evaluate_preferring,
                              parse_preferring)
from .core.query import p_skyline, p_skyline_batch, skyline
from .core.sharding import (ShardMap, ShardSnapshot, ShardedPSkylineMaintainer,
                            ShardedRelation, sharded_pskyline)
from .core.checks import VerificationError, verify_pskyline
from .core.explain import PairExplanation, explain_not_maximal, explain_pair
from .core.semantics import equivalent, normal_form, refines, to_dot
from .core.serialize import (expression_from_json, expression_to_json,
                             load_relation, pgraph_from_json,
                             pgraph_to_json, save_relation)
from .engine import (CancellationToken, CompiledPreference, EngineError,
                     ExecutionContext, MemoryBudgetExceeded,
                     PreferenceCache, QueryCancelled, QueryTimeout,
                     TraceBuffer, TraceEvent, compile_preference,
                     default_cache)
from .planner import Plan, Planner

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # query API
    "p_skyline",
    "p_skyline_batch",
    "skyline",
    "parse_preferring",
    "evaluate_preferring",
    "PreferringClause",
    # preference model
    "Attribute",
    "Direction",
    "lowest",
    "highest",
    "ranked",
    "Att",
    "PExpr",
    "Pareto",
    "Prioritized",
    "pareto",
    "prioritized",
    "sky",
    "lex",
    "parse",
    "ParseError",
    "equivalent",
    "refines",
    "normal_form",
    "to_dot",
    "PGraph",
    "Dominance",
    "ExtensionOrder",
    "Relation",
    # sharded storage
    "ShardMap",
    "ShardSnapshot",
    "ShardedPSkylineMaintainer",
    "ShardedRelation",
    "sharded_pskyline",
    # algorithms
    "REGISTRY",
    "Stats",
    "get_algorithm",
    "Planner",
    "Plan",
    # engine
    "ExecutionContext",
    "CancellationToken",
    "CompiledPreference",
    "PreferenceCache",
    "compile_preference",
    "default_cache",
    "TraceBuffer",
    "TraceEvent",
    "EngineError",
    "QueryTimeout",
    "QueryCancelled",
    "MemoryBudgetExceeded",
    "verify_pskyline",
    "explain_pair",
    "explain_not_maximal",
    "PairExplanation",
    "VerificationError",
    "expression_to_json",
    "expression_from_json",
    "pgraph_to_json",
    "pgraph_from_json",
    "save_relation",
    "load_relation",
]
