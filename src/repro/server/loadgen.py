"""A concurrent load generator with elicitation-derived workloads.

Realistic service load is *correlated*: many users ask near-identical
questions.  The workload builder models this with the elicitation
machinery of Mindolin & Chomicki (:mod:`repro.elicitation.greedy`): a
handful of hidden attribute-priority chains play the role of latent
user intents, and each statement elicits a p-expression from a random
*subset* of one chain's example pairs.  Overlapping subsets of the same
chain yield overlapping -- frequently identical -- p-graphs, so the
stream repeats itself the way real query logs do, which is exactly
what exercises the server's result cache.

:func:`run_load` drives a server with N blocking clients on threads and
reports sustained throughput, latency quantiles and the shed/cached/
error mix; the ``BENCH_7`` perf gate and the ``repro-skyline load-gen``
CLI are thin wrappers around it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..elicitation.greedy import ExamplePair, elicit
from .client import SkylineClient

__all__ = ["correlated_statements", "run_load", "LoadReport"]


def _chain_pairs(chain: list[str]) -> list[ExamplePair]:
    """Example pairs whose only consistent explanation is the priority
    chain ``chain[0] > chain[1] > ...`` (each adjacent pair trades a win
    on the higher attribute for a loss on the lower one)."""
    pairs = []
    for upper, lower in zip(chain, chain[1:]):
        superior = {name: 0.5 for name in chain}
        inferior = {name: 0.5 for name in chain}
        superior[upper] = 0.0
        inferior[upper] = 1.0
        superior[lower] = 1.0
        inferior[lower] = 0.0
        pairs.append(ExamplePair(superior, inferior))
    return pairs


def correlated_statements(names, count: int, *, table: str = "data",
                          seed: int = 0, intents: int = 6,
                          where_fraction: float = 0.25,
                          top_fraction: float = 0.25,
                          pareto_fraction: float = 0.0) -> list[str]:
    """``count`` Preference SQL statements drawn from ``intents`` hidden
    priority chains over ``names`` (see the module docstring).

    ``pareto_fraction`` statements ask the plain Pareto of their
    intent's chain -- the elicitation starting point of a user who has
    given no example pairs yet.  A Pareto spelling is contained in
    every elicited refinement of the same chain, which is exactly the
    shared-base shape the batch fusion layer screens from.  (The extra
    random draw only happens when the fraction is positive, so seeded
    streams of existing callers are unchanged.)
    """
    rng = np.random.default_rng(seed)
    names = list(names)
    chains = []
    for _ in range(max(1, intents)):
        size = int(rng.integers(2, min(4, len(names)) + 1))
        chain = list(rng.choice(names, size=size, replace=False))
        chains.append((chain, _chain_pairs(chain)))
    statements = []
    for _ in range(count):
        chain, pairs = chains[int(rng.integers(len(chains)))]
        if pareto_fraction and rng.random() < pareto_fraction:
            pairs = []  # ask the unrefined intent itself
        if len(pairs) > 1:
            keep = sorted(
                rng.choice(len(pairs),
                           size=int(rng.integers(1, len(pairs) + 1)),
                           replace=False))
            subset = [pairs[i] for i in keep]
        else:
            subset = pairs
        result = elicit(chain, subset)
        if result.expression is not None:
            preferring = str(result.expression)
        else:  # no edges learned: fall back to the Pareto of the intent
            preferring = " * ".join(chain)
        clauses = [f"SELECT * FROM {table}"]
        if rng.random() < where_fraction:
            column = names[int(rng.integers(len(names)))]
            clauses.append(f"WHERE {column} < {rng.uniform(0.5, 2.0):.2f}")
        clauses.append(f"PREFERRING {preferring}")
        if rng.random() < top_fraction:
            clauses.append(f"TOP {int(rng.integers(1, 16))}")
        statements.append(" ".join(clauses))
    return statements


@dataclass
class LoadReport:
    """What one :func:`run_load` run measured."""

    queries: int
    elapsed_s: float
    qps: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    cached: int
    shed: int
    errors: int
    server: dict | None

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "elapsed_s": self.elapsed_s,
            "qps": self.qps,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
            "cached": self.cached,
            "shed": self.shed,
            "errors": self.errors,
            "server": self.server,
        }


def run_load(address, statements, *, clients: int = 4, repeat: int = 1,
             timeout: float | None = 30.0,
             no_cache: bool = False, batch: int = 0) -> LoadReport:
    """Replay ``statements`` against a server from ``clients`` threads.

    Each client walks the whole statement list ``repeat`` times starting
    at its own offset (so concurrent clients hit overlapping statements
    at different moments -- the cache-friendly pattern of a shared
    workload).  Latencies are measured per request, client-side.

    With ``batch > 0`` each client sends its walk as ``"statements"``
    batch requests of that size instead of one request per statement --
    the server answers cache hits per statement and runs the misses
    through the fused batch path.  Per-statement latencies are then the
    batch round-trip amortised over its statements; outcomes are still
    counted per statement from the per-statement payloads.
    """
    statements = list(statements)
    if not statements:
        raise ValueError("no statements to run")
    barrier = threading.Barrier(clients + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    outcome = {"cached": 0, "shed": 0, "errors": 0}

    def _tally(local: dict, response: dict) -> None:
        if not response.get("ok"):
            local["errors"] += 1
        elif response.get("partial"):
            local["shed"] += 1
        elif response.get("cached"):
            local["cached"] += 1

    def _client(offset: int) -> None:
        with SkylineClient(address, socket_timeout=timeout) as client:
            barrier.wait()
            local_lat = []
            local = {"cached": 0, "shed": 0, "errors": 0}
            for round_ in range(repeat):
                walk = [statements[(offset + position) % len(statements)]
                        for position in range(len(statements))]
                if batch > 0:
                    for start in range(0, len(walk), batch):
                        chunk = walk[start:start + batch]
                        started = time.perf_counter()
                        response = client.query_batch(
                            chunk, timeout=timeout, no_cache=no_cache,
                            raise_errors=False)
                        per_ms = ((time.perf_counter() - started) * 1e3
                                  / len(chunk))
                        local_lat.extend([per_ms] * len(chunk))
                        results = response.get("results") \
                            or [None] * len(chunk)
                        for entry in results:
                            if entry is None:
                                entry = {"ok": response.get("ok", False)}
                            _tally(local, entry)
                    continue
                for statement in walk:
                    started = time.perf_counter()
                    response = client.query(
                        statement, timeout=timeout, no_cache=no_cache,
                        raise_errors=False)
                    local_lat.append(
                        (time.perf_counter() - started) * 1e3)
                    _tally(local, response)
            with lock:
                latencies.extend(local_lat)
                for key in outcome:
                    outcome[key] += local[key]

    threads = [threading.Thread(target=_client, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    server_stats = None
    try:
        with SkylineClient(address, socket_timeout=timeout) as client:
            server_stats = client.stats()
    except Exception:
        pass
    array = np.asarray(latencies, dtype=np.float64)
    return LoadReport(
        queries=int(array.size),
        elapsed_s=float(elapsed),
        qps=float(array.size / elapsed) if elapsed > 0 else 0.0,
        mean_ms=float(array.mean()) if array.size else 0.0,
        p50_ms=float(np.percentile(array, 50)) if array.size else 0.0,
        p99_ms=float(np.percentile(array, 99)) if array.size else 0.0,
        max_ms=float(array.max()) if array.size else 0.0,
        cached=outcome["cached"],
        shed=outcome["shed"],
        errors=outcome["errors"],
        server=server_stats,
    )
