"""The server-side result cache.

A loaded service sees thousands of *similar* queries over a handful of
relations; once a statement's answer is computed (and serialised), the
next identical statement should cost a dictionary lookup.  The cache is
an LRU keyed on

* the **relation identity and write version** -- ``id()`` of the
  relation object plus :attr:`~repro.core.sharding.ShardedRelation.
  version` (immutable :class:`~repro.core.relation.Relation` objects
  pin version 0 forever);
* the **compiled-preference key** of the statement's PREFERRING graph
  (:func:`repro.engine.compiled.graph_key` -- names, closure, orders),
  so two textual statements denoting the same preference share a slot;
* the remaining **query shape** (WHERE / SELECT / ORDER BY / TOP,
  algorithm, mode), canonicalised from the parsed AST.

Staleness is impossible by construction: entries remember the write
version they were computed at, every lookup passes the relation's
*current* version, and a mismatch is treated as a miss (the dead entry
is dropped).  On top of that safety net, the server registers a
:meth:`~repro.core.sharding.ShardedRelation.add_write_listener` hook so
a write-heavy relation proactively evicts its entries instead of
letting them rot until their LRU slot is needed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["CachedResult", "ResultCache"]


@dataclass
class CachedResult:
    """One cached answer: the serialised payload plus its provenance."""

    payload: dict
    source_id: int
    version: int
    #: Work-counter snapshot of the miss that produced the entry
    #: (reported back on hits so clients can see what the answer cost).
    extra: dict = field(default_factory=dict)


class ResultCache:
    """A thread-safe LRU of serialised query answers.

    ``hits`` / ``misses`` / ``evictions`` / ``invalidations`` expose the
    cache's effectiveness; the bench gate reports the hit ratio and the
    tests pin the eviction bound.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: OrderedDict[Hashable, CachedResult] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable, version: int) -> CachedResult | None:
        """The entry under ``key`` if it was computed at ``version``.

        A version mismatch means the relation has been written since the
        entry was computed: the entry is dropped and the lookup counts
        as a miss -- a cache hit can therefore never serve a stale
        answer, even if an invalidation hook was lost.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.version != version:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry

    def put(self, key: Hashable, entry: CachedResult) -> None:
        """Insert (or refresh) an entry, evicting LRU slots beyond
        ``maxsize``."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_source(self, source_id: int) -> int:
        """Drop every entry computed from the given relation identity
        (the write-listener hook); returns how many were dropped."""
        with self._lock:
            stale = [key for key, entry in self._entries.items()
                     if entry.source_id == source_id]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, Any]:
        """Counter snapshot (JSON-serialisable)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_ratio": (self.hits / lookups) if lookups else 0.0,
            }
