"""The long-lived skyline query service.

Everything below :mod:`repro.server` turns the library-call-shaped
engine stack (contexts, compiled-preference cache, warm worker pool,
sharded MVCC relations) into a network service:

* :mod:`repro.server.protocol` -- the length-prefixed JSON wire format
  shared by server, client and load generator;
* :class:`ResultCache` -- an LRU of fully-serialised answers keyed on
  (relation identity + write version, compiled-preference key, query
  shape), invalidated by :class:`~repro.core.sharding.ShardedRelation`
  write listeners and version-checked on every hit so a stale entry can
  never be served;
* :class:`SkylineServer` -- the asyncio front-end: statements are
  parsed once, executed on a bounded thread pool through the existing
  planner/engine paths, per-request deadlines and client disconnects
  propagate through :class:`~repro.engine.ExecutionContext`
  cancellation, and queue-depth admission control sheds load by
  returning a ``≻ext``-sorted progressive *prefix* of the answer
  (flagged ``"partial": true``) instead of erroring;
* :class:`SkylineClient` -- a small blocking client used by the tests,
  the CLI and the load generator;
* :mod:`repro.server.loadgen` -- a concurrent multi-client load
  generator whose correlated p-expression workloads come from the
  elicitation model (:mod:`repro.elicitation.greedy`), driving the
  ``BENCH_7`` perf gate.
"""

from .cache import ResultCache
from .client import ServerError, SkylineClient
from .protocol import (MAX_FRAME, ProtocolError, decode_frame,
                       encode_frame, read_frame, write_frame)
from .service import ServerHandle, SkylineServer, serve_in_thread

__all__ = [
    "ResultCache",
    "SkylineServer",
    "ServerHandle",
    "serve_in_thread",
    "SkylineClient",
    "ServerError",
    "ProtocolError",
    "MAX_FRAME",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
]
