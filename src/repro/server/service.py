"""The asyncio query server.

:class:`SkylineServer` turns the library stack into a long-lived
service.  The event loop only moves bytes; every statement runs on a
bounded :class:`~concurrent.futures.ThreadPoolExecutor` through the
exact :class:`~repro.sql.PreferenceSQL` paths the library exposes, so a
served answer is byte-for-byte the library answer (the differential
tests pin this).  Around that core:

* **parse once** -- statement text is parsed to a frozen AST through an
  LRU, then replayed per request via
  :meth:`~repro.sql.PreferenceSQL.execute_parsed`;
* **deadlines and disconnects** -- each request gets an
  :class:`~repro.engine.ExecutionContext` carrying the request timeout
  and a :class:`~repro.engine.context.CancellationToken`; while the
  query runs in a worker thread, the event loop keeps reading the
  client socket, so a disconnect cancels the query mid-flight (and a
  pipelined next request is buffered, not lost);
* **result cache** -- full serialised answers in a
  :class:`~repro.server.cache.ResultCache`, keyed on relation identity
  + write version, the compiled-preference ``graph_key`` and the
  canonical query shape; :class:`~repro.core.sharding.ShardedRelation`
  write listeners invalidate proactively and every hit re-checks the
  version, so stale answers are impossible;
* **admission control** -- when the executor backlog exceeds
  ``max_queue`` (or :attr:`SkylineServer.force_shed` is set), a
  preference query is *shed*: instead of erroring, a dedicated
  lightweight lane answers with the first ``shed_prefix`` rows of the
  progressive SFS scan -- by construction a ``≻ext``-sorted prefix of
  the exact skyline -- flagged ``"partial": true`` with a reason.  The
  paper's output-sensitive, progressive evaluation model is what makes
  this degraded answer principled rather than arbitrary;
* **batch fusion** -- a ``"statements"`` request answers a whole
  correlated batch in one frame: cache hits are served per statement,
  and the misses run through
  :meth:`~repro.sql.PreferenceSQL.execute_batch`, whose fusion layer
  (:mod:`repro.core.fusion`) deduplicates canonically-equal
  preferences and evaluates each packed Better-mask block once for
  every query in the batch that needs it.
"""

from __future__ import annotations

import asyncio
import atexit
import itertools
import struct
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..algorithms.base import Stats
from ..algorithms.sfs import sfs_iter
from ..core.attributes import Direction
from ..core.parser import ParseError
from ..core.pgraph import PGraph
from ..core.relation import Relation
from ..core.sharding import ShardedRelation
from ..engine.compiled import graph_key
from ..engine.context import CancellationToken, ExecutionContext
from ..engine.errors import (MemoryBudgetExceeded, QueryCancelled,
                             QueryTimeout)
from ..sql import (BatchExecutionError, PreferenceSQL, Query,
                   SqlExecutionError, SqlSyntaxError, parse_query)
from .cache import CachedResult, ResultCache
from .protocol import MAX_FRAME, ProtocolError, check_length, encode_frame

__all__ = ["SkylineServer", "ServerHandle", "serve_in_thread"]

_HEADER = struct.Struct(">I")

#: Statement-text -> parsed AST cache bound.
_PARSE_CACHE = 1024

#: Upper bound on statements per batch request.
_MAX_BATCH = 256


def _json_value(value: Any) -> Any:
    """A JSON-serialisable Python scalar for one cell."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return repr(value)
    return value


def serialize_relation(relation: Relation) -> dict:
    """``{"columns": [...], "rows": [[...], ...]}`` for a result."""
    names = list(relation.names)
    records = relation.to_records()
    rows = [[_json_value(record[name]) for name in names]
            for record in records]
    return {"columns": names, "rows": rows}


def _clause_graph(relation: Relation, clause) -> tuple[PGraph, np.ndarray]:
    """The (graph, matrix) pair :func:`~repro.core.preferring.
    evaluate_preferring` evaluates -- rebuilt here so the shed lane can
    drive the progressive iterator over exactly the same input."""
    names = clause.attributes
    columns = []
    orders = []
    for name in names:
        if name not in relation.names:
            raise SqlExecutionError(
                f"unknown attribute {name!r} in PREFERRING")
        index = relation.names.index(name)
        attribute = relation.schema[index]
        wanted = clause.directions[name]
        ranks = relation.ranks[:, index]
        if attribute.direction is Direction.RANKED:
            if wanted is Direction.MAX:
                raise ParseError(
                    f"highest({name}) is not allowed on a ranked attribute")
            columns.append(ranks)
            orders.append(attribute.order_token())
        elif wanted is attribute.direction:
            columns.append(ranks)
            orders.append(wanted.value)
        else:
            columns.append(-ranks)
            orders.append(wanted.value)
    matrix = np.column_stack(columns) if names else \
        np.empty((len(relation), 0))
    graph = PGraph.from_expression(clause.expression, names=names) \
        .with_orders(orders)
    return graph, matrix


@dataclass
class _Connection:
    """Per-connection read state: bytes received ahead of the current
    frame (the disconnect watcher buffers pipelined requests here)."""

    buffer: bytearray = field(default_factory=bytearray)
    disconnected: bool = False


class SkylineServer:
    """The asyncio front-end over a :class:`~repro.sql.PreferenceSQL`
    catalog.

    Construct, :meth:`register` relations, then either ``await
    start()`` inside an event loop or hand the server to
    :func:`serve_in_thread`.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 cache: int | ResultCache | None = 256,
                 max_inflight: int = 4, max_queue: int = 8,
                 shed_prefix: int = 32,
                 default_timeout: float | None = None,
                 algorithm: str = "osdc"):
        self.host = host
        self.port = port
        if cache is None:
            self.cache: ResultCache | None = None
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(maxsize=int(cache))
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.shed_prefix = int(shed_prefix)
        self.default_timeout = default_timeout
        self.algorithm = algorithm
        #: Force the admission controller to shed every sheddable
        #: request (deterministic degraded-path tests).
        self.force_shed = False
        self.sql = PreferenceSQL()
        self._parsed: OrderedDict[str, Query] = OrderedDict()
        self._parse_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight,
            thread_name_prefix="skyline-query")
        # Shed answers must not queue behind the very backlog they are
        # escaping, so they run on their own small lane.
        self._shed_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="skyline-shed")
        self._active = 0
        self._metrics_lock = threading.Lock()
        self._counters = {"requests": 0, "queries": 0, "hits": 0,
                          "misses": 0, "shed": 0, "errors": 0,
                          "cancelled": 0, "timeouts": 0, "batches": 0}
        self._tokens: set[CancellationToken] = set()
        self._listeners: list[tuple[ShardedRelation, Any]] = []
        self._server: asyncio.AbstractServer | None = None
        self._stopping = False
        self._request_ids = itertools.count(1)

    # -- catalog -------------------------------------------------------------
    def register(self, name: str, relation: Relation | ShardedRelation
                 ) -> None:
        """Register a relation and, for a mutable
        :class:`~repro.core.sharding.ShardedRelation`, wire its write
        listener to the result cache's invalidation hook."""
        self.sql.register(name, relation)
        if self.cache is not None and isinstance(relation, ShardedRelation):
            cache = self.cache
            source = id(relation)

            def _invalidate(_relation, _version, *,
                            _cache=cache, _source=source) -> None:
                _cache.invalidate_source(_source)

            relation.add_write_listener(_invalidate)
            self._listeners.append((relation, _invalidate))

    def tables(self) -> list[str]:
        return self.sql.tables()

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        """Bind and start accepting connections (returns immediately;
        serving happens on the running event loop)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port)

    async def stop(self, grace: float = 5.0) -> None:
        """Drain and stop: close the listener, give in-flight queries
        ``grace`` seconds to finish, then cancel the stragglers."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            with self._metrics_lock:
                if self._active == 0:
                    break
            await asyncio.sleep(0.02)
        with self._metrics_lock:
            tokens = list(self._tokens)
        for token in tokens:
            token.cancel()
        self._executor.shutdown(wait=True)
        self._shed_executor.shutdown(wait=True)
        for relation, listener in self._listeners:
            relation.remove_write_listener(listener)
        self._listeners.clear()

    # -- connection handling -------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _Connection()
        try:
            while not self._stopping:
                message = await self._recv_frame(reader, conn)
                if message is None:
                    break
                response = await self._dispatch(message, reader, conn)
                if conn.disconnected:
                    break
                if response is not None:
                    writer.write(encode_frame(response))
                    await writer.drain()
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            pass  # framing broken or peer gone: drop the connection
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _recv_frame(self, reader: asyncio.StreamReader,
                          conn: _Connection) -> dict | None:
        """One frame, honouring bytes the disconnect watcher buffered;
        ``None`` on clean EOF between frames."""
        from .protocol import decode_frame

        while len(conn.buffer) < _HEADER.size:
            chunk = await reader.read(65536)
            if not chunk:
                if conn.buffer:
                    raise ConnectionError("connection closed mid-header")
                return None
            conn.buffer.extend(chunk)
        (length,) = _HEADER.unpack(bytes(conn.buffer[:_HEADER.size]))
        check_length(length)
        total = _HEADER.size + length
        while len(conn.buffer) < total:
            chunk = await reader.read(65536)
            if not chunk:
                raise ConnectionError("connection closed mid-frame")
            conn.buffer.extend(chunk)
        payload = bytes(conn.buffer[_HEADER.size:total])
        del conn.buffer[:total]
        return decode_frame(payload)

    async def _dispatch(self, message: dict, reader: asyncio.StreamReader,
                        conn: _Connection) -> dict | None:
        request_id = message.get("id")
        with self._metrics_lock:
            self._counters["requests"] += 1
        if "op" in message:
            return self._handle_op(message, request_id)
        if "statements" in message:
            return await self._handle_batch(message, request_id, reader,
                                            conn)
        if "statement" not in message:
            return self._error(request_id, "protocol",
                               "request needs a 'statement', 'statements' "
                               "or an 'op'")
        return await self._handle_query(message, request_id, reader, conn)

    def _handle_op(self, message: dict, request_id) -> dict:
        op = message.get("op")
        if op == "ping":
            return {"id": request_id, "ok": True, "pong": True}
        if op == "tables":
            return {"id": request_id, "ok": True, "tables": self.tables()}
        if op == "stats":
            return {"id": request_id, "ok": True, "server": self.stats()}
        return self._error(request_id, "protocol", f"unknown op {op!r}")

    async def _handle_query(self, message: dict, request_id,
                            reader: asyncio.StreamReader,
                            conn: _Connection) -> dict | None:
        statement = message.get("statement")
        if not isinstance(statement, str):
            return self._error(request_id, "protocol",
                               "'statement' must be a string")
        timeout = message.get("timeout", self.default_timeout)
        if timeout is not None and (not isinstance(timeout, (int, float))
                                    or timeout <= 0):
            return self._error(request_id, "protocol",
                               "'timeout' must be positive seconds")
        algorithm = message.get("algorithm", self.algorithm)
        no_cache = bool(message.get("no_cache", False))

        shed = self._should_shed()
        executor = self._shed_executor if shed else self._executor
        token = CancellationToken()
        with self._metrics_lock:
            self._active += 1
            self._tokens.add(token)
        loop = asyncio.get_running_loop()
        exec_task = asyncio.ensure_future(loop.run_in_executor(
            executor, self._run_request, statement, request_id,
            timeout, algorithm, no_cache, shed, token))
        try:
            await self._watch(exec_task, reader, conn, token)
            return exec_task.result()
        finally:
            with self._metrics_lock:
                self._active -= 1
                self._tokens.discard(token)

    async def _handle_batch(self, message: dict, request_id,
                            reader: asyncio.StreamReader,
                            conn: _Connection) -> dict | None:
        """A ``"statements"`` request: many statements answered in one
        frame.  Cache hits are served per statement; the misses run
        through :meth:`~repro.sql.PreferenceSQL.execute_batch`, whose
        fusion layer deduplicates preferences and shares packed
        Better-masks across the batch.  Batch requests always run on
        the main executor (the shed lane answers single statements)."""
        statements = message.get("statements")
        if (not isinstance(statements, list) or not statements
                or not all(isinstance(s, str) for s in statements)):
            return self._error(
                request_id, "protocol",
                "'statements' must be a non-empty list of strings")
        if len(statements) > _MAX_BATCH:
            return self._error(
                request_id, "protocol",
                f"batch too large ({len(statements)} statements; "
                f"max {_MAX_BATCH})")
        timeout = message.get("timeout", self.default_timeout)
        if timeout is not None and (not isinstance(timeout, (int, float))
                                    or timeout <= 0):
            return self._error(request_id, "protocol",
                               "'timeout' must be positive seconds")
        algorithm = message.get("algorithm", self.algorithm)
        no_cache = bool(message.get("no_cache", False))

        token = CancellationToken()
        with self._metrics_lock:
            self._active += 1
            self._tokens.add(token)
        loop = asyncio.get_running_loop()
        exec_task = asyncio.ensure_future(loop.run_in_executor(
            self._executor, self._run_batch, statements, request_id,
            timeout, algorithm, no_cache, token))
        try:
            await self._watch(exec_task, reader, conn, token)
            return exec_task.result()
        finally:
            with self._metrics_lock:
                self._active -= 1
                self._tokens.discard(token)

    async def _watch(self, exec_task: asyncio.Future,
                     reader: asyncio.StreamReader, conn: _Connection,
                     token: CancellationToken) -> None:
        """Await the executor future while watching the socket: EOF
        cancels the running query; pipelined bytes are buffered."""
        while not exec_task.done():
            peek = asyncio.ensure_future(reader.read(65536))
            done, _ = await asyncio.wait(
                {exec_task, peek}, return_when=asyncio.FIRST_COMPLETED)
            if peek in done:
                data = peek.result()
                if not data:
                    conn.disconnected = True
                    token.cancel()
                    try:
                        await exec_task
                    except Exception:
                        pass
                    return
                conn.buffer.extend(data)
            else:
                peek.cancel()
                try:
                    data = await peek
                    if data:
                        conn.buffer.extend(data)
                    elif data == b"":
                        conn.disconnected = True
                except (asyncio.CancelledError, Exception):
                    pass

    def _should_shed(self) -> bool:
        if self.force_shed:
            return True
        with self._metrics_lock:
            return self._active >= self.max_inflight + self.max_queue

    # -- query execution (worker threads) ------------------------------------
    def _parse(self, statement: str) -> Query:
        with self._parse_lock:
            query = self._parsed.get(statement)
            if query is not None:
                self._parsed.move_to_end(statement)
                return query
        query = parse_query(statement)
        with self._parse_lock:
            self._parsed[statement] = query
            self._parsed.move_to_end(statement)
            while len(self._parsed) > _PARSE_CACHE:
                self._parsed.popitem(last=False)
        return query

    def _source(self, query: Query) -> tuple[Any, int, int]:
        relation = self.sql.relation(query.table)
        if isinstance(relation, ShardedRelation):
            return relation, id(relation), relation.version
        return relation, id(relation), 0

    def _cache_key(self, query: Query, source_id: int, relation,
                   algorithm: str):
        if query.preferring is not None:
            # graph_key canonicalises the clause: two spellings of the
            # same preference share a slot
            if isinstance(relation, ShardedRelation):
                with relation.snapshot() as snapshot:
                    graph, _ = _clause_graph(
                        snapshot.relation, query.preferring)
            else:
                graph, _ = _clause_graph(relation, query.preferring)
            preference = graph_key(graph)
        else:
            preference = None
        return (source_id, preference, query.columns, repr(query.where),
                query.order_by, query.top, algorithm)

    def _run_request(self, statement: str, request_id, timeout,
                     algorithm: str, no_cache: bool, shed: bool,
                     token: CancellationToken) -> dict:
        try:
            return self._run_request_inner(
                statement, request_id, timeout, algorithm, no_cache,
                shed, token)
        except Exception as error:  # pragma: no cover - defensive net
            return self._map_error(request_id, error)

    def _run_request_inner(self, statement: str, request_id, timeout,
                           algorithm: str, no_cache: bool, shed: bool,
                           token: CancellationToken) -> dict:
        started = time.perf_counter()
        try:
            query = self._parse(statement)
        except (SqlSyntaxError, ParseError, ValueError) as error:
            return self._count_error(request_id, "parse", error)
        try:
            relation, source_id, version = self._source(query)
        except SqlExecutionError as error:
            return self._count_error(request_id, "execution", error)
        if shed and query.preferring is not None \
                and query.order_by is None:
            try:
                response = self._run_shed(query, relation, request_id,
                                          timeout, token)
                with self._metrics_lock:
                    self._counters["shed"] += 1
                    self._counters["queries"] += 1
                response["elapsed_ms"] = \
                    (time.perf_counter() - started) * 1e3
                return response
            except Exception as error:
                return self._map_error(request_id, error)

        use_cache = self.cache is not None and not no_cache
        key = None
        if use_cache:
            try:
                key = self._cache_key(query, source_id, relation, algorithm)
            except Exception as error:
                return self._map_error(request_id, error)
            entry = self.cache.get(key, version)
            if entry is not None:
                with self._metrics_lock:
                    self._counters["hits"] += 1
                    self._counters["queries"] += 1
                response = dict(entry.payload)
                response.update(
                    {"id": request_id, "ok": True, "cached": True,
                     "partial": False, "version": entry.version,
                     "stats": dict(entry.extra),
                     "elapsed_ms": (time.perf_counter() - started) * 1e3})
                return response

        stats = Stats()
        context = ExecutionContext.create(stats=stats, timeout=timeout,
                                          cancel=token)
        try:
            result = self.sql.execute_parsed(query, algorithm=algorithm,
                                             context=context)
        except Exception as error:
            return self._map_error(request_id, error)
        executed_version = stats.extra.get("relation_version", version)
        payload = serialize_relation(result)
        counters = {"dominance_tests": stats.dominance_tests,
                    "comparisons": stats.comparisons,
                    "passes": stats.passes}
        if use_cache:
            self.cache.put(key, CachedResult(
                payload=payload, source_id=source_id,
                version=executed_version, extra=counters))
        with self._metrics_lock:
            self._counters["misses"] += 1 if use_cache else 0
            self._counters["queries"] += 1
        response = dict(payload)
        response.update(
            {"id": request_id, "ok": True, "cached": False,
             "partial": False, "version": executed_version,
             "stats": counters,
             "elapsed_ms": (time.perf_counter() - started) * 1e3})
        return response

    def _run_batch(self, statements: list, request_id, timeout,
                   algorithm: str, no_cache: bool,
                   token: CancellationToken) -> dict:
        try:
            return self._run_batch_inner(statements, request_id, timeout,
                                         algorithm, no_cache, token)
        except Exception as error:  # pragma: no cover - defensive net
            return self._map_error(request_id, error)

    def _run_batch_inner(self, statements: list, request_id, timeout,
                         algorithm: str, no_cache: bool,
                         token: CancellationToken) -> dict:
        started = time.perf_counter()
        responses: list[dict | None] = [None] * len(statements)
        misses: list[int] = []
        puts: dict[int, tuple[Any, int]] = {}
        use_cache = self.cache is not None and not no_cache
        for index, statement in enumerate(statements):
            try:
                query = self._parse(statement)
                relation, source_id, version = self._source(query)
            except Exception as error:
                mapped = self._map_error(request_id, error)
                mapped["failed_statement"] = index
                mapped["results"] = responses
                return mapped
            if use_cache:
                try:
                    key = self._cache_key(query, source_id, relation,
                                          algorithm)
                except Exception as error:
                    mapped = self._map_error(request_id, error)
                    mapped["failed_statement"] = index
                    mapped["results"] = responses
                    return mapped
                entry = self.cache.get(key, version)
                if entry is not None:
                    with self._metrics_lock:
                        self._counters["hits"] += 1
                        self._counters["queries"] += 1
                    payload = dict(entry.payload)
                    payload.update({"ok": True, "cached": True,
                                    "version": entry.version,
                                    "stats": dict(entry.extra)})
                    responses[index] = payload
                    continue
                if not isinstance(relation, ShardedRelation):
                    # plain relations are version-0 sources, so batch
                    # answers can be cached without staleness risk;
                    # sharded misses are recomputed (their version may
                    # move mid-batch)
                    puts[index] = (key, source_id)
            misses.append(index)

        stats = Stats()
        fusion = None
        if misses:
            context = ExecutionContext.create(stats=stats,
                                              timeout=timeout,
                                              cancel=token)
            try:
                results = self.sql.execute_batch(
                    [statements[i] for i in misses],
                    algorithm=algorithm, context=context)
            except BatchExecutionError as error:
                # keep the per-statement answers that completed before
                # the failure -- the client sees exactly which ones
                for offset, result in enumerate(error.results):
                    if result is None:
                        continue
                    payload = serialize_relation(result)
                    payload.update({"ok": True, "cached": False})
                    responses[misses[offset]] = payload
                cause = error.cause if error.cause is not None else error
                mapped = self._map_error(request_id, cause)
                mapped["failed_statement"] = misses[error.failed_index]
                mapped["results"] = responses
                return mapped
            except Exception as error:
                return self._map_error(request_id, error)
            fusion = stats.extra.get("fusion")
            for index, result in zip(misses, results):
                payload = serialize_relation(result)
                if use_cache and index in puts:
                    key, source_id = puts[index]
                    self.cache.put(key, CachedResult(
                        payload=dict(payload), source_id=source_id,
                        version=0, extra={}))
                payload.update({"ok": True, "cached": False})
                responses[index] = payload
            with self._metrics_lock:
                self._counters["misses"] += len(misses) if use_cache \
                    else 0
                self._counters["queries"] += len(misses)
        with self._metrics_lock:
            self._counters["batches"] += 1
        return {"id": request_id, "ok": True,
                "count": len(statements), "results": responses,
                "fusion": fusion,
                "stats": {"dominance_tests": stats.dominance_tests,
                          "comparisons": stats.comparisons,
                          "passes": stats.passes},
                "elapsed_ms": (time.perf_counter() - started) * 1e3}

    def _run_shed(self, query: Query, relation, request_id, timeout,
                  token: CancellationToken) -> dict:
        """The degraded answer: the first ``shed_prefix`` rows of the
        progressive SFS scan -- a ``≻ext``-sorted prefix of the exact
        skyline -- after WHERE, with SELECT projection applied."""
        stats = Stats()
        context = ExecutionContext.create(stats=stats, timeout=timeout,
                                          cancel=token)
        if isinstance(relation, ShardedRelation):
            with relation.snapshot() as snapshot:
                version = snapshot.version
                order = np.argsort(snapshot.global_ids, kind="stable")
                base = snapshot.relation.take(order)
        else:
            version = 0
            base = relation
        if query.where is not None:
            context.check("sql-where")
            mask = self.sql._evaluate(query.where, base)
            base = base.take(np.flatnonzero(mask))
        graph, matrix = _clause_graph(base, query.preferring)
        limit = self.shed_prefix
        if query.top is not None:
            limit = min(limit, query.top)
        indices = []
        for row in sfs_iter(matrix, graph, stats=stats, context=context):
            indices.append(row)
            if len(indices) >= limit:
                break
        result = base.take(np.asarray(indices, dtype=np.intp))
        if query.columns is not None:
            missing = [c for c in query.columns if c not in result.names]
            if missing:
                raise SqlExecutionError(
                    f"unknown column(s) in SELECT: {missing}")
            result = result.project(list(query.columns))
        payload = serialize_relation(result)
        payload.update(
            {"id": request_id, "ok": True, "cached": False,
             "partial": True,
             "reason": ("admission control: executor backlog at "
                        f"capacity; returning the first {limit} rows of "
                        "the progressive ≻ext scan"),
             "version": version,
             "stats": {"dominance_tests": stats.dominance_tests,
                       "comparisons": stats.comparisons,
                       "passes": stats.passes}})
        return payload

    # -- errors / stats ------------------------------------------------------
    def _error(self, request_id, code: str, message) -> dict:
        return {"id": request_id, "ok": False,
                "error": {"code": code, "message": str(message)}}

    def _count_error(self, request_id, code: str, error) -> dict:
        with self._metrics_lock:
            self._counters["errors"] += 1
        return self._error(request_id, code, error)

    def _map_error(self, request_id, error: BaseException) -> dict:
        if isinstance(error, QueryTimeout):
            with self._metrics_lock:
                self._counters["timeouts"] += 1
            return self._count_error(request_id, "timeout", error)
        if isinstance(error, QueryCancelled):
            with self._metrics_lock:
                self._counters["cancelled"] += 1
            return self._count_error(request_id, "cancelled", error)
        if isinstance(error, (SqlSyntaxError, ParseError)):
            return self._count_error(request_id, "parse", error)
        if isinstance(error, (SqlExecutionError, MemoryBudgetExceeded,
                              KeyError, ValueError)):
            return self._count_error(request_id, "execution", error)
        return self._count_error(request_id, "internal",
                                 f"{type(error).__name__}: {error}")

    def stats(self) -> dict:
        """Server counters plus the cache's counter snapshot."""
        with self._metrics_lock:
            counters = dict(self._counters)
            active = self._active
        return {
            "counters": counters,
            "active": active,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "shed_prefix": self.shed_prefix,
            "tables": self.tables(),
            "cache": self.cache.stats() if self.cache is not None
            else None,
        }


class ServerHandle:
    """A running server on a background event-loop thread.

    ``stop()`` is idempotent and thread-safe: the handle registers an
    atexit hook, the CLI registers its own cleanup and the default
    worker pool registers a third -- any subset may fire in any order
    at interpreter exit without raising (the regression suite pins
    this).
    """

    def __init__(self, server: SkylineServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stop_lock = threading.Lock()
        self._stopped = False
        atexit.register(self.stop)

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def stop(self, grace: float = 5.0) -> None:
        """Drain the server and stop the loop thread (idempotent)."""
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
            try:
                atexit.unregister(self.stop)
            except Exception:  # pragma: no cover - interpreter tear-down
                pass
            if self._loop.is_running():
                future = asyncio.run_coroutine_threadsafe(
                    self.server.stop(grace), self._loop)
                try:
                    future.result(timeout=grace + 10.0)
                except Exception:  # pragma: no cover - best-effort drain
                    pass
                self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if not self._loop.is_running():
                self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(server: SkylineServer, *,
                    start_timeout: float = 10.0) -> ServerHandle:
    """Run ``server`` on a fresh event loop in a daemon thread and
    return once it is accepting connections."""
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _start() -> None:
            try:
                await server.start()
            except BaseException as error:  # noqa: BLE001
                failure.append(error)
            finally:
                started.set()

        loop.create_task(_start())
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))

    thread = threading.Thread(target=_run, name="skyline-server",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise RuntimeError("server failed to start in time")
    if failure:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        raise failure[0]
    return ServerHandle(server, loop, thread)
