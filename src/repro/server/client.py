"""A small blocking client for the skyline query server.

Used by the test suite, the ``repro-skyline query`` paths and the load
generator; one socket, synchronous request/response::

    with SkylineClient(("127.0.0.1", 7654)) as client:
        answer = client.query("SELECT * FROM cars PREFERRING price")
        print(answer["columns"], answer["rows"])

A failed query raises :class:`ServerError` carrying the structured
error ``code``; pass ``raise_errors=False`` to get the raw response
dict instead.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any

from .protocol import read_frame, write_frame

__all__ = ["ServerError", "SkylineClient"]


class ServerError(RuntimeError):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class SkylineClient:
    """A blocking, single-connection client."""

    def __init__(self, address: tuple[str, int], *,
                 connect_timeout: float = 10.0,
                 socket_timeout: float | None = 60.0):
        self.address = tuple(address)
        self._sock = socket.create_connection(
            self.address, timeout=connect_timeout)
        self._sock.settimeout(socket_timeout)
        self._ids = itertools.count(1)

    # -- plumbing ------------------------------------------------------------
    def request(self, message: dict, *,
                raise_errors: bool = True) -> dict:
        """Send one request and wait for its response."""
        if "id" not in message:
            message = dict(message, id=next(self._ids))
        write_frame(self._sock, message)
        response = read_frame(self._sock)
        if response is None:
            raise ConnectionError("server closed the connection")
        if raise_errors and not response.get("ok", False):
            error = response.get("error") or {}
            raise ServerError(error.get("code", "internal"),
                              error.get("message", "unknown error"))
        return response

    def send_only(self, message: dict) -> None:
        """Send a request without waiting (disconnect tests)."""
        if "id" not in message:
            message = dict(message, id=next(self._ids))
        write_frame(self._sock, message)

    # -- operations ----------------------------------------------------------
    def query(self, statement: str, *, timeout: float | None = None,
              algorithm: str | None = None, no_cache: bool = False,
              raise_errors: bool = True) -> dict:
        message: dict[str, Any] = {"statement": statement}
        if timeout is not None:
            message["timeout"] = timeout
        if algorithm is not None:
            message["algorithm"] = algorithm
        if no_cache:
            message["no_cache"] = True
        return self.request(message, raise_errors=raise_errors)

    def query_batch(self, statements, *, timeout: float | None = None,
                    algorithm: str | None = None, no_cache: bool = False,
                    raise_errors: bool = True) -> dict:
        """Send a whole batch of statements in one request.

        The server answers every statement in a single frame
        (``response["results"]``, one payload per statement, in
        order), running cache misses through the fused batch path --
        correlated batches share preference canonicalisation and
        packed dominance masks server-side.  On a mid-batch failure
        the error response still carries the completed per-statement
        payloads."""
        message: dict[str, Any] = {"statements": list(statements)}
        if timeout is not None:
            message["timeout"] = timeout
        if algorithm is not None:
            message["algorithm"] = algorithm
        if no_cache:
            message["no_cache"] = True
        return self.request(message, raise_errors=raise_errors)

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["server"]

    def tables(self) -> list[str]:
        return self.request({"op": "tables"})["tables"]

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SkylineClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
