"""The wire format: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  The format is deliberately minimal -- any language
with sockets and a JSON parser can speak it -- and framing errors are
distinguishable from query errors: a malformed frame kills the
connection (the stream offset is lost), while a malformed *request*
inside a well-formed frame gets a structured error response and the
connection lives on.

Requests are JSON objects.  A **query** request::

    {"id": 7, "statement": "SELECT * FROM cars PREFERRING price",
     "timeout": 2.5, "algorithm": "osdc", "no_cache": false}

An **operational** request replaces ``statement`` with ``op``:
``{"op": "ping"}``, ``{"op": "stats"}``, ``{"op": "tables"}``.

Responses echo ``id`` and carry either a result payload::

    {"id": 7, "ok": true, "columns": [...], "rows": [[...], ...],
     "partial": false, "cached": true, "version": 12, "elapsed_ms": 1.9}

or a structured error ``{"id": 7, "ok": false, "error": {"code":
"timeout", "message": "..."}}`` where ``code`` is one of ``parse``,
``execution``, ``timeout``, ``cancelled``, ``protocol`` or ``internal``.
A shed response additionally sets ``"partial": true`` and a ``"reason"``
string (see :class:`~repro.server.service.SkylineServer`).
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = ["MAX_FRAME", "ProtocolError", "encode_frame", "decode_frame",
           "read_frame", "write_frame", "recv_exactly"]

#: Upper bound on one frame's payload; a peer announcing more is
#: protocol-broken (or hostile) and the connection is dropped.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The byte stream is not a valid frame sequence."""


def encode_frame(message: dict) -> bytes:
    """Serialise one message to its framed wire form."""
    payload = json.dumps(message, separators=(",", ":"),
                         allow_nan=False).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Parse one frame payload (the bytes after the length header)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def check_length(length: int) -> int:
    """Validate an announced payload length."""
    if length > MAX_FRAME:
        raise ProtocolError(
            f"peer announced a {length}-byte frame, beyond the "
            f"{MAX_FRAME}-byte limit")
    return length


def recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Blocking read of exactly ``count`` bytes (or raise on EOF)."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """Blocking read of one frame; ``None`` on a clean EOF between
    frames."""
    header = b""
    while len(header) < _HEADER.size:
        chunk = sock.recv(_HEADER.size - len(header))
        if not chunk:
            if header:
                raise ConnectionError("connection closed mid-header")
            return None
        header += chunk
    (length,) = _HEADER.unpack(header)
    return decode_frame(recv_exactly(sock, check_length(length)))


def write_frame(sock: socket.socket, message: dict) -> None:
    """Blocking write of one framed message."""
    sock.sendall(encode_frame(message))
