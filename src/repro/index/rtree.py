"""A bulk-loaded in-memory R-tree (Sort-Tile-Recursive).

The substrate for the BBS baseline (`repro.algorithms.bbs`).  The tree is
built once over a rank matrix with the classic STR packing of Leutenegger
et al.: points are sorted by the first dimension, cut into vertical slabs,
each slab sorted by the next dimension, and so on recursively; runs of
``fanout`` points become leaves, and upper levels pack consecutive nodes
``fanout`` at a time (consecutive nodes are spatially coherent by
construction).

Nodes store their minimum bounding rectangles as ``(low, high)`` vectors;
leaves also store the original row indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RTree", "Node"]


@dataclass
class Node:
    """An R-tree node: a leaf holds row indices, an internal node holds
    children.  ``low``/``high`` bound every point below the node."""

    low: np.ndarray
    high: np.ndarray
    rows: np.ndarray | None = None
    children: list["Node"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.rows is not None


class RTree:
    """STR bulk-loaded R-tree over the rows of a rank matrix."""

    def __init__(self, ranks: np.ndarray, fanout: int = 32):
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.ndim != 2:
            raise ValueError("expected a 2-d rank matrix")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.ranks = ranks
        self.fanout = fanout
        n, d = ranks.shape
        if n == 0:
            self.root = None
            self.height = 0
            return
        order = self._str_order(np.arange(n, dtype=np.intp), 0)
        leaves = [
            self._make_leaf(order[start:start + fanout])
            for start in range(0, n, fanout)
        ]
        level = leaves
        height = 1
        while len(level) > 1:
            level = [
                self._make_internal(level[start:start + fanout])
                for start in range(0, len(level), fanout)
            ]
            height += 1
        self.root = level[0]
        self.height = height

    # -- construction -------------------------------------------------------
    def _str_order(self, rows: np.ndarray, dim: int) -> np.ndarray:
        """Recursive STR tiling: returns the rows in packing order."""
        d = self.ranks.shape[1]
        if rows.size <= self.fanout or dim >= d:
            return rows
        ordered = rows[np.argsort(self.ranks[rows, dim], kind="stable")]
        num_leaves = int(np.ceil(rows.size / self.fanout))
        remaining_dims = d - dim
        slabs = max(1, int(np.ceil(num_leaves ** (1.0 / remaining_dims))))
        slab_size = int(np.ceil(rows.size / slabs))
        pieces = [
            self._str_order(ordered[start:start + slab_size], dim + 1)
            for start in range(0, rows.size, slab_size)
        ]
        return np.concatenate(pieces)

    def _make_leaf(self, rows: np.ndarray) -> Node:
        block = self.ranks[rows]
        return Node(low=block.min(axis=0), high=block.max(axis=0),
                    rows=rows)

    @staticmethod
    def _make_internal(children: list[Node]) -> Node:
        low = np.minimum.reduce([child.low for child in children])
        high = np.maximum.reduce([child.high for child in children])
        return Node(low=low, high=high, children=list(children))

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return self.ranks.shape[0]

    @property
    def num_nodes(self) -> int:
        if self.root is None:
            return 0

        def count(node: Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + sum(count(child) for child in node.children)

        return count(self.root)

    def query_box(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Row indices of all points inside the closed box [low, high]."""
        if self.root is None:
            return np.empty(0, dtype=np.intp)
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        hits: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if (node.high < low).any() or (node.low > high).any():
                continue
            if node.is_leaf:
                block = self.ranks[node.rows]
                inside = ((block >= low) & (block <= high)).all(axis=1)
                if inside.any():
                    hits.append(node.rows[inside])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(hits))

    def validate(self) -> None:
        """Check structural invariants (used by tests)."""
        if self.root is None:
            return
        seen: list[np.ndarray] = []

        def check(node: Node) -> None:
            assert (node.low <= node.high).all()
            if node.is_leaf:
                block = self.ranks[node.rows]
                assert (block >= node.low).all()
                assert (block <= node.high).all()
                seen.append(node.rows)
            else:
                assert node.children
                for child in node.children:
                    assert (child.low >= node.low).all()
                    assert (child.high <= node.high).all()
                    check(child)

        check(self.root)
        rows = np.concatenate(seen)
        assert rows.size == self.ranks.shape[0]
        assert np.array_equal(np.sort(rows),
                              np.arange(self.ranks.shape[0]))
