"""In-memory indexing substrate (STR-packed R-tree) for BBS."""

from .rtree import Node, RTree

__all__ = ["RTree", "Node"]
