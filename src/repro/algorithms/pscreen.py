"""PSCREEN: recursive p-screening (Section 4, Theorem 2).

Given ``B`` and ``W`` with ``W ⋡_pi B``, remove from ``W`` every tuple
dominated by some tuple of ``B``, in ``O((b + w) log^{d-2} b)``.

The recursion follows the paper's Algorithm PSCREEN.  State per call:

``C``
    candidate attributes -- not yet decided, all ancestors decided equal;
``E``
    attributes on which *all* tuples of the sub-problem agree (invariant I1);
``F``
    *dropped* attributes: every tuple of the current ``B`` is strictly
    better than every tuple of the current ``W`` on them.  The paper drops
    them implicitly (``C \\ {A}`` at lines 13 and 23); tracking them
    explicitly is what makes the low-dimensional base cases exact -- see
    :mod:`repro.algorithms.lowdim`.

Base cases: ``C = ∅`` (everything in ``W`` is dominated -- each topmost
disagreement is then an ``F`` attribute, which favours ``B``), ``|B| = 1``
(Lemma 2), and at most three *relevant* attributes
(``R = C ∪ (Desc(C) \\ Desc(F))``, Lemmas 3/4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.bitsets import iter_bits
from ..core.dominance import Dominance
from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import Stats, check_input, ensure_context, resolve_kernel
from .lowdim import screen_small
from .special import pscreen_single_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.compiled import CompiledPreference

__all__ = ["pscreen", "PScreener", "split_threshold"]


def split_threshold(values: np.ndarray) -> float:
    """A split threshold ``tau`` with both ``{v < tau}`` and ``{v >= tau}``
    non-empty.

    Uses the median value; when heavy duplication makes the median equal to
    the minimum, the threshold moves up to the next distinct value so the
    recursion always makes progress.  ``values`` must not be all-equal.
    """
    smallest = values.min()
    median = np.partition(values, values.size // 2)[values.size // 2]
    if median > smallest:
        return float(median)
    above = values[values > smallest]
    return float(above.min())


class PScreener:
    """Reusable p-screening engine bound to one p-graph.

    The engine caches the :class:`~repro.core.dominance.Dominance` kernel
    and restricted sub-graphs, so DC and OSDC can call it many times.
    """

    def __init__(self, graph: PGraph, *, use_lowdim: bool = True,
                 dense_cutoff: int = 4096,
                 compiled: "CompiledPreference | None" = None,
                 kernel: str | None = None):
        self.graph = graph
        self.compiled = compiled
        self.dominance = compiled.dominance if compiled is not None \
            else Dominance(graph)
        self.use_lowdim = use_lowdim
        self.dense_cutoff = dense_cutoff
        self.kernel = kernel
        self._subgraphs: dict[int, PGraph] = {}

    def _subgraph(self, mask: int) -> PGraph:
        # with a compiled preference the restricted sub-graphs are shared
        # (and survive) across every screener of the same p-graph
        if self.compiled is not None:
            return self.compiled.subgraph(mask)
        if mask not in self._subgraphs:
            self._subgraphs[mask] = self.graph.restrict(mask)
        return self._subgraphs[mask]

    def screen(self, ranks: np.ndarray, b_idx: np.ndarray, w_idx: np.ndarray,
               candidates: int | None = None, equal: int = 0, dropped: int = 0,
               stats: Stats | None = None,
               context: ExecutionContext | None = None) -> np.ndarray:
        """Return the rows of ``w_idx`` not dominated by any row of ``b_idx``.

        ``candidates``/``equal``/``dropped`` are the ``C``/``E``/``F``
        bitmasks; they default to the top-level configuration
        (``C = Roots``, ``E = F = ∅``).  Caller must guarantee
        ``W ⋡_pi B`` and the invariants I1/I2 for non-default masks.
        """
        context = ensure_context(context, stats)
        if candidates is None:
            candidates = self.graph.roots
        b_idx = np.asarray(b_idx, dtype=np.intp)
        w_idx = np.asarray(w_idx, dtype=np.intp)
        return self._rec(ranks, b_idx, w_idx, candidates, equal, dropped,
                         context, 0)

    # -- recursion ------------------------------------------------------------
    def _rec(self, ranks: np.ndarray, b_idx: np.ndarray, w_idx: np.ndarray,
             cand: int, equal: int, dropped: int,
             context: ExecutionContext, depth: int) -> np.ndarray:
        context.check("pscreen")
        stats = context.stats
        if stats is not None:
            stats.recursive_calls += 1
            stats.max_depth = max(stats.max_depth, depth)
        w = w_idx.size
        b = b_idx.size
        if w == 0 or b == 0:
            return w_idx
        if cand == 0:
            # Every topmost disagreement is a dropped attribute favouring B.
            return w_idx[:0]
        if b == 1:
            if stats is not None:
                stats.dominance_tests += w
            survivors = pscreen_single_point(ranks[b_idx[0]], ranks[w_idx],
                                             self.dominance,
                                             kernel=self.kernel)
            return w_idx[survivors]
        if b * w <= self.dense_cutoff:
            # Dense base case: exact full-dimensional block screening.
            if stats is not None:
                stats.dominance_tests += b * w
            survivors = self.dominance.screen_block(ranks[w_idx],
                                                    ranks[b_idx],
                                                    kernel=self.kernel)
            return w_idx[survivors]
        relevant = (cand | (self.graph.desc_of_set(cand)
                            & ~self.graph.desc_of_set(dropped)))
        if self.use_lowdim and relevant.bit_count() <= 3:
            columns = list(iter_bits(relevant))
            sub_graph = self._subgraph(relevant)
            if stats is not None:
                stats.dominance_tests += b + w
            survivors = screen_small(ranks[np.ix_(b_idx, columns)],
                                     ranks[np.ix_(w_idx, columns)],
                                     sub_graph, prune_equal=dropped != 0)
            return w_idx[survivors]

        # -- select a candidate attribute on which B is distinguishable -------
        attribute = None
        for a in iter_bits(cand):
            column = ranks[b_idx, a]
            if column.min() != column.max():
                attribute = a
                break
        if attribute is None:
            # every candidate is constant over B: handle one per the paper's
            # lines 11-17, recursing with the updated candidate set
            a = next(iter_bits(cand))
            value = float(ranks[b_idx[0], a])
            w_column = ranks[w_idx, a]
            w_better = w_idx[w_column < value]       # survive unscreened
            w_equal = w_idx[w_column == value]
            w_worse = w_idx[w_column > value]
            cand_without = cand & ~(1 << a)
            surviving_worse = self._rec(ranks, b_idx, w_worse, cand_without,
                                        equal, dropped | (1 << a),
                                        context, depth + 1)
            new_equal = equal | (1 << a)
            new_cand = cand_without
            for successor in iter_bits(self.graph.successors(a)):
                if (self.graph.predecessors(successor) & ~new_equal) == 0:
                    new_cand |= 1 << successor
            surviving_equal = self._rec(ranks, b_idx, w_equal, new_cand,
                                        new_equal, dropped, context, depth + 1)
            return np.concatenate([w_better, surviving_worse,
                                   surviving_equal])

        # -- split B at the median of the chosen attribute --------------------
        if stats is not None:
            stats.splits += 1
        b_column = ranks[b_idx, attribute]
        tau = split_threshold(b_column)
        b_better = b_idx[b_column < tau]
        b_worse = b_idx[b_column >= tau]
        w_column = ranks[w_idx, attribute]
        w_better = w_idx[w_column < tau]
        w_rest = w_idx[w_column >= tau]
        surviving_better = self._rec(ranks, b_better, w_better, cand, equal,
                                     dropped, context, depth + 1)
        surviving_rest = self._rec(ranks, b_worse, w_rest, cand, equal,
                                   dropped, context, depth + 1)
        surviving_rest = self._rec(ranks, b_better, surviving_rest,
                                   cand & ~(1 << attribute), equal,
                                   dropped | (1 << attribute),
                                   context, depth + 1)
        return np.concatenate([surviving_better, surviving_rest])


def pscreen(ranks: np.ndarray, graph: PGraph, b_idx: np.ndarray,
            w_idx: np.ndarray, *, stats: Stats | None = None,
            context: ExecutionContext | None = None,
            use_lowdim: bool = True, dense_cutoff: int = 4096,
            kernel: str = "auto") -> np.ndarray:
    """Functional entry point: p-screen ``W`` (rows ``w_idx``) against ``B``
    (rows ``b_idx``) under the precondition ``W ⋡_pi B``."""
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    compiled = context.compiled(graph)
    resolve_kernel(compiled.dominance, context, kernel,
                   pairs=dense_cutoff)
    screener = compiled.screener(
        use_lowdim=use_lowdim, dense_cutoff=dense_cutoff,
        kernel=None if kernel == "auto" else kernel)
    return screener.screen(ranks, b_idx, w_idx, context=context)
