"""Partition-parallel p-skyline evaluation across worker processes.

The divide-and-conquer identity behind multi-core evaluation is the
classic one: for any partition ``D = D_1 ∪ ... ∪ D_p``,

.. math::  M_pi(D) = M_pi( M_pi(D_1) ∪ ... ∪ M_pi(D_p) )

(every global maximum survives in its own chunk; the merge removes
cross-chunk dominated tuples).  Workers run the in-memory OSDC on their
chunk; the parent merges the per-chunk p-skylines with one more OSDC
call.  With small outputs the merge is negligible and speed-up tracks
the worker count; with huge outputs the merge dominates, as expected.

``processes=1`` (or tiny inputs) bypasses multiprocessing entirely, so
the function is safe to use unconditionally.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import Stats, check_input, ensure_context, register
from .osdc import osdc

__all__ = ["parallel_osdc"]


def _worker(payload) -> np.ndarray:
    ranks, names, closure, orders, memory_budget, options = payload
    graph = PGraph(names, closure, orders)
    worker_context = ExecutionContext(memory_budget=memory_budget)
    return osdc(ranks, graph, context=worker_context, **options)


def _must_run_serially(context: ExecutionContext) -> bool:
    """True when forked workers could not honour the context's limits.

    Only an *attached* deadline or cancellation token forces the serial
    plan (workers cannot observe the parent's monotonic clock or cancel
    event).  A context merely being present -- ``ensure_context``
    fabricates one for every call nowadays -- or carrying stats, a
    trace buffer, a cache or a memory budget must not disable the
    parallel path: stats/trace stay parent-side and the memory budget
    is shipped to the workers.
    """
    return context.deadline is not None or context.cancel is not None


@register("parallel-osdc", parallel=True)
def parallel_osdc(ranks: np.ndarray, graph: PGraph, *,
                  stats: Stats | None = None,
                  context: ExecutionContext | None = None,
                  processes: int = 2,
                  min_chunk: int = 4096, **osdc_options) -> np.ndarray:
    """Compute ``M_pi(D)`` with ``processes`` worker processes.

    Returns sorted row indices.  Falls back to plain OSDC when
    ``processes == 1``, the input is smaller than
    ``processes * min_chunk`` (forking would cost more than it saves), or
    the context carries an actual deadline or cancellation token --
    worker processes cannot observe the parent's monotonic clock or
    cancel event, so interruptible queries run serially where every
    ``check`` fires.  Any other context (fabricated, stats-only,
    traced, cached, memory-budgeted) takes the parallel path.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    n = ranks.shape[0]
    if processes < 1:
        raise ValueError("processes must be positive")
    context.check("parallel-setup")
    if (processes == 1 or n < processes * min_chunk
            or _must_run_serially(context)):
        return osdc(ranks, graph, context=context, **osdc_options)

    bounds = np.linspace(0, n, processes + 1, dtype=np.intp)
    chunks = [(ranks[bounds[i]:bounds[i + 1]], graph.names,
               graph.closure, graph.orders, context.memory_budget,
               osdc_options)
              for i in range(processes)]
    mp_context = mp.get_context("fork" if "fork" in
                                mp.get_all_start_methods() else "spawn")
    with mp_context.Pool(processes) as pool:
        partials = pool.map(_worker, chunks)
    context.check("parallel-merge")
    survivors = np.concatenate([
        np.asarray(local, dtype=np.intp) + bounds[i]
        for i, local in enumerate(partials)
    ])
    if stats is not None:
        stats.passes += 1
        stats.extra["chunk_skylines"] = [int(p.size) for p in partials]
    context.event("parallel-merge", workers=processes,
                  candidates=int(survivors.size))
    merged_local = osdc(ranks[survivors], graph, context=context,
                        **osdc_options)
    return np.sort(survivors[merged_local])
