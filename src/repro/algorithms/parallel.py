"""Partition-parallel p-skyline evaluation on the persistent pool.

The divide-and-conquer identity behind multi-core evaluation is the
classic one: for any partition ``D = D_1 ∪ ... ∪ D_p``,

.. math::  M_pi(D) = M_pi( M_pi(D_1) ∪ ... ∪ M_pi(D_p) )

(every global maximum survives in its own chunk; merging removes
cross-chunk dominated tuples).  Workers run the in-memory OSDC on a
zero-copy shared-memory slice of their chunk; the survivors are reduced
with a tree of pairwise merges, also on the pool (see
:mod:`repro.engine.pool`).

Compared to the historical implementation this keeps worker processes
warm across queries, ships ``(segment, row-range)`` descriptors instead
of pickled chunk arrays, merges every worker's
:class:`~repro.algorithms.base.Stats` back into the parent context, and
runs deadline/cancellation queries **on the parallel path**: workers
observe the absolute monotonic deadline and a shared cancel event at
every block boundary.  The serial fallback is reserved for inputs too
small to be worth dispatching and for daemonic processes (which cannot
host worker children).
"""

from __future__ import annotations

import os

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from ..engine.pool import WorkerPool, get_default_pool, pool_available
from .base import Stats, check_input, ensure_context, register
from .osdc import osdc

__all__ = ["parallel_osdc", "auto_processes"]


def auto_processes(n: int, min_chunk: int) -> int:
    """The ``processes=None`` policy: one process per ``min_chunk`` rows,
    capped by the CPU count (never below 1)."""
    return max(1, min(os.cpu_count() or 1, n // max(1, min_chunk)))


def _must_run_serially() -> bool:
    """True when this process cannot host pool workers.

    Only start-method edge cases remain here: a daemonic process may
    not fork children.  Deadlines and cancellation tokens no longer
    force the serial plan -- the pool propagates both into workers.
    """
    return not pool_available()


@register("parallel-osdc", parallel=True)
def parallel_osdc(ranks: np.ndarray, graph: PGraph, *,
                  stats: Stats | None = None,
                  context: ExecutionContext | None = None,
                  processes: int | None = None,
                  min_chunk: int = 4096,
                  pool: WorkerPool | None = None,
                  fresh_pool: bool = False,
                  **osdc_options) -> np.ndarray:
    """Compute ``M_pi(D)`` partitioned across pool workers.

    Returns sorted row indices.

    Parameters
    ----------
    processes:
        Number of partitions to evaluate in parallel.  ``None`` (the
        default) applies :func:`auto_processes`:
        ``min(cpu_count, n // min_chunk)``.
    min_chunk:
        Smallest chunk worth shipping to a worker; inputs below
        ``2 * min_chunk`` run plain OSDC in-process.
    pool:
        A specific :class:`~repro.engine.pool.WorkerPool` to run on;
        by default the process-wide warm pool
        (:func:`~repro.engine.pool.get_default_pool`).
    fresh_pool:
        Fork a dedicated pool for this one call and tear it down after
        (the historical cold-start behaviour; benchmarks use it as the
        cold comparator).

    Deadline and cancellation contexts execute on the parallel path:
    the absolute monotonic deadline is shipped with every task and the
    context's :class:`~repro.engine.context.CancellationToken` mirrors
    into the pool's shared cancel event, so workers stop within one
    chunk/block boundary.  Only daemonic processes (which cannot host
    children) and tiny inputs fall back to serial OSDC.
    """
    if processes is not None and processes < 1:
        raise ValueError("processes must be positive")
    if min_chunk < 1:
        raise ValueError("min_chunk must be at least 1")
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    n = ranks.shape[0]
    if processes is None:
        processes = auto_processes(n, min_chunk)
    context.check("parallel-setup")
    if processes == 1 or n < 2 * min_chunk or _must_run_serially():
        return osdc(ranks, graph, context=context, **osdc_options)

    chunks = min(processes, max(1, n // min_chunk))
    own_pool = False
    if fresh_pool:
        pool = WorkerPool(processes)
        own_pool = True
    elif pool is None:
        pool = get_default_pool()
    try:
        return pool.run_query(ranks, graph, algorithm="osdc",
                              chunks=chunks, options=osdc_options,
                              context=context)
    finally:
        if own_pool:
            pool.close()
