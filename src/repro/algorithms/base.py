"""Shared infrastructure for the p-skyline algorithms.

Every algorithm in this package has the uniform signature::

    algorithm(ranks, graph, *, stats=None, **options) -> np.ndarray

where ``ranks`` is an ``(n, d)`` float64 matrix with *smaller is better*
semantics, ``graph`` the :class:`~repro.core.pgraph.PGraph` over exactly the
``d`` columns, and the return value the sorted row indices of the p-skyline
``M_pi(D)``.  Algorithms register themselves by name in :data:`REGISTRY` so
the query layer and the benchmark harness can enumerate them.

:class:`Stats` counts structural work (dominance tests, splits, passes, ...)
so the output-sensitivity claims can be verified independently of
wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext

__all__ = ["Stats", "Algorithm", "AlgorithmInfo", "REGISTRY",
           "REGISTRY_INFO", "register", "get_algorithm", "get_info",
           "check_input", "ensure_context", "resolve_kernel"]


@dataclass
class Stats:
    """Structural work counters, filled in by the algorithms.

    ``dominance_tests`` counts *tuple-vs-tuple* dominance evaluations, also
    when they are performed inside a vectorised kernel (each row of a
    one-vs-many comparison counts as one test).

    Every numeric field must be handled by :meth:`merge` (summed, or
    maximised for the fields named in :data:`Stats.MAX_FIELDS`); the
    drift-guard test fails when a counter is added without merge support.
    """

    #: Numeric fields combined with ``max`` (peaks/depths); every other
    #: numeric field is summed by :meth:`merge`.
    MAX_FIELDS = ("max_depth", "window_peak")

    dominance_tests: int = 0
    comparisons: int = 0
    splits: int = 0
    recursive_calls: int = 0
    max_depth: int = 0
    passes: int = 0
    window_peak: int = 0
    pruned_by_lookahead: int = 0
    pruned_by_filter: int = 0
    io_reads: int = 0
    io_writes: int = 0
    extra: dict = field(default_factory=dict)

    def merge(self, other: "Stats") -> None:
        self.dominance_tests += other.dominance_tests
        self.comparisons += other.comparisons
        self.splits += other.splits
        self.recursive_calls += other.recursive_calls
        self.max_depth = max(self.max_depth, other.max_depth)
        self.passes += other.passes
        self.window_peak = max(self.window_peak, other.window_peak)
        self.pruned_by_lookahead += other.pruned_by_lookahead
        self.pruned_by_filter += other.pruned_by_filter
        self.io_reads += other.io_reads
        self.io_writes += other.io_writes


class Algorithm(Protocol):
    """The callable protocol all registered algorithms satisfy.

    ``context`` is accepted by every algorithm through ``**options``;
    callers passing only ``stats`` get a default context synthesized by
    :func:`ensure_context` (the compatibility shim).
    """

    def __call__(self, ranks: np.ndarray, graph: PGraph, *,
                 stats: Stats | None = None, **options) -> np.ndarray:
        ...  # pragma: no cover


REGISTRY: dict[str, Algorithm] = {}


@dataclass(frozen=True)
class AlgorithmInfo:
    """Declared guarantees of a registered algorithm.

    The verification harness (:mod:`repro.verify`) keys its invariant
    checks on these flags instead of hard-coding algorithm names:

    ``progressive``
        The algorithm can emit p-skyline members incrementally in
        ``≻ext`` order; ``iterator`` is the generator realising it
        (e.g. :func:`~repro.algorithms.bbs.bbs_iter`).  Any prefix of
        the emission must be a prefix of the full, deterministic
        emission sequence.
    ``bounded_window``
        The algorithm honours a ``window_size`` option and reports the
        high-water mark in ``Stats.window_peak`` (which must never
        exceed the bound).
    ``external``
        The algorithm spills to disk and fills ``Stats.io_reads`` /
        ``Stats.io_writes``.
    ``parallel``
        The algorithm may fan work out to worker processes.  Deadlines
        and cancellation tokens are honoured *on* the parallel path:
        the pool ships the absolute deadline and mirrors the token
        into a shared cancel event (see :mod:`repro.engine.pool`).
    ``counts_dominance``
        ``Stats.dominance_tests`` reflects every tuple-vs-tuple test,
        so work lower bounds (each eliminated tuple was tested at
        least once) can be asserted.
    """

    name: str
    function: Algorithm
    progressive: bool = False
    iterator: Callable | None = None
    bounded_window: bool = False
    external: bool = False
    parallel: bool = False
    counts_dominance: bool = True

    @property
    def guarantees(self) -> frozenset[str]:
        """The declared capabilities as a set of tags."""
        return frozenset(
            tag for tag, held in (
                ("progressive", self.progressive),
                ("bounded-window", self.bounded_window),
                ("external", self.external),
                ("parallel", self.parallel),
                ("counts-dominance", self.counts_dominance),
            ) if held
        )


REGISTRY_INFO: dict[str, AlgorithmInfo] = {}


def register(name: str, *, progressive: bool = False,
             iterator: Callable | None = None,
             bounded_window: bool = False, external: bool = False,
             parallel: bool = False,
             counts_dominance: bool = True
             ) -> Callable[[Algorithm], Algorithm]:
    """Decorator adding an algorithm to :data:`REGISTRY` under ``name``.

    Keyword flags declare the invariants the algorithm guarantees (see
    :class:`AlgorithmInfo`); they are recorded in :data:`REGISTRY_INFO`
    for the verification harness.
    """
    if progressive and iterator is None:
        raise ValueError(
            f"progressive algorithm {name!r} must declare its iterator"
        )

    def decorator(function: Algorithm) -> Algorithm:
        if name in REGISTRY:
            raise ValueError(f"algorithm {name!r} registered twice")
        REGISTRY[name] = function
        REGISTRY_INFO[name] = AlgorithmInfo(
            name=name, function=function, progressive=progressive,
            iterator=iterator, bounded_window=bounded_window,
            external=external, parallel=parallel,
            counts_dominance=counts_dominance,
        )
        return function

    return decorator


def get_algorithm(name: str) -> Algorithm:
    """Look up an algorithm by registry name."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(
            f"unknown algorithm {name!r}; available: {known}"
        ) from None


def get_info(name: str) -> AlgorithmInfo:
    """The declared :class:`AlgorithmInfo` of a registered algorithm."""
    get_algorithm(name)  # raises the canonical KeyError when unknown
    return REGISTRY_INFO[name]


def ensure_context(context: ExecutionContext | None,
                   stats: Stats | None = None) -> ExecutionContext:
    """The compatibility shim between the old ``stats=`` convention and
    the engine layer.

    * ``context=None``: synthesize a fresh :class:`ExecutionContext`
      wrapping ``stats`` (which may be ``None`` -- counting stays off).
    * ``context`` given without stats of its own: adopt the caller's
      ``stats`` so the pre-engine calling convention keeps filling the
      same counters.
    """
    if context is None:
        return ExecutionContext(stats=stats)
    if context.stats is None and stats is not None:
        context.stats = stats
    return context


def resolve_kernel(dominance, context: ExecutionContext,
                   kernel: str | None = None,
                   pairs: int | None = None) -> str:
    """Resolve an algorithm's dominance-kernel choice once per run.

    Returns the concrete kernel name (``"native"`` / ``"bitmask"`` /
    ``"gemm"`` / ``"scalar"``), recording it in ``Stats.extra["kernel"]``
    and as a ``kernel-select`` trace event so bench artifacts and
    ``explain`` output show which family did the work.  ``pairs`` is the
    expected per-block comparison count the auto policy sizes against.
    The effective screen thread budget (and the policy layer it came
    from -- see :func:`repro.engine.threads.budget_source`) is recorded
    alongside, under ``Stats.extra["thread_budget"]`` and in the
    ``kernel-select`` event.

    When ``"native"`` was requested (explicitly or through
    :func:`~repro.core.dominance.forced_kernel`) but its compiled
    backend is unavailable, the selection degrades to ``"bitmask"`` and
    the precise reason (``numba missing`` vs ``JIT compile failed``)
    lands in the trace ring as a ``kernel-fallback`` event.
    """
    from ..core.dominance import current_forced_kernel, select_kernel
    from ..engine.threads import budget_source

    requested = current_forced_kernel() or kernel
    resolved = select_kernel(kernel, d=dominance.graph.d, pairs=pairs)
    if requested == "native" and resolved != "native":
        from ..core.native import unavailable_reason

        context.event("kernel-fallback", requested="native",
                      kernel=resolved,
                      reason=unavailable_reason() or "width limit")
    budget, source = budget_source(dominance.graph.d)
    if context.stats is not None:
        context.stats.extra["kernel"] = resolved
        context.stats.extra["thread_budget"] = budget
    context.event("kernel-select", kernel=resolved, threads=budget,
                  threads_source=source)
    return resolved


def check_input(ranks: np.ndarray, graph: PGraph) -> np.ndarray:
    """Validate and normalise an input rank matrix against its p-graph."""
    ranks = np.ascontiguousarray(ranks, dtype=np.float64)
    if ranks.ndim != 2:
        raise ValueError("expected a 2-d rank matrix")
    if ranks.shape[1] != graph.d:
        raise ValueError(
            f"rank matrix has {ranks.shape[1]} columns but the p-graph has "
            f"{graph.d} attributes"
        )
    if np.isnan(ranks).any():
        raise ValueError("rank matrix contains NaNs")
    return ranks
