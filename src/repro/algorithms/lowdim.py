"""Low-dimensional p-screening: Lemmas 3 and 4 of the paper.

These procedures screen ``W`` against ``B`` when at most three attributes
remain relevant, in ``O((b + w) log b)``.  They are the base cases of
:mod:`repro.algorithms.pscreen`.

A subtlety that the paper's pseudocode leaves implicit: when PSCREEN
recurses it may *drop* an attribute ``A`` on which every tuple of ``B`` is
strictly better than every tuple of ``W``.  In such branches a ``W`` tuple
that is *equal* to some ``B`` tuple on all remaining relevant attributes is
still dominated (the dropped attribute breaks the tie in ``B``'s favour).
All routines therefore take a ``prune_equal`` flag: when set, restricted
indistinguishability counts as dominance.

All functions return a boolean *survivors* mask over the rows of ``W``.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..core.bitsets import indices_of
from ..core.pgraph import PGraph

__all__ = ["screen_small", "screen_1d", "screen_lex", "screen_pareto2",
           "screen_pareto3"]

_INF = np.inf


def screen_1d(b_vals: np.ndarray, w_vals: np.ndarray,
              prune_equal: bool) -> np.ndarray:
    """Screen on a single attribute: ``w`` survives iff nothing in ``B`` is
    better (or equal, when ``prune_equal``)."""
    if b_vals.size == 0:
        return np.ones(w_vals.shape[0], dtype=bool)
    best = b_vals.min()
    if prune_equal:
        return w_vals < best
    return w_vals <= best


def screen_lex(b_block: np.ndarray, w_block: np.ndarray,
               prune_equal: bool) -> np.ndarray:
    """Screen under a total lexicographic order (columns by priority).

    A lexicographic preference is a weak order, so ``w`` is dominated by
    some ``b`` iff it is dominated by the lexicographically best ``b``.
    """
    if b_block.shape[0] == 0:
        return np.ones(w_block.shape[0], dtype=bool)
    best = b_block[0]
    for row in b_block[1:]:
        for level in range(b_block.shape[1]):
            if row[level] < best[level]:
                best = row
                break
            if row[level] > best[level]:
                break
    # state: -1 best < w so far decided, 0 equal so far, +1 best > w decided
    n = w_block.shape[0]
    state = np.zeros(n, dtype=np.int8)
    for level in range(w_block.shape[1]):
        undecided = state == 0
        if not undecided.any():
            break
        column = w_block[:, level]
        state[undecided & (column > best[level])] = -1  # best wins
        state[undecided & (column < best[level])] = 1   # w wins
    dominated = state == -1
    if prune_equal:
        dominated |= state == 0
    return ~dominated


def screen_pareto2(bx: np.ndarray, by: np.ndarray,
                   wx: np.ndarray, wy: np.ndarray,
                   prune_equal: bool) -> np.ndarray:
    """Two-dimensional Pareto screening by sorting and prefix minima.

    ``w`` is dominated iff some ``b`` is no worse on both coordinates and
    strictly better somewhere (or merely equal, when ``prune_equal``).
    """
    if bx.size == 0:
        return np.ones(wx.shape[0], dtype=bool)
    order = np.lexsort((by, bx))
    bx_sorted = bx[order]
    by_sorted = by[order]
    prefix_min = np.minimum.accumulate(by_sorted)
    # b with bx < wx
    k = np.searchsorted(bx_sorted, wx, side="left")
    min_y_lt = np.where(k > 0, prefix_min[np.maximum(k - 1, 0)], _INF)
    # b with bx == wx: first of the equal group has the minimal y
    k2 = np.searchsorted(bx_sorted, wx, side="right")
    has_equal = k2 > k
    min_y_eq = np.where(has_equal,
                        by_sorted[np.minimum(k, bx_sorted.size - 1)], _INF)
    dominated = min_y_lt <= wy
    if prune_equal:
        dominated |= min_y_eq <= wy
    else:
        dominated |= min_y_eq < wy
    return ~dominated


class _Staircase:
    """Minimal (x, y) envelope: x strictly increasing, y strictly decreasing.

    ``query(x)`` returns the minimum ``y`` over entries with key ``<= x``.
    """

    __slots__ = ("xs", "ys")

    def __init__(self) -> None:
        self.xs: list[float] = []
        self.ys: list[float] = []

    def insert(self, x: float, y: float) -> None:
        position = bisect.bisect_right(self.xs, x)
        if position > 0 and self.ys[position - 1] <= y:
            return  # an existing entry already covers (x, y)
        # remove entries made redundant by the new point
        cut = position
        while cut < len(self.xs) and self.ys[cut] >= y:
            cut += 1
        self.xs[position:cut] = [x]
        self.ys[position:cut] = [y]

    def query(self, x: float) -> float:
        position = bisect.bisect_right(self.xs, x)
        if position == 0:
            return _INF
        return self.ys[position - 1]


def screen_pareto3(b_block: np.ndarray, w_block: np.ndarray,
                   prune_equal: bool) -> np.ndarray:
    """Three-dimensional Pareto screening: plane sweep over the first
    coordinate with a 2-d staircase, Kung–Luccio–Preparata style."""
    b = b_block.shape[0]
    w = w_block.shape[0]
    survivors = np.ones(w, dtype=bool)
    if b == 0 or w == 0:
        return survivors
    b_order = np.lexsort((b_block[:, 2], b_block[:, 1], b_block[:, 0]))
    b_sorted = b_block[b_order]
    w_order = np.argsort(w_block[:, 0], kind="stable")
    staircase = _Staircase()
    b_position = 0
    bx = b_sorted[:, 0]
    index = 0
    while index < w:
        # group W rows sharing the same first coordinate
        group_start = index
        x_value = w_block[w_order[index], 0]
        while index < w and w_block[w_order[index], 0] == x_value:
            index += 1
        group = w_order[group_start:index]
        # feed the staircase with every b strictly better on the first axis
        while b_position < b and bx[b_position] < x_value:
            staircase.insert(b_sorted[b_position, 1], b_sorted[b_position, 2])
            b_position += 1
        for row in group:
            if staircase.query(w_block[row, 1]) <= w_block[row, 2]:
                survivors[row] = False
        # b rows equal on the first axis: a 2-d sub-problem on (y, z)
        eq_start = np.searchsorted(bx, x_value, side="left")
        eq_stop = np.searchsorted(bx, x_value, side="right")
        if eq_stop > eq_start:
            alive = group[survivors[group]]
            if alive.size:
                sub = screen_pareto2(
                    b_sorted[eq_start:eq_stop, 1],
                    b_sorted[eq_start:eq_stop, 2],
                    w_block[alive, 1],
                    w_block[alive, 2],
                    prune_equal,
                )
                survivors[alive[~sub]] = False
    return survivors


def _pair_lex_ids(b_pairs: np.ndarray, w_pairs: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Map the rows of two 2-column blocks to their joint lexicographic
    ranks (equal pairs get equal ids)."""
    stacked = np.vstack([b_pairs, w_pairs])
    # lexicographic order: primary = column 0, secondary = column 1
    order = np.lexsort((stacked[:, 1], stacked[:, 0]))
    sorted_rows = stacked[order]
    new_group = np.ones(stacked.shape[0], dtype=bool)
    if stacked.shape[0] > 1:
        new_group[1:] = (sorted_rows[1:] != sorted_rows[:-1]).any(axis=1)
    ranks_sorted = np.cumsum(new_group) - 1
    ids = np.empty(stacked.shape[0], dtype=np.int64)
    ids[order] = ranks_sorted
    return ids[: b_pairs.shape[0]], ids[b_pairs.shape[0]:]


def _screen_case3(b_block: np.ndarray, w_block: np.ndarray,
                  prune_equal: bool) -> np.ndarray:
    """Lemma 4, case 3: ``A1 & (A2 ⊗ A3)`` -- columns (root, child, child)."""
    best_root = b_block[:, 0].min()
    w_root = w_block[:, 0]
    survivors = w_root < best_root
    equal = w_root == best_root
    if equal.any():
        roots_best = b_block[:, 0] == best_root
        survivors_eq = screen_pareto2(
            b_block[roots_best, 1], b_block[roots_best, 2],
            w_block[equal, 1], w_block[equal, 2], prune_equal,
        )
        survivors[np.flatnonzero(equal)[survivors_eq]] = True
    return survivors


def _screen_case4(b_block: np.ndarray, w_block: np.ndarray,
                  prune_equal: bool) -> np.ndarray:
    """Lemma 4, case 4: ``(A1 ⊗ A2) & A3`` -- columns (root, root, sink)."""
    survivors = screen_pareto2(b_block[:, 0], b_block[:, 1],
                               w_block[:, 0], w_block[:, 1],
                               prune_equal=False)
    # Among tuples with an *identical* (A1, A2) pair in B, the sink decides.
    b_ids, w_ids = _pair_lex_ids(b_block[:, :2], w_block[:, :2])
    num_ids = int(max(b_ids.max(initial=-1), w_ids.max(initial=-1))) + 1
    best_sink = np.full(num_ids, _INF)
    np.minimum.at(best_sink, b_ids, b_block[:, 2])
    if prune_equal:
        tie_dominated = best_sink[w_ids] <= w_block[:, 2]
    else:
        tie_dominated = best_sink[w_ids] < w_block[:, 2]
    return survivors & ~tie_dominated


def _screen_case5(b_block: np.ndarray, w_block: np.ndarray,
                  prune_equal: bool) -> np.ndarray:
    """Lemma 4, case 5: ``(A1 & A2) ⊗ A3`` -- columns (upper, lower, free).

    The lexicographic bundle ``(A1 & A2)`` is a total order over pairs, so
    mapping pairs to their lexicographic ranks reduces the problem to a 2-d
    Pareto screening over (pair-rank, A3).
    """
    b_ids, w_ids = _pair_lex_ids(b_block[:, :2], w_block[:, :2])
    return screen_pareto2(b_ids.astype(np.float64), b_block[:, 2],
                          w_ids.astype(np.float64), w_block[:, 2],
                          prune_equal)


def screen_small(b_block: np.ndarray, w_block: np.ndarray,
                 sub_graph: PGraph, prune_equal: bool) -> np.ndarray:
    """Screen ``W`` against ``B`` for a p-graph of at most 3 attributes.

    ``b_block``/``w_block`` carry exactly the columns of ``sub_graph``.
    Dispatches on the closure's shape to the Lemma 3 / Lemma 4 procedures.
    """
    d = sub_graph.d
    if w_block.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    if b_block.shape[0] == 0:
        return np.ones(w_block.shape[0], dtype=bool)
    if d == 0:
        if prune_equal:
            return np.zeros(w_block.shape[0], dtype=bool)
        return np.ones(w_block.shape[0], dtype=bool)
    if d == 1:
        return screen_1d(b_block[:, 0], w_block[:, 0], prune_equal)
    closure = sub_graph.closure
    num_edges = sum(mask.bit_count() for mask in closure)
    if d == 2:
        if num_edges == 0:
            return screen_pareto2(b_block[:, 0], b_block[:, 1],
                                  w_block[:, 0], w_block[:, 1], prune_equal)
        root = 0 if closure[0] else 1
        cols = [root, 1 - root]
        return screen_lex(b_block[:, cols], w_block[:, cols], prune_equal)
    if d != 3:
        raise ValueError("screen_small handles at most three attributes")
    if num_edges == 0:
        return screen_pareto3(b_block, w_block, prune_equal)
    if num_edges == 3:
        # total order: sort columns by depth
        cols = sorted(range(3), key=lambda i: sub_graph.depths[i])
        return screen_lex(b_block[:, cols], w_block[:, cols], prune_equal)
    if num_edges == 1:
        upper = next(i for i in range(3) if closure[i])
        lower = indices_of(closure[upper])[0]
        free = next(i for i in range(3) if i not in (upper, lower))
        cols = [upper, lower, free]
        return _screen_case5(b_block[:, cols], w_block[:, cols], prune_equal)
    # num_edges == 2: either one root with two children, or two roots
    # sharing one sink.
    fan_out = next((i for i in range(3) if closure[i].bit_count() == 2), None)
    if fan_out is not None:
        children = indices_of(closure[fan_out])
        cols = [fan_out, children[0], children[1]]
        return _screen_case3(b_block[:, cols], w_block[:, cols], prune_equal)
    sink = next(i for i in range(3)
                if sub_graph.ancestors_mask[i].bit_count() == 2)
    roots = [i for i in range(3) if i != sink]
    cols = [roots[0], roots[1], sink]
    return _screen_case4(b_block[:, cols], w_block[:, cols], prune_equal)
