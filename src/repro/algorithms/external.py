"""External-memory p-skyline execution (Section 6's motivation).

Scan-based algorithms are attractive because they run in external memory;
this module provides page-level implementations on top of the simulated
storage of :mod:`repro.storage.blocks`:

* :func:`external_bnl` -- multi-pass BNL whose window is limited to a
  budget of *pages*; overflow tuples spill to a temporary paged file;
* :func:`external_sort` -- classic run-generation + k-way-merge external
  merge sort, ordering tuples by the ``≻ext`` keys (Theorem 3);
* :func:`external_sfs` -- external sort followed by a single filtering
  scan (the window holds only p-skyline tuples and stays in memory).

Rows travel through the files with their original row id appended as a
trailing column, so results are reported as input indices; the
``Stats.io_reads`` / ``Stats.io_writes`` counters expose the page traffic.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from ..storage.blocks import PagedFile, StorageManager
from .base import Stats, check_input, ensure_context, register

__all__ = ["external_bnl", "external_sfs", "external_sort"]


def _attach_ids(ranks: np.ndarray) -> np.ndarray:
    ids = np.arange(ranks.shape[0], dtype=np.float64).reshape(-1, 1)
    return np.hstack([ranks, ids])


@register("external-bnl", external=True, bounded_window=True)
def external_bnl(ranks: np.ndarray, graph: PGraph, *,
                 stats: Stats | None = None,
                 context: ExecutionContext | None = None,
                 page_size: int = 256,
                 window_pages: int = 16) -> np.ndarray:
    """Multi-pass BNL over paged storage with a bounded window.

    The window holds at most ``window_pages * page_size`` tuples.  Window
    tuples that entered while the current pass's overflow file was still
    empty are emitted at the end of the pass (they have met every possible
    dominator); the rest carry over.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    dominance = context.compiled(graph).dominance
    storage = StorageManager(page_size)
    if ranks.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    window_capacity = window_pages * page_size
    current = storage.from_matrix(_attach_ids(ranks), "input")

    result: list[int] = []
    window = np.empty((0, ranks.shape[1] + 1))
    window_entry: list[int] = []
    while True:
        if stats is not None:
            stats.passes += 1
        overflow = storage.create(ranks.shape[1] + 1)
        overflow_rows = 0
        for page in current.scan():
            context.check("external-bnl-page")
            for row in page:
                body = row[:-1]
                if window.shape[0]:
                    if stats is not None:
                        stats.dominance_tests += 2 * window.shape[0]
                    if dominance.dominators_mask(window[:, :-1], body).any():
                        continue
                    beaten = dominance.dominated_mask(window[:, :-1], body)
                    if beaten.any():
                        keep = ~beaten
                        window = window[keep]
                        window_entry = [e for e, k in zip(window_entry, keep)
                                        if k]
                if window.shape[0] < window_capacity:
                    window = np.vstack([window, row.reshape(1, -1)])
                    window_entry.append(overflow_rows)
                else:
                    overflow.append_rows(row)
                    overflow_rows += 1
        overflow.close_writes()
        carried_rows: list[np.ndarray] = []
        for row, entry in zip(window, window_entry):
            if entry == 0 or overflow_rows == 0:
                result.append(int(row[-1]))
            else:
                carried_rows.append(row)
        window = (np.vstack(carried_rows) if carried_rows
                  else np.empty((0, ranks.shape[1] + 1)))
        window_entry = [0] * window.shape[0]
        if overflow_rows == 0:
            break
        current = overflow
    if stats is not None:
        stats.io_reads += storage.counter.reads
        stats.io_writes += storage.counter.writes
    context.event("external-bnl", rows=ranks.shape[0],
                  survivors=len(result),
                  page_reads=storage.counter.reads,
                  page_writes=storage.counter.writes)
    return np.sort(np.asarray(result, dtype=np.intp))


def external_sort(source: PagedFile, keys: np.ndarray,
                  storage: StorageManager,
                  buffer_pages: int = 16) -> PagedFile:
    """External merge sort of ``source`` by the given per-row key matrix.

    ``keys[i]`` are the sort keys of input row ``i`` (rows carry their id
    in the trailing column, which is how keys are looked up after the
    first pass).  Runs of ``buffer_pages`` pages are sorted in memory and
    merged ``buffer_pages - 1`` ways per level.
    """
    if buffer_pages < 2:
        raise ValueError("need at least two buffer pages")

    def key_of(row: np.ndarray) -> tuple[float, ...]:
        return tuple(keys[int(row[-1])])

    # -- run generation ---------------------------------------------------------
    runs: list[PagedFile] = []
    batch: list[np.ndarray] = []

    def flush_batch() -> None:
        if not batch:
            return
        block = np.vstack(batch)
        order = np.lexsort(tuple(
            keys[block[:, -1].astype(np.intp), level]
            for level in range(keys.shape[1] - 1, -1, -1)
        )) if keys.shape[1] else np.arange(block.shape[0])
        run = storage.create(source.arity)
        run.append_rows(block[order])
        run.close_writes()
        runs.append(run)
        batch.clear()

    pages_in_batch = 0
    for page in source.scan():
        batch.append(page)
        pages_in_batch += 1
        if pages_in_batch == buffer_pages:
            flush_batch()
            pages_in_batch = 0
    flush_batch()
    if not runs:
        empty = storage.create(source.arity)
        empty.close_writes()
        return empty

    # -- merge levels ----------------------------------------------------------
    fan_in = buffer_pages - 1
    while len(runs) > 1:
        merged_level: list[PagedFile] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start:start + fan_in]
            if len(group) == 1:
                merged_level.append(group[0])
                continue
            merged_level.append(_merge_runs(group, key_of, storage))
        runs = merged_level
    return runs[0]


def _merge_runs(group: list[PagedFile], key_of, storage: StorageManager
                ) -> PagedFile:
    output = storage.create(group[0].arity)
    heap: list[tuple[tuple[float, ...], int, int, int]] = []
    buffers: list[np.ndarray] = []
    positions: list[tuple[int, int]] = []  # (page index, row index)
    for run_index, run in enumerate(group):
        page = run.read_page(0) if run.num_pages else None
        buffers.append(page if page is not None else np.empty((0, 0)))
        positions.append((0, 0))
        if page is not None and page.shape[0]:
            heapq.heappush(heap, (key_of(page[0]), run_index, 0, 0))
    while heap:
        _, run_index, page_index, row_index = heapq.heappop(heap)
        row = buffers[run_index][row_index]
        output.append_rows(row)
        next_row = row_index + 1
        next_page = page_index
        if next_row >= buffers[run_index].shape[0]:
            next_page += 1
            next_row = 0
            if next_page >= group[run_index].num_pages:
                continue
            buffers[run_index] = group[run_index].read_page(next_page)
        heapq.heappush(
            heap,
            (key_of(buffers[run_index][next_row]), run_index, next_page,
             next_row),
        )
    output.close_writes()
    return output


@register("external-sfs", external=True)
def external_sfs(ranks: np.ndarray, graph: PGraph, *,
                 stats: Stats | None = None,
                 context: ExecutionContext | None = None,
                 page_size: int = 256,
                 buffer_pages: int = 16) -> np.ndarray:
    """External SFS: external ``≻ext`` sort plus a single filtering scan.

    The filter window holds only p-skyline tuples and is assumed to fit in
    memory, as is standard for SFS.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    if ranks.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    compiled = context.compiled(graph)
    dominance = compiled.dominance
    keys = compiled.extension.keys(ranks)
    storage = StorageManager(page_size)
    source = storage.from_matrix(_attach_ids(ranks), "input")
    context.check("external-sort")
    sorted_file = external_sort(source, keys, storage,
                                buffer_pages=buffer_pages)
    if stats is not None:
        stats.passes += 1
    survivors: list[int] = []
    window_parts: list[np.ndarray] = []
    for page in sorted_file.scan():
        context.check("external-sfs-page")
        body = page[:, :-1]
        alive = np.ones(page.shape[0], dtype=bool)
        for part in window_parts:
            if stats is not None:
                stats.dominance_tests += int(alive.sum()) * part.shape[0]
            alive[alive] = dominance.screen_block(body[alive], part)
            if not alive.any():
                break
        if alive.any():
            if stats is not None:
                stats.dominance_tests += int(alive.sum()) ** 2
            alive[alive] = dominance.screen_block(body[alive], body[alive])
        if alive.any():
            window_parts.append(body[alive])
            survivors.extend(int(i) for i in page[alive, -1])
    if stats is not None:
        stats.io_reads += storage.counter.reads
        stats.io_writes += storage.counter.writes
    context.event("external-sfs", rows=ranks.shape[0],
                  survivors=len(survivors),
                  page_reads=storage.counter.reads,
                  page_writes=storage.counter.writes)
    return np.sort(np.asarray(survivors, dtype=np.intp))
