"""P-skyline evaluation algorithms.

Importing this package populates :data:`repro.algorithms.base.REGISTRY`
with every available algorithm:

========  ==========================================================
name      algorithm
========  ==========================================================
naive     exhaustive pairwise dominance (the correctness oracle)
bnl       block-nested-loop window algorithm
bbs       branch-and-bound over an STR R-tree (extension)
sfs       sort-filter-skyline with the ``≻ext`` presort (Section 6)
less      elimination filter + SFS (Section 6)
salsa     minC sort-and-limit with early stop (extension)
dc        divide and conquer, ``O(n log^{d-2} n)`` (Section 3)
osdc      output-sensitive divide and conquer, ``O(n log^{d-2} v)``
osdc-linear  OSDC with the Section 5 linear average-case pre-scan
========  ==========================================================
"""

from .base import (REGISTRY, REGISTRY_INFO, Algorithm, AlgorithmInfo,
                   Stats, ensure_context, get_algorithm, get_info,
                   register)
from .bbs import bbs, bbs_iter
from .bnl import bnl
from .incremental import PSkylineMaintainer
from .layered import NotAWeakOrderError, layered, weak_order_layers
from .dc import dc
from .external import external_bnl, external_sfs, external_sort
from .external_osdc import external_osdc
from .less import less
from .linear_avg import osdc_linear, virtual_tuple
from .naive import naive
from .osdc import osdc
from .parallel import parallel_osdc
from .sliding import SlidingWindowPSkyline
from .pscreen import PScreener, pscreen, split_threshold
from .ranked import peel_layers, top_k
from .salsa import salsa
from .sfs import sfs, sfs_iter
from .special import pscreen_single_point, pskyline_single_point

__all__ = [
    "REGISTRY",
    "REGISTRY_INFO",
    "Algorithm",
    "AlgorithmInfo",
    "Stats",
    "ensure_context",
    "get_algorithm",
    "get_info",
    "register",
    "naive",
    "bbs",
    "bbs_iter",
    "PSkylineMaintainer",
    "layered",
    "weak_order_layers",
    "NotAWeakOrderError",
    "bnl",
    "sfs",
    "sfs_iter",
    "less",
    "salsa",
    "dc",
    "osdc",
    "external_bnl",
    "external_sfs",
    "external_sort",
    "external_osdc",
    "osdc_linear",
    "parallel_osdc",
    "SlidingWindowPSkyline",
    "virtual_tuple",
    "pscreen",
    "top_k",
    "peel_layers",
    "PScreener",
    "split_threshold",
    "pskyline_single_point",
    "pscreen_single_point",
]
