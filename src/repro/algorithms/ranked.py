"""Ranked retrieval on top of p-skylines: top-k and onion layers.

Two retrieval modes a preference query front end typically needs beyond
the raw maximal set:

* :func:`top_k` -- at most ``k`` p-skyline tuples, best ``≻ext`` first.
  Served progressively from BBS (:mod:`repro.algorithms.bbs`), which
  emits p-skyline members in ``≻ext`` order and can stop after ``k``
  results without computing the rest;
* :func:`peel_layers` -- the iterated p-skyline ("onion layers"): layer 1
  is ``M_pi(D)``, layer 2 is ``M_pi`` of the remainder, and so on.  The
  layer index of a tuple is a useful preference-aware rank (layer 1 =
  undominated, layer 2 = dominated only by layer 1, ...).
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from ..index.rtree import RTree
from .base import Stats, check_input, ensure_context, get_algorithm
from .bbs import bbs_iter

__all__ = ["top_k", "peel_layers"]


def top_k(ranks: np.ndarray, graph: PGraph, k: int, *,
          stats: Stats | None = None,
          context: ExecutionContext | None = None, fanout: int = 32,
          tree: RTree | None = None) -> np.ndarray:
    """The first ``k`` p-skyline tuples in ``≻ext`` order (fewer if the
    p-skyline is smaller).

    Returns row indices in *emission* order -- the most preferred tuples
    first -- not sorted by index.  Because BBS is progressive the cost is
    proportional to the part of the answer actually consumed.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    iterator = bbs_iter(ranks, graph, stats=stats, context=context,
                        fanout=fanout, tree=tree)
    rows = list(itertools.islice(iterator, k))
    return np.asarray(rows, dtype=np.intp)


def peel_layers(ranks: np.ndarray, graph: PGraph, *,
                max_layers: int | None = None, algorithm: str = "osdc",
                stats: Stats | None = None,
                context: ExecutionContext | None = None
                ) -> list[np.ndarray]:
    """Partition the input into successive p-skyline layers.

    Returns a list of sorted index arrays; their concatenation is a
    permutation of all rows (unless ``max_layers`` truncates it).  Layer
    ``i`` contains exactly the tuples whose longest dominator chain has
    length ``i - 1``.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    function = get_algorithm(algorithm)
    remaining = np.arange(ranks.shape[0], dtype=np.intp)
    layers: list[np.ndarray] = []
    while remaining.size:
        context.check("peel-layer")
        if max_layers is not None and len(layers) >= max_layers:
            break
        local = function(ranks[remaining], graph, context=context)
        layer = remaining[local]
        layers.append(layer)
        keep = np.ones(remaining.size, dtype=bool)
        keep[local] = False
        remaining = remaining[keep]
    return layers
