"""The linear average-case variant of OSDC (Section 5).

Two-phase strategy following Bentley, Clarkson and Levine:

1. Build a *virtual tuple* ``t*`` whose coordinate on every attribute is
   the empirical ``q``-quantile of that column, with
   ``q = (ln n / n)^(1/d)``.  Under component independence the probability
   that no input tuple p-dominates ``t*`` is below ``1/n``, while the
   expected number of tuples *not* dominated by ``t*`` is ``o(n)``.
2. If some real tuple ``r`` dominates ``t*``, every tuple dominated by
   ``t*`` is (by transitivity of ``≻_pi``) dominated by ``r`` and can be
   discarded after a single linear scan; OSDC then runs on the ``o(n)``
   survivors.  Otherwise (probability ``< 1/n``) OSDC runs on the full
   input.

The amortised average cost is ``O(n)``; the worst case stays
``O(n log^{d-2} v)``.
"""

from __future__ import annotations

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import Stats, check_input, ensure_context, register
from .osdc import osdc

__all__ = ["osdc_linear", "virtual_tuple"]


def virtual_tuple(ranks: np.ndarray, quantile: float | None = None
                  ) -> np.ndarray:
    """The per-column ``q``-quantile pruning tuple of phase 1.

    ``quantile`` defaults to ``(ln n / n)^(1/d)``, the choice that makes
    the failure probability of the scan at most ``1/n`` under CI.
    """
    n, d = ranks.shape
    if n == 0 or d == 0:
        raise ValueError("virtual tuple requires a non-empty input")
    if quantile is None:
        if n < 3:
            quantile = 0.5
        else:
            quantile = float((np.log(n) / n) ** (1.0 / d))
    quantile = min(max(quantile, 0.0), 1.0)
    return np.quantile(ranks, quantile, axis=0)


@register("osdc-linear")
def osdc_linear(ranks: np.ndarray, graph: PGraph, *,
                stats: Stats | None = None,
                context: ExecutionContext | None = None,
                quantile: float | None = None,
                min_size: int = 64, **osdc_options) -> np.ndarray:
    """OSDC preceded by the linear virtual-tuple pruning scan (Section 5).

    Returns sorted row indices.  Inputs smaller than ``min_size`` skip the
    scan (the quantile bound is meaningless for tiny ``n``).
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    n = ranks.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if n < min_size:
        return osdc(ranks, graph, context=context, **osdc_options)

    context.check("virtual-tuple-scan")
    dominance = context.compiled(graph).dominance
    pivot = virtual_tuple(ranks, quantile)
    if stats is not None:
        stats.passes += 1
        stats.dominance_tests += 2 * n
    has_dominator = dominance.dominators_mask(ranks, pivot).any()
    if not has_dominator:
        # Phase 3 (probability < 1/n under CI): fall back to the full input.
        return osdc(ranks, graph, context=context, **osdc_options)
    survivors = np.flatnonzero(~dominance.dominated_mask(ranks, pivot))
    if stats is not None:
        stats.pruned_by_filter += n - survivors.size
    local = osdc(ranks[survivors], graph, context=context, **osdc_options)
    return np.sort(survivors[local])
