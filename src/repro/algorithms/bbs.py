"""BBS (branch-and-bound skyline) generalised to p-skyline queries.

Papadias et al.'s BBS explores an R-tree best-first, ordered by a
*mindist* that is monotone with respect to dominance, pruning every entry
whose lower corner is already dominated.  Two observations carry it over
to prioritized preferences:

* the lexicographic ``≻ext`` key of an entry's lower corner is a valid
  mindist: the corner is coordinate-wise no worse than any contained
  point, per-depth sums are monotone in the coordinates, and Theorem 3
  guarantees ``p ≻_pi q  =>  key(p) <lex key(q)`` -- so every possible
  dominator of a point is popped (and reported) before the point itself;
* if a result tuple ``r`` p-dominates an entry's lower corner ``c``, then
  for any point ``q`` inside the entry ``c ⪰_pi q`` (the corner is no
  worse everywhere), hence ``r ≻_pi q`` by transitivity -- the whole
  entry can be pruned.

BBS is *progressive*: p-skyline tuples are emitted in ``≻ext`` order, and
it inspects only the R-tree nodes not dominated by the answer.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from ..core.extension import ExtensionOrder
from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from ..index.rtree import RTree
from .base import Stats, check_input, ensure_context, register

__all__ = ["bbs", "bbs_iter"]


def _corner_key(extension: ExtensionOrder, point: np.ndarray) -> tuple:
    return tuple(extension.keys(point.reshape(1, -1))[0])


def bbs_iter(ranks: np.ndarray, graph: PGraph, *,
             stats: Stats | None = None,
             context: ExecutionContext | None = None, fanout: int = 32,
             tree: RTree | None = None) -> Iterator[int]:
    """Yield p-skyline row indices progressively, best (``≻ext``) first."""
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    if ranks.shape[0] == 0:
        return
    compiled = context.compiled(graph)
    dominance = compiled.dominance
    extension = compiled.extension
    if tree is None:
        tree = RTree(ranks, fanout=fanout)
    assert tree.root is not None
    result_rows: list[int] = []
    result_block = np.empty((0, ranks.shape[1]))
    tiebreak = itertools.count()
    heap: list[tuple] = []

    def push_node(node) -> None:
        heapq.heappush(
            heap,
            (_corner_key(extension, node.low), next(tiebreak), node, -1),
        )

    def push_point(row: int) -> None:
        heapq.heappush(
            heap,
            (_corner_key(extension, ranks[row]), next(tiebreak), None,
             int(row)),
        )

    def dominated(point: np.ndarray) -> bool:
        nonlocal result_block
        if not result_rows:
            return False
        if stats is not None:
            stats.dominance_tests += result_block.shape[0]
        return bool(dominance.dominators_mask(result_block, point).any())

    push_node(tree.root)
    popped = 0
    while heap:
        if popped % 256 == 0:
            context.check("bbs-pop")
        popped += 1
        _, _, node, row = heapq.heappop(heap)
        if node is None:
            point = ranks[row]
            if dominated(point):
                continue
            # emission boundary: a consumer that cancelled after the
            # previous result must see the error before the next one
            context.check("bbs-emit")
            result_rows.append(row)
            result_block = np.vstack([result_block,
                                      point.reshape(1, -1)])
            if stats is not None:
                stats.window_peak = max(stats.window_peak,
                                        len(result_rows))
            yield row
        else:
            if dominated(node.low):
                if stats is not None:
                    stats.pruned_by_filter += 1
                continue
            if node.is_leaf:
                for leaf_row in node.rows:
                    push_point(int(leaf_row))
            else:
                for child in node.children:
                    push_node(child)


# R-tree node pruning eliminates whole subtrees without per-tuple tests
@register("bbs", progressive=True, iterator=bbs_iter,
          counts_dominance=False)
def bbs(ranks: np.ndarray, graph: PGraph, *, stats: Stats | None = None,
        context: ExecutionContext | None = None,
        fanout: int = 32, tree: RTree | None = None) -> np.ndarray:
    """Compute ``M_pi(D)`` with branch-and-bound over an R-tree.

    Returns sorted row indices.  Pass a prebuilt ``tree`` to amortise the
    index across queries (it must index exactly ``ranks``).
    """
    rows = list(bbs_iter(ranks, graph, stats=stats, context=context,
                         fanout=fanout, tree=tree))
    return np.sort(np.asarray(rows, dtype=np.intp))
