"""SALSA (Sort and Limit Skyline Algorithm) adapted to p-skylines.

Bartolini, Ciaccia and Patella's SALSA sorts the input by the *minimum
coordinate* and stops early once a *stop point* ``p*`` -- the window tuple
with the smallest maximum coordinate -- is strictly better on every
attribute than anything that can still arrive.  The early stop carries
over to arbitrary p-expressions unchanged: a tuple that is strictly better
on **every** attribute p-dominates for *any* p-graph (``Better(t, p*)``
is empty, so Proposition 1.3 holds trivially).

Unlike SFS, minC-sorting is *not* a weak-order extension of ``≻_pi`` in
general, so the scan must keep a BNL-style window (tuples can evict
earlier window entries).
"""

from __future__ import annotations

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import (Stats, check_input, ensure_context, register,
                   resolve_kernel)

__all__ = ["salsa"]


# the sort-based stop point discards the input tail without testing it
@register("salsa", counts_dominance=False)
def salsa(ranks: np.ndarray, graph: PGraph, *,
          stats: Stats | None = None,
          context: ExecutionContext | None = None,
          kernel: str = "auto") -> np.ndarray:
    """Compute ``M_pi(D)`` with minC-sorting and an early-stop window."""
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    dominance = context.compiled(graph).dominance
    n = ranks.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    # one-vs-window comparisons whose window grows with the output
    kernel = resolve_kernel(dominance, context, kernel)
    min_coord = ranks.min(axis=1)
    max_coord = ranks.max(axis=1)
    order = np.argsort(min_coord, kind="stable")
    if stats is not None:
        stats.passes += 1

    window: list[int] = []
    stop_value = np.inf
    for position, row in enumerate(order):
        if position % 256 == 0:
            context.check("salsa-scan")
        if min_coord[row] > stop_value:
            # every remaining tuple is strictly worse than the stop point on
            # all attributes, hence dominated under any p-expression
            if stats is not None:
                stats.pruned_by_filter += order.size - position
            break
        tuple_ranks = ranks[row]
        if window:
            block = ranks[np.asarray(window, dtype=np.intp)]
            if stats is not None:
                stats.dominance_tests += 2 * len(window)
            if dominance.dominators_mask(block, tuple_ranks,
                                         kernel=kernel).any():
                continue
            beaten = dominance.dominated_mask(block, tuple_ranks,
                                              kernel=kernel)
            if beaten.any():
                window = [w for w, dead in zip(window, beaten) if not dead]
        window.append(row)
        stop_value = min(stop_value, float(max_coord[row]))
        if stats is not None:
            stats.window_peak = max(stats.window_peak, len(window))
    return np.sort(np.asarray(window, dtype=np.intp))
