"""Continuous p-skyline queries over a sliding window.

The classic streaming setting: the answer is ``M_pi`` of the most recent
``window`` stream items.  Built on
:class:`~repro.algorithms.incremental.PSkylineMaintainer`: appending an
item inserts it and evicts the item that just left the window, with
retained-tuple promotion keeping the answer exact at every step.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .incremental import PSkylineMaintainer

__all__ = ["SlidingWindowPSkyline"]


class SlidingWindowPSkyline:
    """Exact ``M_pi`` of the last ``window`` appended tuples."""

    def __init__(self, graph: PGraph, window: int,
                 context: ExecutionContext | None = None,
                 kernel: str = "auto", shards: int = 1):
        if window < 1:
            raise ValueError("window must hold at least one tuple")
        if shards < 1:
            raise ValueError("shards must be positive")
        self.graph = graph
        self.window = window
        if shards > 1:
            # imported lazily: core.sharding imports this module's
            # sibling (incremental), not the other way around
            from ..core.sharding import ShardedPSkylineMaintainer

            self._maintainer = ShardedPSkylineMaintainer(
                graph, shards, context=context, kernel=kernel,
                capacity=2 * window)
        else:
            self._maintainer = PSkylineMaintainer(graph,
                                                  capacity=2 * window,
                                                  context=context,
                                                  kernel=kernel)
        self._queue: deque[int] = deque()

    def append(self, values) -> int:
        """Add the newest stream item (evicting the expired one);
        returns its tuple id.

        Safe under cancellation: the expired item is evicted *before*
        the new one is inserted, and the maintainer's delete rolls
        itself back when a deadline/cancel fires mid-promotion -- so at
        every exception point the answer still equals ``M_pi`` of the
        window contents and the append can simply be retried.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.graph.d,):
            raise ValueError(
                f"expected a rank vector of length {self.graph.d}")
        if np.isnan(values).any():
            raise ValueError("NaN ranks are not allowed")
        if len(self._queue) >= self.window:
            self._maintainer.delete(self._queue[0])
            self._queue.popleft()
        tuple_id = self._maintainer.insert(values)
        self._queue.append(tuple_id)
        return tuple_id

    def __len__(self) -> int:
        return len(self._queue)

    def skyline_ids(self) -> np.ndarray:
        """Ids of the current window's maximal tuples (sorted; ids are
        append order, so larger id = more recent)."""
        return self._maintainer.skyline_ids()

    def skyline_ranks(self) -> np.ndarray:
        """Rank vectors of the current window's maximal tuples."""
        return self._maintainer.skyline_ranks()

    def contents(self) -> np.ndarray:
        """Rank vectors of everything currently in the window, oldest
        first."""
        ids = np.fromiter(self._queue, dtype=np.intp,
                          count=len(self._queue))
        return self._maintainer.ranks_of(ids)
