"""DC: the basic divide-and-conquer p-skyline algorithm (Section 3).

DC splits the input at the median of a carefully chosen attribute ``A``
(all ancestors of ``A`` must be constant over the current sub-problem, so
the preference on ``A`` cannot be overridden), recursively computes the
p-skyline of the better half ``B``, p-screens the worse half ``W`` against
it, and recurses on the survivors.  Worst case ``O(n log^{d-2} n)``.
"""

from __future__ import annotations

import numpy as np

from ..core.bitsets import iter_bits
from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import (Stats, check_input, ensure_context, register,
                   resolve_kernel)
from .naive import maximal_mask
from .pscreen import PScreener, split_threshold

__all__ = ["dc"]


#: Candidate-attribute selection strategies for the split step.  The
#: paper's pseudocode says only "select an attribute from C"; the choice
#: affects balance, not correctness (see the selection ablation bench).
SELECT_STRATEGIES = ("first", "rotate", "widest")


class _DivideAndConquer:
    """Shared recursion driver for DC (and subclassed by OSDC)."""

    def __init__(self, ranks: np.ndarray, graph: PGraph,
                 screener: PScreener, context: ExecutionContext,
                 leaf_size: int, select: str = "first"):
        if select not in SELECT_STRATEGIES:
            raise ValueError(
                f"unknown selection strategy {select!r}; "
                f"choose from {SELECT_STRATEGIES}"
            )
        self.ranks = ranks
        self.graph = graph
        self.screener = screener
        self.context = context
        self.stats = context.stats
        self.leaf_size = max(1, leaf_size)
        self.select = select

    def run(self) -> np.ndarray:
        indices = np.arange(self.ranks.shape[0], dtype=np.intp)
        result = self.rec(indices, self.graph.roots, 0, 0)
        counters = {"rows": self.ranks.shape[0],
                    "survivors": int(result.size)}
        if self.stats is not None:
            counters["recursive_calls"] = self.stats.recursive_calls
            counters["max_depth"] = self.stats.max_depth
        self.context.event("divide-and-conquer", **counters)
        return np.sort(result)

    def rec(self, idx: np.ndarray, cand: int, equal: int,
            depth: int) -> np.ndarray:
        self.context.check("divide-and-conquer")
        if self.stats is not None:
            self.stats.recursive_calls += 1
            self.stats.max_depth = max(self.stats.max_depth, depth)
        if idx.size <= 1 or cand == 0:
            return idx
        if idx.size <= self.leaf_size:
            if self.stats is not None:
                self.stats.dominance_tests += idx.size * (idx.size - 1)
            keep = maximal_mask(self.ranks[idx], self.screener.dominance,
                                kernel=self.screener.kernel)
            return idx[keep]
        # pick a candidate attribute; promote constant ones into E
        attribute = None
        while cand:
            attribute = self._choose(idx, cand, depth)
            if attribute is not None:
                break
            # every candidate is constant over D: move them to E and pull
            # in the successors whose predecessors are now all equal
            a = next(iter_bits(cand))
            cand &= ~(1 << a)
            equal |= 1 << a
            for successor in iter_bits(self.graph.successors(a)):
                if (self.graph.predecessors(successor) & ~equal) == 0:
                    cand |= 1 << successor
        if attribute is None:
            return idx  # all relevant attributes equal: all maximal
        return self.split(idx, attribute, cand, equal, depth)

    def _choose(self, idx: np.ndarray, cand: int, depth: int) -> int | None:
        """Pick a non-constant candidate attribute, or None if all are
        constant over the current sub-problem."""
        usable: list[int] = []
        for a in iter_bits(cand):
            column = self.ranks[idx, a]
            if column.min() != column.max():
                if self.select == "first":
                    return a
                usable.append(a)
        if not usable:
            return None
        if self.select == "rotate":
            return usable[depth % len(usable)]
        # "widest": the attribute whose values spread the most, after
        # normalising by the sub-problem's scale -- a cheap balance proxy
        best = usable[0]
        best_spread = -1.0
        for a in usable:
            column = self.ranks[idx, a]
            low = float(column.min())
            high = float(column.max())
            spread = (high - low) / (abs(high) + abs(low) + 1.0)
            if spread > best_spread:
                best_spread = spread
                best = a
        return best

    def split(self, idx: np.ndarray, attribute: int, cand: int, equal: int,
              depth: int) -> np.ndarray:
        """One divide-and-conquer step of plain DC (lines 12-16)."""
        if self.stats is not None:
            self.stats.splits += 1
        column = self.ranks[idx, attribute]
        tau = split_threshold(column)
        better = idx[column < tau]
        worse = idx[column >= tau]
        better_sky = self.rec(better, cand, equal, depth + 1)
        survivors = self.screener.screen(
            self.ranks, better_sky, worse,
            candidates=cand & ~(1 << attribute), equal=equal,
            dropped=1 << attribute, context=self.context,
        )
        worse_sky = self.rec(survivors, cand, equal, depth + 1)
        return np.concatenate([better_sky, worse_sky])


# eliminates via the vectorised low-dimensional merge, which does not
# account per-tuple dominance tests
@register("dc", counts_dominance=False)
def dc(ranks: np.ndarray, graph: PGraph, *, stats: Stats | None = None,
       context: ExecutionContext | None = None,
       leaf_size: int = 16, use_lowdim: bool = True,
       dense_cutoff: int = 4096, select: str = "first",
       kernel: str = "auto") -> np.ndarray:
    """Compute ``M_pi(D)`` with the paper's Algorithm DC.

    Returns sorted row indices.  ``leaf_size`` switches to the quadratic
    vectorised kernel for tiny sub-problems (``leaf_size=1`` matches the
    paper's pseudocode exactly); ``select`` picks the split-attribute
    strategy (:data:`SELECT_STRATEGIES`).
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    if ranks.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    compiled = context.compiled(graph)
    resolve_kernel(compiled.dominance, context, kernel,
                   pairs=dense_cutoff)
    screener = compiled.screener(
        use_lowdim=use_lowdim, dense_cutoff=dense_cutoff,
        kernel=None if kernel == "auto" else kernel)
    driver = _DivideAndConquer(ranks, graph, screener, context, leaf_size,
                               select)
    return driver.run()
