"""Incremental p-skyline maintenance under insertions and deletions.

The paper evaluates one-shot queries; a library user often needs to keep
``M_pi(D)`` up to date while ``D`` changes.  :class:`PSkylineMaintainer`
supports:

* ``insert(tuple)`` -- one vectorised comparison against the current
  p-skyline: the new tuple is discarded if dominated, otherwise it joins
  the p-skyline and evicts what it dominates.  Evicted and shadowed
  tuples are *retained* (they may resurface after deletions).
* ``delete(tuple_id)`` -- deleting a non-skyline tuple is O(1); deleting
  a p-skyline member promotes exactly the retained tuples that were
  dominated by it and by no other survivor (computed with one screening
  pass over the retained set).

The maintained set always equals ``M_pi`` of the alive tuples -- verified
in the tests against recomputation from scratch after every operation.
"""

from __future__ import annotations

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import ensure_context
from .osdc import osdc

__all__ = ["PSkylineMaintainer"]


class PSkylineMaintainer:
    """Maintains ``M_pi`` of a dynamic set of tuples.

    Tuples are identified by the integer id returned from :meth:`insert`.
    A shared :class:`ExecutionContext` (or the default one created here)
    supplies the compiled preference, so the dominance oracle is built
    once per p-graph across all maintainers.
    """

    def __init__(self, graph: PGraph, capacity: int = 1024,
                 context: ExecutionContext | None = None,
                 kernel: str = "auto"):
        self.graph = graph
        self.context = ensure_context(context)
        self.dominance = self.context.compiled(graph).dominance
        self.kernel = None if kernel == "auto" else kernel
        self._ranks = np.empty((capacity, graph.d), dtype=np.float64)
        self._alive = np.zeros(capacity, dtype=bool)
        self._in_skyline = np.zeros(capacity, dtype=bool)
        self._size = 0

    # -- views ---------------------------------------------------------------
    @property
    def num_alive(self) -> int:
        return int(self._alive[: self._size].sum())

    def skyline_ids(self) -> np.ndarray:
        """The current p-skyline, as sorted tuple ids."""
        return np.flatnonzero(self._in_skyline[: self._size])

    def skyline_ranks(self) -> np.ndarray:
        return self._ranks[self.skyline_ids()]

    def ranks_of(self, ids) -> np.ndarray:
        """Rank vectors for the given tuple ids (in the given order)."""
        return self._ranks[np.asarray(ids, dtype=np.intp)].copy()

    def alive_ids(self) -> np.ndarray:
        """All alive tuple ids, sorted."""
        return np.flatnonzero(self._alive[: self._size])

    def __contains__(self, tuple_id: int) -> bool:
        return (0 <= tuple_id < self._size
                and bool(self._alive[tuple_id]))

    # -- mutation ------------------------------------------------------------
    def insert(self, values) -> int:
        """Insert a tuple (length-``d`` ranks, smaller better); returns its
        id.  Cost: one comparison against the current p-skyline."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.graph.d,):
            raise ValueError(
                f"expected a rank vector of length {self.graph.d}"
            )
        if np.isnan(values).any():
            raise ValueError("NaN ranks are not allowed")
        self.context.check("maintainer-insert")
        tuple_id = self._append(values)
        skyline = self.skyline_ids()
        # the new tuple id is already stored but not yet in the skyline
        if skyline.size:
            block = self._ranks[skyline]
            if self.dominance.dominators_mask(
                    block, values, kernel=self.kernel).any():
                return tuple_id  # shadowed: retained but not maximal
            beaten = self.dominance.dominated_mask(block, values,
                                                   kernel=self.kernel)
            if beaten.any():
                self._in_skyline[skyline[beaten]] = False
        self._in_skyline[tuple_id] = True
        return tuple_id

    def bulk_load(self, block) -> np.ndarray:
        """Insert a block of tuples in one pass; returns their ids.

        Equivalent to inserting row by row but pays one OSDC run over
        the old skyline plus the block instead of ``n`` per-row skyline
        comparisons -- the fast path for building a maintainer over an
        existing relation (or shard).
        """
        block = np.ascontiguousarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self.graph.d:
            raise ValueError(
                f"expected an (n, {self.graph.d}) rank matrix")
        if np.isnan(block).any():
            raise ValueError("NaN ranks are not allowed")
        self.context.check("maintainer-bulk-load")
        ids = np.arange(self._size, self._size + block.shape[0],
                        dtype=np.intp)
        if block.shape[0] == 0:
            return ids
        self._reserve(block.shape[0])
        self._ranks[ids] = block
        self._alive[ids] = True
        self._size += block.shape[0]
        # the new skyline is M_pi of (old skyline + new block): old
        # non-skyline tuples stay shadowed because their dominators are
        # all among the candidates
        candidates = np.concatenate([self.skyline_ids(), ids])
        local = osdc(self._ranks[candidates], self.graph,
                     context=self.context, kernel=self.kernel or "auto")
        self._in_skyline[: self._size] = False
        self._in_skyline[candidates[local]] = True
        return ids

    def delete(self, tuple_id: int) -> None:
        """Delete a tuple by id.  Promotes retained tuples if needed.

        Atomic with respect to cancellation: the promotion pass runs
        through the shared context, so a deadline or cancel token can
        fire mid-promotion.  If it does, the deletion is rolled back and
        the maintainer still equals ``M_pi`` of the alive tuples -- the
        caller may simply retry the delete.
        """
        if tuple_id not in self:
            raise KeyError(f"tuple {tuple_id} is not alive")
        self.context.check("maintainer-delete")
        was_maximal = bool(self._in_skyline[tuple_id])
        self._alive[tuple_id] = False
        self._in_skyline[tuple_id] = False
        if not was_maximal:
            return
        try:
            # candidates: alive non-skyline tuples not dominated by the
            # remaining skyline; their maxima join the skyline
            alive = np.flatnonzero(self._alive[: self._size])
            shadowed = alive[~self._in_skyline[alive]]
            if shadowed.size == 0:
                return
            survivors_mask = self.dominance.screen_block(
                self._ranks[shadowed], self.skyline_ranks(),
                kernel=self.kernel)
            candidates = shadowed[survivors_mask]
            if candidates.size == 0:
                return
            local = osdc(self._ranks[candidates], self.graph,
                         context=self.context,
                         kernel=self.kernel or "auto")
        except BaseException:
            self._alive[tuple_id] = True
            self._in_skyline[tuple_id] = True
            raise
        self._in_skyline[candidates[local]] = True

    # -- internals -------------------------------------------------------------
    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._ranks.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity)
        grown = np.empty((new_capacity, self.graph.d))
        grown[: self._size] = self._ranks[: self._size]
        self._ranks = grown
        self._alive = np.concatenate(
            [self._alive,
             np.zeros(new_capacity - capacity, dtype=bool)])
        self._in_skyline = np.concatenate(
            [self._in_skyline,
             np.zeros(new_capacity - capacity, dtype=bool)])

    def _append(self, values: np.ndarray) -> int:
        self._reserve(1)
        tuple_id = self._size
        self._ranks[tuple_id] = values
        self._alive[tuple_id] = True
        self._size += 1
        return tuple_id
