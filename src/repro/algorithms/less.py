"""LESS (Linear Elimination Sort for Skyline) adapted to p-skylines.

Godfrey, Shipley and Gryz's LESS improves SFS in two ways; we adapt both to
prioritized preferences:

1. an **elimination-filter** pass: a small buffer of high-quality tuples
   (the ones with the best aggregate score) is used to discard the bulk of
   the input *before* sorting -- under the CI assumption this removes all
   but o(n) tuples and makes the algorithm average-case linear;
2. the surviving tuples are sorted by the weak-order extension ``≻ext``
   (Theorem 3) and filtered with an SFS scan.

``filter_size`` mirrors the paper's experiment knob (they sweep 50 to
10,000 and report the fastest run).
"""

from __future__ import annotations

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import (Stats, check_input, ensure_context, register,
                   resolve_kernel)
from .sfs import sfs_scan

__all__ = ["less"]


@register("less")
def less(ranks: np.ndarray, graph: PGraph, *,
         stats: Stats | None = None,
         context: ExecutionContext | None = None,
         filter_size: int | None = None,
         chunk_size: int = 512, kernel: str = "auto") -> np.ndarray:
    """Compute ``M_pi(D)`` with an elimination-filter pass plus SFS.

    Returns sorted row indices.  ``filter_size=None`` picks an adaptive
    buffer of ``n / 20`` tuples clamped to the paper's sweep range
    [50, 10000]; pass an explicit value to reproduce a specific sweep
    point.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    if filter_size is None:
        filter_size = max(50, min(10_000, ranks.shape[0] // 20))
    if filter_size < 1:
        raise ValueError("filter_size must be at least 1")
    compiled = context.compiled(graph)
    dominance = compiled.dominance
    n = ranks.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)

    extension = compiled.extension
    kernel = resolve_kernel(dominance, context, kernel,
                            pairs=min(chunk_size, n) * n)

    # -- elimination-filter pass ---------------------------------------------
    # Filter candidates: the tuples with the smallest aggregate score (the
    # LESS "entropy" heuristic specialised to ranks).  They are likely
    # dominators, so screening the input against them removes most tuples.
    context.check("less-filter")
    if stats is not None:
        stats.passes += 1
    scores = ranks.sum(axis=1)
    k = min(filter_size, n)
    candidate_rows = np.argpartition(scores, k - 1)[:k]
    # Keep only mutually undominated filter tuples (cheap, k is small).
    filter_block = ranks[candidate_rows]
    mutual = dominance.screen_block(filter_block, filter_block,
                                    kernel=kernel)
    filter_rows = candidate_rows[mutual]
    filter_block = ranks[filter_rows]
    if stats is not None:
        stats.dominance_tests += k * k + n * filter_block.shape[0]
    survivors_mask = dominance.screen_block(ranks, filter_block,
                                            check=context.check,
                                            kernel=kernel)
    survivors = np.flatnonzero(survivors_mask)
    if stats is not None:
        stats.pruned_by_filter += n - survivors.size
    context.event("less-filter", rows=n, survivors=int(survivors.size),
                  filter_tuples=int(filter_block.shape[0]))

    # -- sort-and-filter pass ---------------------------------------------------
    if stats is not None:
        stats.passes += 1
    sub = ranks[survivors]
    order = extension.argsort(sub)
    kept_local = sfs_scan(sub, order, dominance, chunk_size=chunk_size,
                          context=context, kernel=kernel)
    result = survivors[np.asarray(kept_local, dtype=np.intp)]
    return np.sort(result)
