"""LAYERED: a specialised evaluator for weak-order p-graphs.

When the priority order is a *weak order* -- the attributes partition
into layers ``L0 & L1 & ... & Lk`` with every earlier layer dominating
every later one -- the p-expression is equivalent to a prioritized chain
of Pareto bundles::

    sky(L0) & sky(L1) & ... & sky(Lk)

(This covers plain skylines, ``k = 0``, and lexicographic orders, all
layers singletons.)  The p-skyline then factorises layer by layer:

1. ``M_pi(D) ⊆ M_sky(L0)(D)`` -- anything beaten on the top layer is out;
2. two survivors that *differ* on ``L0`` are incomparable forever (each
   is sky(L0)-maximal, and dominance would require winning the topmost
   disagreement), so the remaining layers only compare tuples with
   *identical* ``L0`` projections -- recurse per group.

This yields a sequence of small skyline sub-problems instead of one
``d``-dimensional one, and is the natural generalisation of the
"Case 2 / lexicographic" trick of Lemma 4.  For non-weak-order graphs
:func:`layered` raises; the query layer keeps using OSDC there.
"""

from __future__ import annotations

import numpy as np

from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import Stats, check_input, ensure_context
from .naive import maximal_mask
from .osdc import osdc

__all__ = ["layered", "weak_order_layers", "NotAWeakOrderError"]


class NotAWeakOrderError(ValueError):
    """The p-graph's priority order is not a weak order."""


def weak_order_layers(graph: PGraph) -> list[list[int]]:
    """The attribute layers of a weak-order p-graph, most important first.

    In a weak order all attributes at the same depth are mutually
    incomparable and dominate everything strictly deeper.  Raises
    :class:`NotAWeakOrderError` otherwise.
    """
    if not graph.is_weak_order():
        raise NotAWeakOrderError(
            "the priority order is not a weak order; use osdc instead"
        )
    layers: dict[int, list[int]] = {}
    for index, depth in enumerate(graph.depths):
        layers.setdefault(depth, []).append(index)
    return [layers[depth] for depth in sorted(layers)]


def _sky_graph(size: int) -> PGraph:
    return PGraph.empty([f"L{i}" for i in range(size)])


def _group_starts(block: np.ndarray) -> np.ndarray:
    """Start offsets of equal-row runs in a lexicographically sorted
    block."""
    if block.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    changed = np.ones(block.shape[0], dtype=bool)
    if block.shape[0] > 1:
        changed[1:] = (block[1:] != block[:-1]).any(axis=1)
    return np.flatnonzero(changed)


def layered(ranks: np.ndarray, graph: PGraph, *,
            stats: Stats | None = None,
            context: ExecutionContext | None = None,
            leaf_size: int = 32) -> np.ndarray:
    """Compute ``M_pi(D)`` layer by layer for weak-order p-graphs.

    Returns sorted row indices.  Raises :class:`NotAWeakOrderError` for
    graphs that are not weak orders.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    if ranks.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    layers = weak_order_layers(graph)
    survivors = np.arange(ranks.shape[0], dtype=np.intp)
    for level, layer in enumerate(layers):
        context.check("layered-level")
        if survivors.size <= 1:
            break
        block = ranks[np.ix_(survivors, layer)]
        sky = _sky_graph(len(layer))
        if stats is not None:
            stats.passes += 1
        # 1. keep only the layer-skyline of the current survivors
        if survivors.size <= leaf_size:
            keep = maximal_mask(block, context.compiled(sky).dominance,
                                stats=stats, check=context.check)
            kept_local = np.flatnonzero(keep)
        else:
            kept_local = osdc(block, sky, context=context)
        survivors = survivors[kept_local]
        if level == len(layers) - 1:
            break
        # 2. deeper layers only compare tuples with identical projections
        #    on this layer: partition the survivors into groups
        block = ranks[np.ix_(survivors, layer)]
        order = np.lexsort(tuple(block[:, c]
                                 for c in range(block.shape[1] - 1, -1, -1)))
        survivors = survivors[order]
        block = block[order]
        starts = _group_starts(block)
        if starts.size == survivors.size:
            break  # all projections distinct: everyone is incomparable now
        bounds = np.append(starts, survivors.size)
        # ascending column order, matching PGraph.restrict's compaction
        remaining_layers = sorted(
            c for group in layers[level + 1:] for c in group)
        kept_groups: list[np.ndarray] = []
        rest_graph = graph.restrict(
            sum(1 << c for c in remaining_layers))
        for begin, end in zip(bounds[:-1], bounds[1:]):
            group = survivors[begin:end]
            if group.size == 1:
                kept_groups.append(group)
                continue
            local = layered(ranks[np.ix_(group, remaining_layers)],
                            rest_graph, context=context,
                            leaf_size=leaf_size)
            kept_groups.append(group[local])
        return np.sort(np.concatenate(kept_groups))
    return np.sort(survivors)
