"""External-memory OSDC -- the paper's Section 8 future-work question.

    "We designed our divide-and-conquer strategy assuming the input data
     always fits in the main memory; it would be interesting to verify
     whether we can drop this assumption, and develop an output-sensitive
     algorithm that runs efficiently in external memory."

This module implements a block-based OSDC over the paged storage of
:mod:`repro.storage.blocks`.  The recursion mirrors the in-memory OSDC
(median split on a candidate attribute whose ancestors are constant, plus
the Lemma 1/2 look-ahead), but every sub-problem larger than the memory
budget lives in paged files and is processed with streaming scans:

* **pass 1** (per level): scan the partition to reservoir-sample a median
  pivot, find the minimum and the second-distinct value of the split
  attribute (duplicate-safe threshold), and detect constant attributes;
* **pass 2**: partition into the ``B``/``W`` files, simultaneously
  locating the look-ahead point ``p*`` (the ``≻ext``-minimum of ``B``,
  Lemma 1);
* **pass 3**: rewrite both files without the tuples ``p*`` dominates
  (Lemma 2).

Sub-problems at most ``memory_budget`` tuples large are solved with the
in-memory OSDC; screening of ``W`` against an already-computed
``M_pi(B)`` streams ``W`` page by page against the in-memory result.  As
with SFS-style operators, the *answer* (and each sub-problem's answer) is
assumed to fit in memory -- the paper's open question concerns the input.
Every page transfer is counted in ``Stats.io_reads`` / ``io_writes``.
"""

from __future__ import annotations

import numpy as np

from ..core.bitsets import iter_bits
from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from ..storage.blocks import PagedFile, StorageManager
from .base import Stats, check_input, ensure_context, register
from .osdc import osdc

__all__ = ["external_osdc"]


class _ExternalOSDC:
    def __init__(self, graph: PGraph, storage: StorageManager,
                 memory_budget: int, context: ExecutionContext,
                 rng: np.random.Generator):
        self.graph = graph
        compiled = context.compiled(graph)
        self.dominance = compiled.dominance
        self.extension = compiled.extension
        self.storage = storage
        self.memory_budget = memory_budget
        self.context = context
        self.stats = context.stats
        self.rng = rng

    # -- helpers ---------------------------------------------------------------
    def _ext_key(self, row: np.ndarray) -> tuple:
        return tuple(self.extension.keys(row[:-1].reshape(1, -1))[0])

    def _scan_statistics(self, data: PagedFile, cand: int):
        """One pass: per-candidate (min, second-distinct, sample)."""
        columns = list(iter_bits(cand))
        lows = {a: np.inf for a in columns}
        seconds = {a: np.inf for a in columns}
        samples: dict[int, list[float]] = {a: [] for a in columns}
        sample_cap = max(64, self.memory_budget // 8)
        seen = 0
        for page in data.scan():
            for a in columns:
                values = page[:, a]
                low = float(values.min())
                if low < lows[a]:
                    if lows[a] < seconds[a]:
                        seconds[a] = lows[a]
                    lows[a] = low
                above = values[values > lows[a]]
                if above.size:
                    seconds[a] = min(seconds[a], float(above.min()))
            # page-level sampling for the median pivot: a few random
            # values per page keep the sample spread over the whole file
            per_page = max(1, sample_cap // max(1, data.num_pages))
            take = min(per_page, page.shape[0])
            rows = self.rng.choice(page.shape[0], size=take, replace=False)
            for a in columns:
                if len(samples[a]) < sample_cap:
                    samples[a].extend(float(v) for v in page[rows, a])
            seen += page.shape[0]
        return lows, seconds, samples

    def _choose_attribute(self, cand: int, lows, seconds):
        """First candidate that is not constant, or None."""
        for a in iter_bits(cand):
            if np.isfinite(seconds[a]):
                return a
        return None

    def _threshold(self, a: int, lows, seconds, samples) -> float:
        pivot = float(np.median(samples[a])) if samples[a] else lows[a]
        if pivot > lows[a]:
            return pivot
        return seconds[a]

    # -- recursion ------------------------------------------------------------
    def solve(self, data: PagedFile, cand: int, equal: int,
              depth: int) -> np.ndarray:
        """Return ``M_pi`` of the file's tuples as in-memory rows
        (rank columns + trailing id)."""
        self.context.check("external-osdc")
        if self.stats is not None:
            self.stats.recursive_calls += 1
            self.stats.max_depth = max(self.stats.max_depth, depth)
        n = data.num_rows
        if n == 0:
            return np.empty((0, self.graph.d + 1))
        if n <= self.memory_budget:
            block = np.vstack(list(data.scan()))
            local = osdc(np.ascontiguousarray(block[:, :-1]), self.graph,
                         context=self.context)
            return block[local]
        lows, seconds, samples = self._scan_statistics(data, cand)
        attribute = None
        while cand:
            attribute = self._choose_attribute(cand, lows, seconds)
            if attribute is not None:
                break
            # every candidate constant: promote them all into E
            for a in iter_bits(cand):
                equal |= 1 << a
            new_cand = 0
            for a in iter_bits(equal):
                for successor in iter_bits(self.graph.successors(a)):
                    if (self.graph.predecessors(successor) & ~equal) == 0 \
                            and not equal & (1 << successor):
                        new_cand |= 1 << successor
            cand = new_cand
            if cand:
                lows, seconds, samples = self._scan_statistics(data, cand)
        if attribute is None:
            # indistinguishable on every relevant attribute: all maximal
            return np.vstack(list(data.scan()))
        tau = self._threshold(attribute, lows, seconds, samples)

        # pass 2: partition and locate the look-ahead point p* in B
        better = self.storage.create(data.arity)
        worse = self.storage.create(data.arity)
        pivot_row = None
        pivot_key = None
        for page in data.scan():
            mask = page[:, attribute] < tau
            if mask.any():
                block = page[mask]
                better.append_rows(block)
                keys = self.extension.keys(block[:, :-1])
                local = int(np.lexsort(tuple(
                    keys[:, level]
                    for level in range(keys.shape[1] - 1, -1, -1)))[0])
                candidate = block[local]
                key = self._ext_key(candidate)
                if pivot_key is None or key < pivot_key:
                    pivot_key = key
                    pivot_row = candidate
            if (~mask).any():
                worse.append_rows(page[~mask])
        better.close_writes()
        worse.close_writes()
        assert pivot_row is not None

        # pass 3: Lemma 2 pruning of both halves against p*
        better = self._prune_by(better, pivot_row)
        worse = self._prune_by(worse, pivot_row)

        better_sky = self.solve(better, cand, equal, depth + 1)
        surviving_worse = self._screen_file(worse, better_sky)
        worse_sky = self.solve(surviving_worse, cand, equal, depth + 1)
        return np.vstack([pivot_row.reshape(1, -1), better_sky, worse_sky])

    def _prune_by(self, data: PagedFile, pivot_row: np.ndarray) -> PagedFile:
        pruned = self.storage.create(data.arity)
        pivot = pivot_row[:-1]
        pivot_id = pivot_row[-1]
        for page in data.scan():
            self.context.check("external-osdc-prune")
            if self.stats is not None:
                self.stats.dominance_tests += page.shape[0]
            keep = ~self.dominance.dominated_mask(page[:, :-1], pivot)
            keep &= page[:, -1] != pivot_id
            dropped = page.shape[0] - int(keep.sum())
            if self.stats is not None:
                self.stats.pruned_by_lookahead += dropped
            if keep.any():
                pruned.append_rows(page[keep])
        pruned.close_writes()
        return pruned

    def _screen_file(self, data: PagedFile,
                     result_rows: np.ndarray) -> PagedFile:
        """Stream ``data`` and keep tuples not dominated by the computed
        p-skyline ``result_rows`` (rank+id rows)."""
        survivors = self.storage.create(data.arity)
        block = result_rows[:, :-1]
        for page in data.scan():
            self.context.check("external-osdc-screen")
            if self.stats is not None:
                self.stats.dominance_tests += page.shape[0] * block.shape[0]
            keep = self.dominance.screen_block(page[:, :-1], block)
            if keep.any():
                survivors.append_rows(page[keep])
        survivors.close_writes()
        return survivors


@register("external-osdc", external=True)
def external_osdc(ranks: np.ndarray, graph: PGraph, *,
                  stats: Stats | None = None,
                  context: ExecutionContext | None = None,
                  page_size: int = 256,
                  memory_budget: int = 4096,
                  seed: int = 0) -> np.ndarray:
    """Output-sensitive p-skyline evaluation over paged storage.

    Returns sorted row indices; ``Stats.io_reads``/``io_writes`` report
    the page traffic.  ``memory_budget`` is the number of tuples a
    sub-problem may hold in memory before switching to the in-memory
    OSDC.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    if ranks.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    if memory_budget < 2:
        raise ValueError("memory_budget must be at least 2")
    storage = StorageManager(page_size)
    ids = np.arange(ranks.shape[0], dtype=np.float64).reshape(-1, 1)
    source = storage.from_matrix(np.hstack([ranks, ids]), "input")
    engine = _ExternalOSDC(graph, storage, memory_budget, context,
                           np.random.default_rng(seed))
    result = engine.solve(source, graph.roots, 0, 0)
    if stats is not None:
        stats.io_reads += storage.counter.reads
        stats.io_writes += storage.counter.writes
    context.event("external-osdc", rows=ranks.shape[0],
                  survivors=result.shape[0],
                  page_reads=storage.counter.reads,
                  page_writes=storage.counter.writes)
    return np.sort(result[:, -1].astype(np.intp))
