"""BNL (block-nested-loop) adapted to p-skyline queries.

The classic window algorithm of Börzsönyi, Kossmann and Stocker, with
dominance tests generalised to ``≻_pi`` (Proposition 1).  Two variants:

* the paper's experimental setting -- an in-memory BNL whose window is
  large enough for the whole input (``window_size=None``), so a single
  pass suffices.  The scan is chunked: each chunk is screened against the
  window, self-screened, and the window is purged of evicted tuples.  The
  result (the window is always the set of maxima of the processed prefix)
  is identical to the tuple-at-a-time algorithm.
* the classic bounded-window multi-pass BNL (``window_size=k``): overflow
  tuples go to a temporary list and are reprocessed in later passes, with
  the timestamp bookkeeping needed to emit window tuples as soon as every
  potential dominator has been compared against them.
"""

from __future__ import annotations

import numpy as np

from ..core.dominance import Dominance
from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import (Stats, check_input, ensure_context, register,
                   resolve_kernel)

__all__ = ["bnl"]


def _bnl_unbounded(ranks: np.ndarray, dominance: Dominance,
                   context: ExecutionContext,
                   chunk_size: int, kernel: str) -> np.ndarray:
    """Single-pass in-memory BNL with a chunked, vectorised window."""
    stats = context.stats
    n = ranks.shape[0]
    window_rows: list[np.ndarray] = []
    window_parts: list[np.ndarray] = []
    window_size = 0
    for start in range(0, n, chunk_size):
        context.check("bnl-chunk")
        chunk_rows = np.arange(start, min(start + chunk_size, n),
                               dtype=np.intp)
        chunk = ranks[chunk_rows]
        alive = np.ones(chunk_rows.size, dtype=bool)
        for part in window_parts:
            if stats is not None:
                stats.dominance_tests += int(alive.sum()) * part.shape[0]
            alive[alive] = dominance.screen_block(chunk[alive], part,
                                                  kernel=kernel)
            if not alive.any():
                break
        if alive.any():
            if stats is not None:
                stats.dominance_tests += int(alive.sum()) ** 2
            alive[alive] = dominance.screen_block(chunk[alive],
                                                  chunk[alive],
                                                  kernel=kernel)
        if not alive.any():
            continue
        new_rows = chunk_rows[alive]
        new_block = ranks[new_rows]
        # evict window tuples dominated by the new arrivals
        for index in range(len(window_parts)):
            part = window_parts[index]
            if stats is not None:
                stats.dominance_tests += part.shape[0] * new_block.shape[0]
            keep = dominance.screen_block(part, new_block,
                                          kernel=kernel)
            if not keep.all():
                window_size -= int((~keep).sum())
                window_parts[index] = part[keep]
                window_rows[index] = window_rows[index][keep]
        window_parts.append(new_block)
        window_rows.append(new_rows)
        window_size += new_rows.size
        context.charge_memory(window_size, "bnl-window")
        if stats is not None:
            stats.window_peak = max(stats.window_peak, window_size)
    context.event("bnl-scan", rows=n, window=window_size)
    if not window_rows:
        return np.empty(0, dtype=np.intp)
    return np.sort(np.concatenate(window_rows))


def _bnl_bounded(ranks: np.ndarray, dominance: Dominance,
                 context: ExecutionContext, window_size: int,
                 policy: str = "append",
                 kernel: str | None = None) -> np.ndarray:
    """Classic multi-pass BNL with a window of at most ``window_size``.

    ``policy="move-to-front"`` enables the original paper's
    self-organising window: a window tuple that eliminates an incoming
    tuple is moved to the front, so frequent dominators are met first on
    subsequent tests (fewer comparisons on skewed inputs).
    """
    stats = context.stats
    n = ranks.shape[0]
    result: list[int] = []
    window: list[int] = []
    window_entry: list[int] = []  # overflow size when the tuple entered
    pending = list(range(n))
    while pending:
        context.check("bnl-pass")
        context.event("bnl-pass", pending=len(pending))
        if stats is not None:
            stats.passes += 1
        overflow: list[int] = []
        for position, row in enumerate(pending):
            if position % 256 == 0:
                context.check("bnl-window")
            tuple_ranks = ranks[row]
            if window:
                # scan the window front-to-back in small blocks with an
                # early exit, so the window organisation policy matters
                dominated = False
                dominator = -1
                for start in range(0, len(window), 32):
                    part = window[start:start + 32]
                    block = ranks[np.asarray(part, dtype=np.intp)]
                    if stats is not None:
                        stats.dominance_tests += len(part)
                    hits = dominance.dominators_mask(block, tuple_ranks,
                                                     kernel=kernel)
                    if hits.any():
                        dominated = True
                        dominator = start + int(np.argmax(hits))
                        break
                if dominated:
                    if policy == "move-to-front" and dominator > 0:
                        window.insert(0, window.pop(dominator))
                        window_entry.insert(0,
                                            window_entry.pop(dominator))
                    continue  # dominated: discard immediately
                block = ranks[np.asarray(window, dtype=np.intp)]
                if stats is not None:
                    stats.dominance_tests += len(window)
                beaten = dominance.dominated_mask(block, tuple_ranks,
                                                  kernel=kernel)
                if beaten.any():
                    keep = ~beaten
                    window = [w for w, k in zip(window, keep) if k]
                    window_entry = [e for e, k in zip(window_entry, keep)
                                    if k]
            if len(window) < window_size:
                window.append(row)
                window_entry.append(len(overflow))
                if stats is not None:
                    stats.window_peak = max(stats.window_peak, len(window))
            else:
                overflow.append(row)
                if stats is not None:
                    stats.io_writes += 1
        # Window tuples that entered while this pass's overflow was still
        # empty have been compared against every possible dominator.
        carried: list[int] = []
        for row, entry in zip(window, window_entry):
            if entry == 0 or not overflow:
                result.append(row)
            else:
                carried.append(row)
        window = carried
        window_entry = [0] * len(carried)
        pending = overflow
        if stats is not None:
            stats.io_reads += len(overflow)
    return np.sort(np.asarray(result, dtype=np.intp))


@register("bnl", bounded_window=True)
def bnl(ranks: np.ndarray, graph: PGraph, *,
        stats: Stats | None = None,
        context: ExecutionContext | None = None,
        window_size: int | None = None,
        chunk_size: int = 256, policy: str = "append",
        kernel: str = "auto") -> np.ndarray:
    """Compute ``M_pi(D)`` with a (possibly bounded) BNL window.

    Returns sorted row indices.  ``window_size=None`` keeps every
    incomparable tuple in the window (single pass, the paper's setup);
    with a bounded window, ``policy`` selects the window organisation
    (``"append"`` or the self-organising ``"move-to-front"``).
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    dominance = context.compiled(graph).dominance
    if ranks.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    if policy not in ("append", "move-to-front"):
        raise ValueError(f"unknown window policy {policy!r}")
    if window_size is None:
        kernel = resolve_kernel(dominance, context, kernel,
                                pairs=min(chunk_size, ranks.shape[0])
                                * ranks.shape[0])
        if context.stats is not None:
            context.stats.passes += 1
        return _bnl_unbounded(ranks, dominance, context,
                              max(1, chunk_size), kernel)
    if window_size < 1:
        raise ValueError("window_size must be at least 1")
    # the bounded window is probed in 32-row blocks (see below)
    kernel = resolve_kernel(dominance, context, kernel,
                            pairs=min(window_size, 32))
    return _bnl_bounded(ranks, dominance, context, window_size, policy,
                        kernel)
