"""OSDC: the output-sensitive divide-and-conquer algorithm (Section 3).

OSDC is DC plus a linear-time *look-ahead* at every recursion step
(Algorithm OSDC, lines 13-15): it extracts one guaranteed p-skyline point
``p*`` of the better half ``B`` (Lemma 1) and prunes everything ``p*``
dominates from both halves (Lemma 2).  When a sub-problem contains a single
p-skyline point the pruned halves become empty and the recursion bottoms
out immediately -- this is what caps the recursion depth at ``O(log v)``
and yields the worst case ``O(n log^{d-2} v)`` of Theorem 1.
"""

from __future__ import annotations

import numpy as np

from ..core.extension import ExtensionOrder
from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import (Stats, check_input, ensure_context, register,
                   resolve_kernel)
from .dc import _DivideAndConquer
from .pscreen import PScreener, split_threshold
from .special import pscreen_single_point, pskyline_single_point

__all__ = ["osdc"]


class _OutputSensitiveDC(_DivideAndConquer):
    """DC driver with the look-ahead single-point pruning of OSDC."""

    def __init__(self, ranks: np.ndarray, graph: PGraph,
                 screener: PScreener, context: ExecutionContext,
                 leaf_size: int, select: str = "first"):
        super().__init__(ranks, graph, screener, context, leaf_size, select)
        compiled = screener.compiled
        self.extension = compiled.extension if compiled is not None \
            else ExtensionOrder(graph)

    def split(self, idx: np.ndarray, attribute: int, cand: int, equal: int,
              depth: int) -> np.ndarray:
        if self.stats is not None:
            self.stats.splits += 1
        column = self.ranks[idx, attribute]
        tau = split_threshold(column)
        better = idx[column < tau]
        worse = idx[column >= tau]
        # -- look-ahead (lines 13-15): one p-skyline point prunes both halves
        pivot_local = pskyline_single_point(self.ranks[better], self.graph,
                                            self.extension, self.stats)
        pivot = better[pivot_local]
        pivot_ranks = self.ranks[pivot]
        others = np.concatenate([better[:pivot_local],
                                 better[pivot_local + 1:]])
        if self.stats is not None:
            self.stats.dominance_tests += others.size + worse.size
        better_kept = others[pscreen_single_point(
            pivot_ranks, self.ranks[others], self.screener.dominance,
            kernel=self.screener.kernel)]
        worse_kept = worse[pscreen_single_point(
            pivot_ranks, self.ranks[worse], self.screener.dominance,
            kernel=self.screener.kernel)]
        if self.stats is not None:
            pruned = (others.size - better_kept.size
                      + worse.size - worse_kept.size)
            self.stats.pruned_by_lookahead += pruned
        better_sky = self.rec(better_kept, cand, equal, depth + 1)
        survivors = self.screener.screen(
            self.ranks, better_sky, worse_kept,
            candidates=cand & ~(1 << attribute), equal=equal,
            dropped=1 << attribute, context=self.context,
        )
        worse_sky = self.rec(survivors, cand, equal, depth + 1)
        return np.concatenate([np.array([pivot], dtype=np.intp),
                               better_sky, worse_sky])


@register("osdc")
def osdc(ranks: np.ndarray, graph: PGraph, *, stats: Stats | None = None,
         context: ExecutionContext | None = None,
         leaf_size: int = 16, use_lowdim: bool = True,
         dense_cutoff: int = 4096, select: str = "first",
         kernel: str = "auto") -> np.ndarray:
    """Compute ``M_pi(D)`` with the output-sensitive Algorithm OSDC.

    Returns sorted row indices.  Worst case ``O(n log^{d-2} v)``; ``O(n)``
    average case when combined with :func:`repro.algorithms.linear_avg.
    osdc_linear`'s pre-filter (Section 5).  ``select`` picks the
    split-attribute strategy (see :data:`repro.algorithms.dc.
    SELECT_STRATEGIES`).
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    if ranks.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    compiled = context.compiled(graph)
    resolve_kernel(compiled.dominance, context, kernel,
                   pairs=dense_cutoff)
    screener = compiled.screener(
        use_lowdim=use_lowdim, dense_cutoff=dense_cutoff,
        kernel=None if kernel == "auto" else kernel)
    driver = _OutputSensitiveDC(ranks, graph, screener, context, leaf_size,
                                select)
    return driver.run()
