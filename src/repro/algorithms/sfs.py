"""SFS (sort-filter-skyline) adapted to p-skyline queries (Section 6).

The input is presorted by the weak-order extension ``≻ext`` (Theorem 3),
which guarantees that no tuple is ``≻_pi``-dominated by a tuple following
it.  A single filtering scan then suffices: each incoming tuple only needs
to check whether some *window* tuple dominates it -- it can never eliminate
a window tuple -- and undominated tuples are immediately part of the
answer (the algorithm is pipelineable).

The scan processes the sorted input in chunks so the dominance tests run
through the vectorised kernel; because of the presort, dominators of a
chunk member can only be window tuples or *other members of the same
chunk*, so one window comparison plus one intra-chunk screening preserves
the per-tuple semantics exactly (``chunk_size=1`` degenerates to the
textbook tuple-at-a-time scan).
"""

from __future__ import annotations

import numpy as np

from ..core.dominance import Dominance
from ..core.extension import ExtensionOrder
from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import (Stats, check_input, ensure_context, register,
                   resolve_kernel)

__all__ = ["sfs", "sfs_scan", "sfs_iter"]


def sfs_scan(ranks: np.ndarray, order: np.ndarray, dominance: Dominance,
             stats: Stats | None = None,
             chunk_size: int = 512,
             context: ExecutionContext | None = None,
             kernel: str | None = None) -> np.ndarray:
    """Filtering scan over the rows of ``ranks`` taken in ``order``.

    Requires ``order`` to be a topological sort of ``≻_pi`` (dominators
    first).  Returns the surviving row indices in scan order.
    """
    context = ensure_context(context, stats)
    stats = context.stats
    chunk_size = max(1, chunk_size)
    window_parts: list[np.ndarray] = []  # materialised window rank blocks
    survivors: list[np.ndarray] = []
    window_size = 0
    for start in range(0, order.size, chunk_size):
        context.check("sfs-chunk")
        chunk_rows = order[start:start + chunk_size]
        chunk = ranks[chunk_rows]
        alive = np.ones(chunk_rows.size, dtype=bool)
        for part in window_parts:
            if stats is not None:
                stats.dominance_tests += int(alive.sum()) * part.shape[0]
            alive[alive] = dominance.screen_block(chunk[alive], part,
                                                  kernel=kernel)
            if not alive.any():
                break
        if alive.any():
            # the presort guarantees intra-chunk dominators precede their
            # victims, so a block self-screen is equivalent to the
            # tuple-at-a-time window updates
            if stats is not None:
                stats.dominance_tests += int(alive.sum()) ** 2
            alive[alive] = dominance.screen_block(chunk[alive],
                                                  chunk[alive],
                                                  kernel=kernel)
        if alive.any():
            kept = chunk_rows[alive]
            survivors.append(kept)
            window_parts.append(ranks[kept])
            window_size += kept.size
            context.charge_memory(window_size, "sfs-window")
            if stats is not None:
                stats.window_peak = max(stats.window_peak, window_size)
    if not survivors:
        context.event("sfs-scan", rows=int(order.size), survivors=0)
        return np.empty(0, dtype=np.intp)
    kept = np.concatenate(survivors)
    context.event("sfs-scan", rows=int(order.size),
                  survivors=int(kept.size))
    return kept


def sfs_iter(ranks: np.ndarray, graph: PGraph, *,
             stats: Stats | None = None,
             context: ExecutionContext | None = None,
             kernel: str = "auto"):
    """Progressive SFS: yield p-skyline row indices as the presorted scan
    confirms them (Section 6's pipelineability, as a generator).

    Tuples are emitted in ``≻ext`` order; consuming only a prefix costs
    only the scan up to that point plus the presort.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    stats = context.stats
    compiled = context.compiled(graph)
    dominance = compiled.dominance
    if ranks.shape[0] == 0:
        return
    # the window (one-vs-many comparisons) grows with the output size, so
    # resolve by dimensionality alone
    kernel = resolve_kernel(dominance, context, kernel)
    if stats is not None:
        stats.passes += 1
    order = compiled.extension.argsort(ranks)
    window: list[int] = []
    for position, row in enumerate(order):
        if position % 256 == 0:
            context.check("sfs-scan")
        if window:
            block = ranks[np.asarray(window, dtype=np.intp)]
            if stats is not None:
                stats.dominance_tests += block.shape[0]
            if dominance.dominators_mask(block, ranks[row],
                                         kernel=kernel).any():
                continue
        # emission boundary: a consumer that cancelled after the
        # previous result must see the error before the next one
        context.check("sfs-emit")
        window.append(int(row))
        yield int(row)


@register("sfs", progressive=True, iterator=sfs_iter)
def sfs(ranks: np.ndarray, graph: PGraph, *,
        stats: Stats | None = None,
        context: ExecutionContext | None = None,
        presort: bool = True, chunk_size: int = 512,
        kernel: str = "auto") -> np.ndarray:
    """Compute ``M_pi(D)`` by presorting with ``≻ext`` and filtering.

    ``presort=False`` is the ablation switch: without the sort the scan
    must also evict window tuples, i.e. it degenerates into single-pass
    BNL.
    """
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    compiled = context.compiled(graph)
    n = ranks.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if context.stats is not None:
        context.stats.passes += 1
    if presort:
        resolved = resolve_kernel(compiled.dominance, context, kernel,
                                  pairs=min(chunk_size, n) * n)
        order = compiled.extension.argsort(ranks)
        context.event("sfs-presort", rows=n)
        kept = sfs_scan(ranks, order, compiled.dominance,
                        chunk_size=chunk_size, context=context,
                        kernel=resolved)
        return np.sort(kept)
    from .bnl import bnl
    return bnl(ranks, graph, context=context, kernel=kernel)
