"""Naive quadratic p-skyline evaluation -- the correctness oracle.

``naive`` compares every tuple against every other tuple using the
vectorised dominance kernel.  It is O(n^2) but has a tiny constant, which
also makes it the honest baseline for very small inputs.
"""

from __future__ import annotations

import numpy as np

from ..core.dominance import Dominance
from ..core.pgraph import PGraph
from ..engine.context import ExecutionContext
from .base import (Stats, check_input, ensure_context, register,
                   resolve_kernel)

__all__ = ["naive", "maximal_mask"]


def maximal_mask(ranks: np.ndarray, dominance: Dominance,
                 stats: Stats | None = None, chunk: int = 256,
                 check=None, kernel: str | None = None) -> np.ndarray:
    """Boolean mask of the maximal rows of ``ranks`` (the p-skyline)."""
    n = ranks.shape[0]
    if stats is not None:
        stats.dominance_tests += n * max(n - 1, 0)
    return dominance.screen_block(ranks, ranks, chunk=chunk, check=check,
                                  kernel=kernel)


@register("naive")
def naive(ranks: np.ndarray, graph: PGraph, *,
          stats: Stats | None = None,
          context: ExecutionContext | None = None,
          chunk: int = 256, kernel: str = "auto") -> np.ndarray:
    """Compute ``M_pi(D)`` by exhaustive pairwise dominance tests."""
    ranks = check_input(ranks, graph)
    context = ensure_context(context, stats)
    dominance = context.compiled(graph).dominance
    kernel = resolve_kernel(dominance, context, kernel,
                            pairs=min(chunk, ranks.shape[0])
                            * ranks.shape[0])
    mask = maximal_mask(ranks, dominance, stats=context.stats, chunk=chunk,
                        check=context.check, kernel=kernel)
    result = np.flatnonzero(mask)
    context.event("naive-screen", rows=ranks.shape[0],
                  survivors=int(result.size))
    return result
