"""Single-point procedures: PSKYLINESP (Lemma 1) and PSCREENSP (Lemma 2).

* ``pskyline_single_point`` locates one arbitrary element of ``M_pi(D)`` in
  linear time by taking the maximum of a weak-order extension of ``≻_pi``
  (we use ``≻ext`` of Section 6, which Theorem 3 proves is such an
  extension).
* ``pscreen_single_point`` screens ``W`` against a one-element ``B`` with a
  single vectorised dominance test per tuple of ``W``.
"""

from __future__ import annotations

import numpy as np

from ..core.dominance import Dominance
from ..core.extension import ExtensionOrder
from ..core.pgraph import PGraph
from .base import Stats

__all__ = ["pskyline_single_point", "pscreen_single_point"]


def pskyline_single_point(ranks: np.ndarray, graph: PGraph,
                          extension: ExtensionOrder | None = None,
                          stats: Stats | None = None) -> int:
    """Return the row index of one element of ``M_pi(ranks)`` (Lemma 1).

    Scans for the row minimising the ``≻ext`` key vector lexicographically;
    a maximal element of a weak-order extension is maximal for ``≻_pi``.
    Requires a non-empty input.
    """
    n = ranks.shape[0]
    if n == 0:
        raise ValueError("cannot pick a p-skyline point of an empty relation")
    if extension is None:
        extension = ExtensionOrder(graph)
    keys = extension.keys(ranks)
    if stats is not None:
        stats.comparisons += n
    if keys.shape[1] == 0:
        return 0
    # Lexicographic argmin over the key levels, fully vectorised.
    candidates = np.arange(n)
    for level in range(keys.shape[1]):
        column = keys[candidates, level]
        candidates = candidates[column == column.min()]
        if candidates.size == 1:
            break
    return int(candidates[0])


def pscreen_single_point(point: np.ndarray, block: np.ndarray,
                         dominance: Dominance,
                         stats: Stats | None = None,
                         kernel: str | None = None) -> np.ndarray:
    """Survivors mask of ``block`` screened against the single ``point``.

    Lemma 2: one dominance test per element of ``block`` -- ``O(w)``.
    """
    if stats is not None:
        stats.dominance_tests += block.shape[0]
    return ~dominance.dominated_mask(block, point, kernel=kernel)
