"""A small CNF toolkit: representation, DPLL solving, model enumeration.

Clauses are tuples of non-zero integers in the DIMACS convention:
literal ``v+1`` means variable ``v`` is true, ``-(v+1)`` means false.
The solver is intentionally simple (unit propagation + branching on the
most frequent variable); it is used to validate the p-graph CNF encoding
and to count models exactly on small instances, against which the
SampleSAT sampler's uniformity is tested.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

__all__ = ["CNF", "count_models", "enumerate_models", "solve"]

Clause = tuple[int, ...]


class CNF:
    """A conjunctive normal form over ``num_vars`` boolean variables."""

    __slots__ = ("num_vars", "clauses")

    def __init__(self, num_vars: int, clauses: Iterable[Sequence[int]] = ()):
        self.num_vars = num_vars
        self.clauses: list[Clause] = []
        for clause in clauses:
            self.add(clause)

    def add(self, clause: Sequence[int]) -> None:
        """Add a clause, validating its literals."""
        normalized = tuple(dict.fromkeys(int(lit) for lit in clause))
        for lit in normalized:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range")
        self.clauses.append(normalized)

    def is_satisfied(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the formula under a complete assignment."""
        return all(self._clause_satisfied(clause, assignment)
                   for clause in self.clauses)

    def unsatisfied_clauses(self, assignment: Sequence[bool]) -> list[int]:
        """Indices of clauses violated by the assignment."""
        return [index for index, clause in enumerate(self.clauses)
                if not self._clause_satisfied(clause, assignment)]

    @staticmethod
    def _clause_satisfied(clause: Clause, assignment: Sequence[bool]) -> bool:
        return any(
            assignment[abs(lit) - 1] == (lit > 0) for lit in clause
        )


def _propagate(clauses: list[Clause],
               assignment: dict[int, bool]) -> list[Clause] | None:
    """Unit propagation; returns simplified clauses or None on conflict."""
    changed = True
    while changed:
        changed = False
        simplified: list[Clause] = []
        for clause in clauses:
            live: list[int] = []
            satisfied = False
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    live.append(lit)
            if satisfied:
                continue
            if not live:
                return None  # conflict
            if len(live) == 1:
                lit = live[0]
                assignment[abs(lit)] = lit > 0
                changed = True
            else:
                simplified.append(tuple(live))
        clauses = simplified
    return clauses


def _branch_variable(clauses: list[Clause]) -> int:
    counts: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            counts[abs(lit)] = counts.get(abs(lit), 0) + 1
    return max(counts, key=counts.get)


def solve(cnf: CNF) -> list[bool] | None:
    """Find one satisfying assignment, or ``None`` if unsatisfiable."""
    for model in enumerate_models(cnf):
        return model
    return None


def enumerate_models(cnf: CNF) -> Iterator[list[bool]]:
    """Yield every satisfying assignment (exponential; small inputs only)."""

    def rec(clauses: list[Clause],
            assignment: dict[int, bool]) -> Iterator[dict[int, bool]]:
        simplified = _propagate(list(clauses), assignment)
        if simplified is None:
            return
        if not simplified:
            yield assignment
            return
        variable = _branch_variable(simplified)
        for value in (True, False):
            trail = dict(assignment)
            trail[variable] = value
            yield from rec(simplified, trail)

    for partial in rec(cnf.clauses, {}):
        free = [v for v in range(1, cnf.num_vars + 1) if v not in partial]
        # expand don't-care variables into full models
        for mask in range(1 << len(free)):
            model = [False] * cnf.num_vars
            for var, value in partial.items():
                model[var - 1] = value
            for position, var in enumerate(free):
                model[var - 1] = bool(mask & (1 << position))
            yield model


def count_models(cnf: CNF) -> int:
    """Exact model count (via enumeration with don't-care expansion)."""

    def rec(clauses: list[Clause], assignment: dict[int, bool]) -> int:
        simplified = _propagate(list(clauses), assignment)
        if simplified is None:
            return 0
        if not simplified:
            return 1 << (cnf.num_vars - len(assignment))
        variable = _branch_variable(simplified)
        total = 0
        for value in (True, False):
            trail = dict(assignment)
            trail[variable] = value
            total += rec(simplified, trail)
        return total

    return rec(cnf.clauses, {})
