"""The p-skyline benchmarking framework's sampling machinery (Section 7.1):
exact enumeration, CNF encoding of Theorem 4, SampleSAT, and uniform random
p-expression generation."""

from .cnf import EdgeVariables, model_to_pgraph, pgraph_cnf, pgraph_to_model
from .decompose import NotAPGraphError, decompose
from .exact_counting import ExactUniformSampler, count_pgraphs_exact
from .enumeration import (MAX_EXACT_D, count_pgraphs, enumerate_pgraphs,
                          sample_exact)
from .random_pexpr import (PExpressionSampler, sample_pexpression,
                           sample_pgraph)
from .samplesat import SampleSAT, SampleSATError
from .topology import TopologyProfile, topology_profile
from .sat import CNF, count_models, enumerate_models, solve

__all__ = [
    "ExactUniformSampler",
    "count_pgraphs_exact",
    "TopologyProfile",
    "topology_profile",
    "CNF",
    "solve",
    "count_models",
    "enumerate_models",
    "pgraph_cnf",
    "EdgeVariables",
    "model_to_pgraph",
    "pgraph_to_model",
    "SampleSAT",
    "SampleSATError",
    "enumerate_pgraphs",
    "count_pgraphs",
    "sample_exact",
    "MAX_EXACT_D",
    "decompose",
    "NotAPGraphError",
    "PExpressionSampler",
    "sample_pgraph",
    "sample_pexpression",
]
