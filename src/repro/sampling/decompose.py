"""Reconstructing a p-expression from a valid p-graph.

P-graphs are exactly the transitive irreflexive graphs with the envelope
property (Theorem 4), which coincide with the *series-parallel* (N-free)
strict partial orders.  They therefore decompose recursively:

* **parallel** step -- if the comparability graph is disconnected, the
  components are combined with Pareto accumulation ``⊗``;
* **series** step -- if the *incomparability* graph is disconnected, its
  components are totally ordered by the priority relation and are combined
  with prioritized accumulation ``&``.

A graph in which neither step applies (both graphs connected, more than
one vertex) contains an "N" pattern and violates the envelope property;
:func:`decompose` raises :class:`NotAPGraphError` for it.
"""

from __future__ import annotations

from ..core.bitsets import iter_bits
from ..core.expressions import Att, PExpr, pareto, prioritized
from ..core.pgraph import PGraph

__all__ = ["decompose", "NotAPGraphError"]


class NotAPGraphError(ValueError):
    """The graph is not realisable by any p-expression."""


def decompose(graph: PGraph) -> PExpr:
    """Build a p-expression ``pi`` with ``Gamma_pi`` equal to ``graph``.

    The result is canonical up to the (semantically irrelevant) ordering
    of Pareto operands.  Raises :class:`NotAPGraphError` if the graph
    violates the envelope property.
    """
    if graph.d == 0:
        raise ValueError("cannot decompose an empty p-graph")
    expr = _decompose_mask(graph, graph.all_mask)
    rebuilt = PGraph.from_expression(expr, names=graph.names)
    if rebuilt.closure != graph.closure:  # pragma: no cover - safety net
        raise NotAPGraphError("decomposition failed to reproduce the graph")
    return expr


def _decompose_mask(graph: PGraph, mask: int) -> PExpr:
    vertices = list(iter_bits(mask))
    if len(vertices) == 1:
        return Att(graph.names[vertices[0]])

    # adjacency restricted to the mask, as symmetric comparability masks
    comparable = {
        i: (graph.closure[i] | graph.ancestors_mask[i]) & mask
        for i in vertices
    }

    components = _connected_components(vertices, comparable)
    if len(components) > 1:
        return pareto(*[_decompose_mask(graph, part) for part in components])

    incomparable = {
        i: mask & ~comparable[i] & ~(1 << i) for i in vertices
    }
    blocks = _connected_components(vertices, incomparable)
    if len(blocks) == 1:
        raise NotAPGraphError(
            "graph contains an N pattern (envelope property violated)"
        )
    ordered = _order_blocks(graph, blocks)
    return prioritized(*[_decompose_mask(graph, part) for part in ordered])


def _connected_components(vertices: list[int],
                          adjacency: dict[int, int]) -> list[int]:
    """Connected components (as masks) of an undirected adjacency map."""
    seen = 0
    components: list[int] = []
    for start in vertices:
        if seen & (1 << start):
            continue
        frontier = 1 << start
        component = 0
        while frontier:
            v = (frontier & -frontier).bit_length() - 1
            frontier &= frontier - 1
            if component & (1 << v):
                continue
            component |= 1 << v
            frontier |= adjacency[v] & ~component
        seen |= component
        components.append(component)
    return components


def _order_blocks(graph: PGraph, blocks: list[int]) -> list[int]:
    """Order series blocks so every earlier block dominates every later one.

    In a valid series decomposition any two vertices of distinct blocks are
    comparable, and the direction is uniform across the block pair; sorting
    by the number of in-block-external ancestors realises the total order.
    Validity is re-checked by :func:`decompose`'s final rebuild.
    """

    def key(block: int) -> int:
        # in an ordinal sum, every vertex of the k-th block has exactly the
        # union of the earlier blocks as block-external ancestors
        v = (block & -block).bit_length() - 1
        return (graph.ancestors_mask[v] & ~block).bit_count()

    return sorted(blocks, key=key)
