"""SampleSAT: near-uniform sampling of SAT solutions (Wei et al. [35]).

SampleSAT interleaves two kinds of moves over a random walk on
assignments:

* with probability ``f`` a **WalkSAT** move: pick a random unsatisfied
  clause; with probability ``noise`` flip a random variable of it,
  otherwise flip the variable with the smallest *break count*;
* with probability ``1 - f`` a **simulated-annealing (Metropolis)** move
  at fixed temperature: pick a random variable and flip it if it does not
  increase the number of unsatisfied clauses, or with probability
  ``exp(-delta / temperature)`` otherwise.

The mixing parameter ``f`` trades uniformity for speed -- exactly the
knob the paper sets to ``0.5`` for its benchmark workload generation.
The walk returns the first assignment that satisfies every clause.
"""

from __future__ import annotations

import math
import random

from .sat import CNF

__all__ = ["SampleSAT", "SampleSATError"]


class SampleSATError(RuntimeError):
    """Raised when no solution is found within the flip budget."""


class SampleSAT:
    """A reusable sampler over the solutions of a fixed CNF."""

    def __init__(self, cnf: CNF, f: float = 0.5, noise: float = 0.5,
                 temperature: float = 0.3, max_flips: int = 200_000):
        if not 0.0 <= f <= 1.0:
            raise ValueError("f must be in [0, 1]")
        self.cnf = cnf
        self.f = f
        self.noise = noise
        self.temperature = temperature
        self.max_flips = max_flips
        # occurrence lists: for each literal polarity, the clauses watching it
        self._positive: list[list[int]] = [[] for _ in range(cnf.num_vars)]
        self._negative: list[list[int]] = [[] for _ in range(cnf.num_vars)]
        for index, clause in enumerate(cnf.clauses):
            for lit in clause:
                if lit > 0:
                    self._positive[lit - 1].append(index)
                else:
                    self._negative[-lit - 1].append(index)

    # -- incremental state ------------------------------------------------------
    def _init_state(self, assignment: list[bool]) -> tuple[list[int], set[int]]:
        true_counts = []
        unsat = set()
        for index, clause in enumerate(self.cnf.clauses):
            count = sum(
                1 for lit in clause if assignment[abs(lit) - 1] == (lit > 0)
            )
            true_counts.append(count)
            if count == 0:
                unsat.add(index)
        return true_counts, unsat

    def _flip(self, variable: int, assignment: list[bool],
              true_counts: list[int], unsat: set[int]) -> None:
        new_value = not assignment[variable]
        assignment[variable] = new_value
        # clauses whose literal matches the new value gain one supporter
        if new_value:
            gains = self._positive[variable]
            losses = self._negative[variable]
        else:
            gains = self._negative[variable]
            losses = self._positive[variable]
        for index in gains:
            true_counts[index] += 1
            if true_counts[index] == 1:
                unsat.discard(index)
        for index in losses:
            true_counts[index] -= 1
            if true_counts[index] == 0:
                unsat.add(index)

    def _break_count(self, variable: int, assignment: list[bool],
                     true_counts: list[int]) -> int:
        """Clauses that become unsatisfied if ``variable`` flips."""
        watching = self._positive[variable] if assignment[variable] else \
            self._negative[variable]
        return sum(1 for index in watching if true_counts[index] == 1)

    def _make_count(self, variable: int, assignment: list[bool],
                    true_counts: list[int]) -> int:
        """Clauses that become satisfied if ``variable`` flips."""
        watching = self._negative[variable] if assignment[variable] else \
            self._positive[variable]
        return sum(1 for index in watching if true_counts[index] == 0)

    # -- sampling ------------------------------------------------------------
    def sample(self, rng: random.Random) -> list[bool]:
        """Run the walk from a fresh random assignment until satisfied."""
        n = self.cnf.num_vars
        assignment = [rng.random() < 0.5 for _ in range(n)]
        true_counts, unsat = self._init_state(assignment)
        for _ in range(self.max_flips):
            if not unsat:
                return assignment
            if rng.random() < self.f:
                variable = self._walksat_move(assignment, true_counts, unsat,
                                              rng)
            else:
                variable = self._annealing_move(assignment, true_counts, rng)
            if variable is not None:
                self._flip(variable, assignment, true_counts, unsat)
        if not unsat:
            return assignment
        raise SampleSATError(
            f"no solution found within {self.max_flips} flips"
        )

    def sample_many(self, count: int, rng: random.Random) -> list[list[bool]]:
        """Draw ``count`` independent samples (fresh walks)."""
        return [self.sample(rng) for _ in range(count)]

    def _walksat_move(self, assignment: list[bool], true_counts: list[int],
                      unsat: set[int], rng: random.Random) -> int:
        clause_index = rng.choice(tuple(unsat))
        clause = self.cnf.clauses[clause_index]
        variables = [abs(lit) - 1 for lit in clause]
        if rng.random() < self.noise:
            return rng.choice(variables)
        return min(
            variables,
            key=lambda v: self._break_count(v, assignment, true_counts),
        )

    def _annealing_move(self, assignment: list[bool],
                        true_counts: list[int],
                        rng: random.Random) -> int | None:
        variable = rng.randrange(self.cnf.num_vars)
        delta = (self._break_count(variable, assignment, true_counts)
                 - self._make_count(variable, assignment, true_counts))
        if delta <= 0:
            return variable
        if self.temperature > 0 and \
                rng.random() < math.exp(-delta / self.temperature):
            return variable
        return None
