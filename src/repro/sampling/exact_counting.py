"""Exact counting and *exactly uniform* sampling of p-graphs at any d.

The paper samples p-graphs near-uniformly with SampleSAT (Section 7.1).
This module goes further: p-graphs are exactly the labelled
series-parallel (N-free) strict partial orders, which admit a clean
counting recursion, and counting enables perfectly uniform sampling by
weighted structural choices.

Let, over ``n`` labelled attributes,

* ``S(n)`` = # orders whose topmost decomposition is a *series* (ordinal
  sum of >= 2 blocks, none itself series-decomposable),
* ``P(n)`` = # orders whose topmost decomposition is *parallel*
  (>= 2 connected components, none itself parallel),
* ``NS(n) = P(n) + [n = 1]``  (valid series blocks),
* ``NP(n) = S(n) + [n = 1]``  (valid parallel components),
* ``T(n) = S(n) + P(n) + [n = 1]``  (all p-graphs).

Ordered block sequences satisfy ``F(n) = sum_j C(n, j) NS(j) F(n - j)``
with ``F(0) = 1`` and ``S(n) = F(n) - NS(n)`` (remove the single-block
sequences).  Unordered component multisets are anchored at the smallest
remaining label: ``G(n) = sum_j C(n-1, j-1) NP(j) G(n - j)`` with
``G(0) = 1`` and ``P(n) = G(n) - NP(n)``.

The decomposition of a p-graph into these choices is unique, so drawing
every size/subset decision with probability proportional to its exact
(big-integer) count yields the uniform distribution over p-graphs --
verified against exhaustive enumeration for d <= 5 in the tests
(T = 1, 3, 19, 195, 2791, ...).
"""

from __future__ import annotations

import functools
import math
import random
from typing import Sequence

from ..core.expressions import Att, PExpr, pareto, prioritized
from ..core.pgraph import PGraph

__all__ = ["count_pgraphs_exact", "ExactUniformSampler"]


class _Tables:
    """The S/P/NS/NP/F/G dynamic-programming tables up to ``max_n``."""

    def __init__(self, max_n: int):
        self.max_n = max_n
        size = max_n + 1
        self.series = [0] * size       # S
        self.parallel = [0] * size     # P
        self.not_series = [0] * size   # NS
        self.not_parallel = [0] * size  # NP
        self.f = [0] * size
        self.g = [0] * size
        self.f[0] = 1
        self.g[0] = 1
        if max_n >= 1:
            self.not_series[1] = 1
            self.not_parallel[1] = 1
            self.f[1] = 1
            self.g[1] = 1
        for n in range(2, size):
            # S(n) and P(n) depend only on NS/NP below n
            f_n = sum(
                math.comb(n, j) * self.not_series[j] * self.f[n - j]
                for j in range(1, n)
            )
            g_n = sum(
                math.comb(n - 1, j - 1) * self.not_parallel[j]
                * self.g[n - j]
                for j in range(1, n)
            )
            self.series[n] = f_n           # = F(n) - NS(n), see below
            self.parallel[n] = g_n
            self.not_series[n] = self.parallel[n]
            self.not_parallel[n] = self.series[n]
            self.f[n] = f_n + self.not_series[n]
            self.g[n] = g_n + self.not_parallel[n]

    def total(self, n: int) -> int:
        if n == 1:
            return 1
        return self.series[n] + self.parallel[n]


@functools.lru_cache(maxsize=4)
def _tables(max_n: int) -> _Tables:
    return _Tables(max_n)


def count_pgraphs_exact(d: int) -> int:
    """The number of labelled p-graphs on ``d`` attributes, in closed
    recursive form (no enumeration)."""
    if d < 1:
        raise ValueError("d must be positive")
    return _tables(d).total(d)


def _weighted_choice(rng: random.Random,
                     weights: Sequence[int]) -> int:
    """Index drawn proportionally to exact integer weights."""
    total = sum(weights)
    ticket = rng.randrange(total)
    for index, weight in enumerate(weights):
        ticket -= weight
        if ticket < 0:
            return index
    raise AssertionError("unreachable")  # pragma: no cover


class ExactUniformSampler:
    """Draws p-expressions whose p-graphs are *exactly* uniform.

    Improves on the paper's SampleSAT approach: no mixing parameter, no
    bias, any number of attributes (cost is an O(d^2) big-integer DP once
    plus O(d) choices per sample).
    """

    def __init__(self, names: Sequence[str]):
        self.names = tuple(names)
        if not self.names:
            raise ValueError("need at least one attribute")
        self.tables = _tables(len(self.names))

    # -- public API ------------------------------------------------------------
    def sample_expression(self, rng: random.Random) -> PExpr:
        return self._any(list(self.names), rng)

    def sample_graph(self, rng: random.Random) -> PGraph:
        expr = self.sample_expression(rng)
        return PGraph.from_expression(expr, names=self.names)

    # -- structural recursion --------------------------------------------------
    def _any(self, labels: list[str], rng: random.Random) -> PExpr:
        n = len(labels)
        if n == 1:
            return Att(labels[0])
        t = self.tables
        if _weighted_choice(rng, [t.series[n], t.parallel[n]]) == 0:
            return self._series(labels, rng)
        return self._parallel(labels, rng)

    def _not_series(self, labels: list[str], rng: random.Random) -> PExpr:
        if len(labels) == 1:
            return Att(labels[0])
        return self._parallel(labels, rng)

    def _not_parallel(self, labels: list[str],
                      rng: random.Random) -> PExpr:
        if len(labels) == 1:
            return Att(labels[0])
        return self._series(labels, rng)

    def _series(self, labels: list[str], rng: random.Random) -> PExpr:
        """An ordinal sum of >= 2 non-series blocks, uniform over its
        count ``S(n) = F(n) - NS(n)``."""
        t = self.tables
        n = len(labels)
        # first block: size j < n (j = n would be the single-block case)
        weights = [
            math.comb(n, j) * t.not_series[j] * t.f[n - j]
            for j in range(1, n)
        ]
        j = 1 + _weighted_choice(rng, weights)
        block_labels = rng.sample(labels, j)
        remaining = [name for name in labels if name not in block_labels]
        blocks = [self._not_series(block_labels, rng)]
        blocks.extend(self._f_sequence(remaining, rng))
        return prioritized(*blocks)

    def _f_sequence(self, labels: list[str],
                    rng: random.Random) -> list[PExpr]:
        """A (possibly single-block) ordered sequence, uniform over
        ``F(n)``."""
        t = self.tables
        blocks: list[PExpr] = []
        while labels:
            m = len(labels)
            weights = [
                math.comb(m, j) * t.not_series[j] * t.f[m - j]
                for j in range(1, m + 1)
            ]
            j = 1 + _weighted_choice(rng, weights)
            block_labels = rng.sample(labels, j)
            labels = [name for name in labels
                      if name not in block_labels]
            blocks.append(self._not_series(block_labels, rng))
        return blocks

    def _parallel(self, labels: list[str], rng: random.Random) -> PExpr:
        """A disjoint union of >= 2 non-parallel components, uniform over
        ``P(n) = G(n) - NP(n)``; components are anchored at the smallest
        remaining label to avoid ordering overcounts."""
        t = self.tables
        n = len(labels)
        weights = [
            math.comb(n - 1, j - 1) * t.not_parallel[j] * t.g[n - j]
            for j in range(1, n)
        ]
        j = 1 + _weighted_choice(rng, weights)
        anchor = min(labels)
        others = [name for name in labels if name != anchor]
        chosen = rng.sample(others, j - 1)
        block_labels = [anchor] + chosen
        remaining = [name for name in others if name not in chosen]
        components = [self._not_parallel(block_labels, rng)]
        components.extend(self._g_sequence(remaining, rng))
        return pareto(*components)

    def _g_sequence(self, labels: list[str],
                    rng: random.Random) -> list[PExpr]:
        t = self.tables
        components: list[PExpr] = []
        while labels:
            m = len(labels)
            weights = [
                math.comb(m - 1, j - 1) * t.not_parallel[j] * t.g[m - j]
                for j in range(1, m + 1)
            ]
            j = 1 + _weighted_choice(rng, weights)
            anchor = min(labels)
            others = [name for name in labels if name != anchor]
            chosen = rng.sample(others, j - 1)
            labels = [name for name in others if name not in chosen]
            components.append(
                self._not_parallel([anchor] + chosen, rng))
        return components
