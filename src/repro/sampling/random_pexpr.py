"""Uniform sampling of random p-expressions (Section 7.1).

The paper's benchmarking framework requires p-expressions sampled so that
*all p-graphs are equally likely*:

* for small ``d`` (up to :data:`~repro.sampling.enumeration.MAX_EXACT_D`)
  the valid p-graphs are enumerated and sampled exactly uniformly;
* for larger ``d`` the Theorem 4 constraints are compiled to CNF and
  sampled near-uniformly with SampleSAT (mixing parameter ``f``, the paper
  uses ``f = 0.5``).

Sampled p-graphs are converted back to p-expressions with the
series-parallel decomposition of :mod:`repro.sampling.decompose`.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.expressions import PExpr
from ..core.pgraph import PGraph
from .cnf import model_to_pgraph, pgraph_cnf
from .decompose import decompose
from .enumeration import MAX_EXACT_D, sample_exact
from .exact_counting import ExactUniformSampler
from .samplesat import SampleSAT

__all__ = ["PExpressionSampler", "sample_pgraph", "sample_pexpression"]


class PExpressionSampler:
    """Reusable sampler of uniform random p-graphs / p-expressions.

    ``method`` is one of:

    * ``"auto"`` -- exact enumeration for small d, SampleSAT beyond
      (the paper's protocol);
    * ``"exact"`` -- exhaustive enumeration (d <= 5);
    * ``"samplesat"`` -- the paper's near-uniform CNF walk, mixing
      parameter ``f`` (0.5 in the paper);
    * ``"counting"`` -- the series-parallel counting sampler of
      :mod:`repro.sampling.exact_counting`: *exactly* uniform at any d
      (this repo's improvement over the paper).
    """

    def __init__(self, names: Sequence[str], *, method: str = "auto",
                 f: float = 0.5, max_flips: int = 500_000):
        if method not in ("auto", "exact", "samplesat", "counting"):
            raise ValueError(f"unknown sampling method {method!r}")
        self.names = tuple(names)
        d = len(self.names)
        if method == "auto":
            method = "exact" if d <= MAX_EXACT_D else "samplesat"
        if method == "exact" and d > MAX_EXACT_D:
            raise ValueError(
                f"exact sampling supports at most {MAX_EXACT_D} attributes"
            )
        self.method = method
        self._sampler: SampleSAT | None = None
        self._counting: ExactUniformSampler | None = None
        if method == "samplesat":
            cnf, variables = pgraph_cnf(d)
            self._variables = variables
            self._sampler = SampleSAT(cnf, f=f, max_flips=max_flips)
        elif method == "counting":
            self._counting = ExactUniformSampler(self.names)

    def sample_graph(self, rng: random.Random) -> PGraph:
        """Draw one p-graph (exactly or near-uniformly at random)."""
        if self.method == "exact":
            return sample_exact(self.names, rng)
        if self.method == "counting":
            assert self._counting is not None
            return self._counting.sample_graph(rng)
        assert self._sampler is not None
        model = self._sampler.sample(rng)
        return model_to_pgraph(model, self._variables, self.names)

    def sample_expression(self, rng: random.Random) -> PExpr:
        """Draw one p-expression whose p-graph is uniform."""
        if self.method == "counting":
            assert self._counting is not None
            return self._counting.sample_expression(rng)
        return decompose(self.sample_graph(rng))

    def sample_graphs(self, count: int,
                      rng: random.Random) -> list[PGraph]:
        return [self.sample_graph(rng) for _ in range(count)]


def sample_pgraph(names: Sequence[str], rng: random.Random, *,
                  method: str = "auto", f: float = 0.5) -> PGraph:
    """One-shot convenience wrapper around :class:`PExpressionSampler`."""
    return PExpressionSampler(names, method=method, f=f).sample_graph(rng)


def sample_pexpression(names: Sequence[str], rng: random.Random, *,
                       method: str = "auto", f: float = 0.5) -> PExpr:
    """Draw a random p-expression over ``names`` (uniform over p-graphs)."""
    return PExpressionSampler(names, method=method, f=f) \
        .sample_expression(rng)
