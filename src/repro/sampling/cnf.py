"""CNF encoding of p-graph validity (Theorem 4).

A directed graph over ``d`` attributes is a p-graph iff it is irreflexive,
transitive and satisfies the *envelope property*.  We encode the edge set
as ``d * (d - 1)`` boolean variables ``x[i][j]`` (``i != j``) and emit:

* antisymmetry: ``¬x_ij ∨ ¬x_ji`` (with transitivity this also rules out
  longer cycles);
* transitivity: ``¬x_ij ∨ ¬x_jk ∨ x_ik`` for distinct ``i, j, k``;
* envelope: for all distinct ``i1, i2, i3, i4``,
  ``¬x_{i1 i2} ∨ ¬x_{i3 i4} ∨ ¬x_{i3 i2} ∨ x_{i3 i1} ∨ x_{i1 i4} ∨ x_{i4 i2}``.

The satisfying assignments of this CNF are exactly the valid p-graphs on
``d`` labelled attributes, so sampling models uniformly samples p-graphs
uniformly.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..core.pgraph import PGraph
from .sat import CNF

__all__ = ["EdgeVariables", "pgraph_cnf", "model_to_pgraph",
           "pgraph_to_model"]


class EdgeVariables:
    """Bijection between ordered attribute pairs and CNF variables."""

    __slots__ = ("d", "_index")

    def __init__(self, d: int):
        self.d = d
        self._index: dict[tuple[int, int], int] = {}
        counter = 1
        for i in range(d):
            for j in range(d):
                if i != j:
                    self._index[(i, j)] = counter
                    counter += 1

    @property
    def num_vars(self) -> int:
        return self.d * (self.d - 1)

    def var(self, i: int, j: int) -> int:
        """The (1-based) variable for the edge ``i -> j``."""
        return self._index[(i, j)]

    def pairs(self) -> list[tuple[int, int]]:
        return list(self._index)


def pgraph_cnf(d: int) -> tuple[CNF, EdgeVariables]:
    """Build the Theorem 4 constraints for ``d`` attributes."""
    if d < 1:
        raise ValueError("need at least one attribute")
    variables = EdgeVariables(d)
    cnf = CNF(variables.num_vars)
    x = variables.var
    for i, j in itertools.combinations(range(d), 2):
        cnf.add((-x(i, j), -x(j, i)))
    for i, j, k in itertools.permutations(range(d), 3):
        cnf.add((-x(i, j), -x(j, k), x(i, k)))
    for a1, a2, a3, a4 in itertools.permutations(range(d), 4):
        cnf.add((-x(a1, a2), -x(a3, a4), -x(a3, a2),
                 x(a3, a1), x(a1, a4), x(a4, a2)))
    return cnf, variables


def model_to_pgraph(model: Sequence[bool], variables: EdgeVariables,
                    names: Sequence[str]) -> PGraph:
    """Decode a satisfying assignment into a :class:`PGraph`."""
    closure = [0] * variables.d
    for (i, j), var in zip(variables.pairs(),
                           range(1, variables.num_vars + 1)):
        if model[var - 1]:
            closure[i] |= 1 << j
    return PGraph(names, closure)


def pgraph_to_model(graph: PGraph, variables: EdgeVariables) -> list[bool]:
    """Encode a p-graph as an assignment (inverse of
    :func:`model_to_pgraph`)."""
    model = [False] * variables.num_vars
    for i, j in variables.pairs():
        if graph.closure[i] & (1 << j):
            model[variables.var(i, j) - 1] = True
    return model
