"""Topology statistics of uniform random p-graphs.

Figure 5 groups queries by the number of attributes and of p-graph roots;
interpreting those plots requires knowing what a *uniform* p-graph looks
like at each d.  This module computes the distributions of structural
features (roots, closure edges, depth, weak-orderness) of uniformly drawn
p-graphs:

* exactly, by exhaustive enumeration, for ``d <= MAX_EXACT_D``;
* by Monte-Carlo over the exactly-uniform counting sampler beyond that.

The headline fact it quantifies: uniform p-graphs are *heavily
prioritized* -- the expected number of roots grows much slower than d, so
random workloads are dominated by small-output queries (exactly what the
paper's Figures 4/5 reflect).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from .enumeration import MAX_EXACT_D, enumerate_pgraphs
from .exact_counting import ExactUniformSampler

__all__ = ["TopologyProfile", "topology_profile"]


@dataclass(frozen=True)
class TopologyProfile:
    """Structural feature distributions of uniform p-graphs on d attrs."""

    d: int
    exact: bool                      # enumeration (True) or Monte-Carlo
    samples: int                     # population or sample size
    roots: dict[int, float]          # P(#roots = k)
    edges_mean: float                # mean closure edges
    depth_mean: float                # mean maximum depth
    weak_order_share: float          # P(priority order is a weak order)

    @property
    def roots_mean(self) -> float:
        return sum(k * p for k, p in self.roots.items())


def topology_profile(d: int, *, samples: int = 2000,
                     seed: int = 0) -> TopologyProfile:
    """Profile the uniform distribution over p-graphs on ``d`` attributes.

    Uses exhaustive enumeration when feasible; otherwise ``samples``
    draws from the exactly-uniform counting sampler.
    """
    if d < 1:
        raise ValueError("d must be positive")
    names = [f"A{i}" for i in range(d)]
    if d <= MAX_EXACT_D:
        graphs = enumerate_pgraphs(names)
        population = len(graphs)
        roots = Counter(graph.num_roots for graph in graphs)
        edges = sum(graph.num_edges for graph in graphs)
        depth = sum(max(graph.depths) for graph in graphs)
        weak = sum(graph.is_weak_order() for graph in graphs)
        return TopologyProfile(
            d=d, exact=True, samples=population,
            roots={k: count / population
                   for k, count in sorted(roots.items())},
            edges_mean=edges / population,
            depth_mean=depth / population,
            weak_order_share=weak / population,
        )
    sampler = ExactUniformSampler(names)
    rng = random.Random(seed)
    roots: Counter[int] = Counter()
    edges = 0
    depth = 0
    weak = 0
    for _ in range(samples):
        graph = sampler.sample_graph(rng)
        roots[graph.num_roots] += 1
        edges += graph.num_edges
        depth += max(graph.depths)
        weak += graph.is_weak_order()
    return TopologyProfile(
        d=d, exact=False, samples=samples,
        roots={k: count / samples for k, count in sorted(roots.items())},
        edges_mean=edges / samples,
        depth_mean=depth / samples,
        weak_order_share=weak / samples,
    )
