"""Exact enumeration of p-graphs over few attributes.

Every unordered attribute pair can be unrelated, or related in one of the
two directions, so candidate edge sets are enumerated as ternary choices
over the ``d * (d - 1) / 2`` pairs (``3^10 = 59049`` candidates at
``d = 5``).  Candidates are kept iff they are transitive and satisfy the
envelope property (Theorem 4).  Enumeration yields *exact* uniform
sampling for small ``d`` and the ground truth against which the SampleSAT
sampler is validated.
"""

from __future__ import annotations

import functools
import itertools
import random
from typing import Sequence

from ..core.pgraph import PGraph

__all__ = ["enumerate_pgraphs", "count_pgraphs", "sample_exact",
           "MAX_EXACT_D"]

MAX_EXACT_D = 5


@functools.lru_cache(maxsize=8)
def _closures(d: int) -> tuple[tuple[int, ...], ...]:
    """All valid p-graph closures over ``d`` attributes, as mask tuples."""
    if d > MAX_EXACT_D:
        raise ValueError(
            f"exact enumeration is limited to d <= {MAX_EXACT_D}"
        )
    if d == 0:
        return ((),)
    pairs = list(itertools.combinations(range(d), 2))
    results: list[tuple[int, ...]] = []
    for choice in itertools.product((0, 1, 2), repeat=len(pairs)):
        closure = [0] * d
        for (i, j), direction in zip(pairs, choice):
            if direction == 1:
                closure[i] |= 1 << j
            elif direction == 2:
                closure[j] |= 1 << i
        if _is_transitive(closure) and _satisfies_envelope(closure, d):
            results.append(tuple(closure))
    return tuple(results)


def _is_transitive(closure: Sequence[int]) -> bool:
    for i, mask in enumerate(closure):
        remaining = mask
        while remaining:
            low = remaining & -remaining
            k = low.bit_length() - 1
            remaining ^= low
            if closure[k] & ~mask:
                return False
    return True


def _satisfies_envelope(closure: Sequence[int], d: int) -> bool:
    for a1, a2, a3, a4 in itertools.permutations(range(d), 4):
        if (closure[a1] & (1 << a2) and closure[a3] & (1 << a4)
                and closure[a3] & (1 << a2)):
            if not (closure[a3] & (1 << a1) or closure[a1] & (1 << a4)
                    or closure[a4] & (1 << a2)):
                return False
    return True


def enumerate_pgraphs(names: Sequence[str]) -> list[PGraph]:
    """All valid p-graphs over the given attributes (small ``d`` only)."""
    return [PGraph(names, closure) for closure in _closures(len(names))]


def count_pgraphs(d: int) -> int:
    """The number of labelled p-graphs on ``d`` attributes."""
    return len(_closures(d))


def sample_exact(names: Sequence[str], rng: random.Random) -> PGraph:
    """Draw one p-graph exactly uniformly at random (small ``d`` only)."""
    closures = _closures(len(names))
    return PGraph(names, rng.choice(closures))
