"""Eliciting a p-expression from example pairs.

The p-skyline framework of Mindolin and Chomicki [29] -- the substrate of
this paper -- was introduced for *preference elicitation*: a user supplies
example pairs "tuple ``s`` should beat tuple ``t``", and the system finds
priority relationships between attributes that realise them.  This module
implements a greedy elicitor over that idea:

* by Proposition 1, ``s ≻_pi t`` holds iff the tuples are distinguishable
  and every attribute won by ``t`` has a ``Gamma_pi``-ancestor won by
  ``s`` -- so each example pair ``(s, t)`` contributes one *coverage
  requirement* per attribute in ``Better(t, s)``, with candidate covers
  ``Better(s, t) x {that attribute}``;
* dominance is monotone in the edge set (Proposition 2), so adding edges
  never unsatisfies a satisfied pair, but it can *flip* a not-yet-covered
  pair (make the inferior dominate the superior) irrevocably -- the
  greedy step therefore rejects edges that flip any pair;
* every intermediate graph must stay a valid p-graph: transitively
  closed, acyclic, and satisfying Theorem 4's envelope property, so the
  result is always realisable as a p-expression.

The elicitor adds, at each step, the valid candidate edge that covers the
most outstanding requirements (ties: fewer closure edges added), until
all pairs are satisfied or no candidate helps.  It returns the learned
graph, the equivalent p-expression, and a per-pair report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.bitsets import iter_bits
from ..core.pgraph import CyclicPriorityError, PGraph
from ..core.expressions import PExpr
from ..sampling.decompose import decompose

__all__ = ["ExamplePair", "ElicitationResult", "elicit"]

Tuple = Mapping[str, float]


@dataclass(frozen=True)
class ExamplePair:
    """One piece of user feedback: ``superior`` should beat ``inferior``.

    Values follow the library convention: smaller is better.
    """

    superior: Mapping[str, float]
    inferior: Mapping[str, float]


@dataclass
class ElicitationResult:
    """The learned priority structure and which examples it satisfies."""

    graph: PGraph
    expression: PExpr
    satisfied: list[int]
    unsatisfied: list[int]
    infeasible: list[int]

    @property
    def complete(self) -> bool:
        return not self.unsatisfied and not self.infeasible


def _pair_masks(pair: ExamplePair, names: Sequence[str]) -> tuple[int, int]:
    better_sup = 0
    better_inf = 0
    for index, name in enumerate(names):
        s = pair.superior[name]
        t = pair.inferior[name]
        if s < t:
            better_sup |= 1 << index
        elif t < s:
            better_inf |= 1 << index
    return better_sup, better_inf


def _dominates(graph: PGraph, b1: int, b2: int) -> bool:
    """Proposition 1 on precomputed Better masks."""
    if not (b1 | b2):
        return False
    return (b2 & ~graph.desc_of_set(b1)) == 0


def _try_add_edge(graph: PGraph, upper: int, lower: int) -> PGraph | None:
    """The closure of ``graph`` + edge, or None if invalid (cycle or
    envelope violation)."""
    edges = [(graph.names[i], graph.names[j])
             for i in range(graph.d) for j in iter_bits(graph.closure[i])]
    edges.append((graph.names[upper], graph.names[lower]))
    try:
        candidate = PGraph.from_edges(graph.names, edges)
    except CyclicPriorityError:
        return None
    if not candidate.satisfies_envelope():
        return None
    return candidate


def elicit(names: Sequence[str],
           pairs: Sequence[ExamplePair]) -> ElicitationResult:
    """Learn a p-graph over ``names`` satisfying as many ``pairs`` as
    possible.

    Pairs whose tuples are indistinguishable, or whose superior loses on
    *every* differing attribute, can never be satisfied by any p-graph
    and are reported as ``infeasible``.  The remaining pairs are covered
    greedily; pairs left over (because every helpful edge would either
    break validity or flip another pair) are reported ``unsatisfied``.
    """
    names = tuple(names)
    graph = PGraph.empty(names)
    masks = [_pair_masks(pair, names) for pair in pairs]

    infeasible = [
        index for index, (b1, b2) in enumerate(masks)
        if not (b1 | b2) or b1 == 0
    ]
    active = [index for index in range(len(pairs))
              if index not in infeasible]

    def satisfied_under(candidate: PGraph, index: int) -> bool:
        b1, b2 = masks[index]
        return _dominates(candidate, b1, b2)

    def flipped_under(candidate: PGraph, index: int) -> bool:
        b1, b2 = masks[index]
        return _dominates(candidate, b2, b1)

    while True:
        outstanding = [index for index in active
                       if not satisfied_under(graph, index)]
        if not outstanding:
            break
        # candidate edges: for an outstanding pair, an uncovered attribute
        # j won by the inferior, covered by some i won by the superior
        scores: dict[tuple[int, int], int] = {}
        for index in outstanding:
            b1, b2 = masks[index]
            uncovered = b2 & ~graph.desc_of_set(b1)
            for j in iter_bits(uncovered):
                for i in iter_bits(b1):
                    if not graph.closure[i] & (1 << j):
                        scores[(i, j)] = scores.get((i, j), 0) + 1
        best_edge = None
        best_key = None
        for (i, j), score in scores.items():
            candidate = _try_add_edge(graph, i, j)
            if candidate is None:
                continue
            # flipping an outstanding pair is irrevocable (dominance is
            # monotone in the edge set); count the casualties
            flips = sum(
                1 for index in outstanding
                if flipped_under(candidate, index)
            )
            gain = sum(
                1 for index in outstanding
                if satisfied_under(candidate, index)
            )
            if gain == 0 or gain < flips:
                continue  # only edges that satisfy at least as much as
                # they sacrifice (satisfying one of two conflicting
                # examples beats satisfying neither)
            added_edges = candidate.num_edges - graph.num_edges
            key = (flips, -gain, added_edges, i, j)
            if best_key is None or key < best_key:
                best_key = key
                best_edge = candidate
        if best_edge is None:
            break  # no valid edge yields a net gain
        graph = best_edge

    satisfied = [index for index in active
                 if satisfied_under(graph, index)]
    unsatisfied = [index for index in active if index not in satisfied]
    return ElicitationResult(
        graph=graph,
        expression=decompose(graph) if graph.d else None,
        satisfied=satisfied,
        unsatisfied=unsatisfied,
        infeasible=infeasible,
    )
