"""Preference elicitation: learning p-graphs from example pairs
(the Mindolin-Chomicki substrate of the p-skyline framework)."""

from .greedy import ElicitationResult, ExamplePair, elicit

__all__ = ["ExamplePair", "ElicitationResult", "elicit"]
