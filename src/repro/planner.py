"""A small cost-based planner for p-skyline queries.

Section 8 of the paper suggests using output-size estimation "for
choosing the most convenient algorithm for answering [a query], on a
case-by-case basis".  :class:`Planner` implements that idea with simple,
measurable rules:

1. tiny inputs -> the quadratic ``naive`` kernel (lowest constant);
2. weak-order priority graphs -> the specialised ``layered`` evaluator
   (lexicographic layers of Pareto bundles);
3. inputs beyond the memory budget -> ``external-osdc``;
4. inputs at or beyond ``parallel_threshold`` -> ``parallel-osdc`` on
   the persistent worker pool (the per-query cost of shipping
   shared-memory descriptors is negligible at that scale);
5. otherwise estimate the output size by sampling
   (:func:`repro.estimation.estimate_pskyline_size`): very selective
   queries -> ``bnl`` (a short scan with a one-tuple window beats the
   divide-and-conquer set-up cost), everything else -> ``osdc``.

``p_skyline(..., algorithm="auto")`` routes through a default planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .algorithms import Stats, ensure_context, get_algorithm
from .algorithms.layered import layered
from .core.pgraph import PGraph
from .engine.context import ExecutionContext
from .engine.pool import pool_available
from .estimation.cardinality import estimate_pskyline_size

__all__ = ["Plan", "Planner"]


@dataclass(frozen=True)
class Plan:
    """The planner's decision for one query."""

    algorithm: str
    reason: str
    estimated_output: float | None = None
    options: dict = field(default_factory=dict)
    #: Screen threads the plan grants the evaluation.  ``None`` defers
    #: to the :mod:`repro.engine.threads` policy (serial execution gets
    #: the full auto budget); process-parallel plans set 1 -- each pool
    #: worker screens single-threaded, the pool owns the cores.
    thread_budget: int | None = None
    _function: Callable | None = None

    def execute(self, ranks: np.ndarray, graph: PGraph,
                stats: Stats | None = None,
                context: ExecutionContext | None = None) -> np.ndarray:
        context = ensure_context(context, stats)
        self.record(context)
        function = self._function or get_algorithm(self.algorithm)
        return function(ranks, graph, context=context, **self.options)

    def record(self, context: ExecutionContext) -> None:
        """Expose the decision in ``stats.extra["plan"]`` and the trace."""
        if context.stats is not None:
            from .engine.threads import effective_budget

            threads = (self.thread_budget if self.thread_budget
                       is not None else effective_budget())
            context.stats.extra["plan"] = {
                "algorithm": self.algorithm,
                "reason": self.reason,
                "estimated_output": self.estimated_output,
                "thread_budget": threads,
            }
        context.event("plan", chosen=self.algorithm)

    def explain(self) -> str:
        estimate = ("" if self.estimated_output is None
                    else f" (estimated output ~ {self.estimated_output:.0f})")
        return f"{self.algorithm}: {self.reason}{estimate}"


class Planner:
    """Chooses an evaluation algorithm per query.

    Parameters
    ----------
    naive_threshold:
        Inputs up to this many tuples go to the quadratic kernel.
    bnl_selectivity:
        Estimated ``v/n`` at or below which BNL is chosen.
    memory_budget:
        Inputs beyond this many tuples use the external-memory OSDC
        (``None`` disables the rule -- everything is assumed to fit).
    parallel_threshold:
        Inputs with at least this many tuples are partitioned across
        the persistent worker pool (``parallel-osdc`` with the auto
        process policy).  ``None`` disables the rule; it is also
        skipped in daemonic processes, which cannot host workers.
    sample_size:
        Sample size for the output estimator.
    sharded_threshold:
        Snapshots of a sharded relation with at least this many tuples
        (and more than one non-empty shard) are scattered across the
        worker pool per shard; below it the merge overhead is not worth
        paying and the snapshot is evaluated serially.
    """

    def __init__(self, *, naive_threshold: int = 128,
                 bnl_selectivity: float = 0.002,
                 memory_budget: int | None = None,
                 parallel_threshold: int | None = 200_000,
                 sample_size: int = 64,
                 sharded_threshold: int = 50_000,
                 rng: np.random.Generator | None = None):
        self.naive_threshold = naive_threshold
        self.bnl_selectivity = bnl_selectivity
        self.memory_budget = memory_budget
        self.parallel_threshold = parallel_threshold
        self.sample_size = sample_size
        self.sharded_threshold = sharded_threshold
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def plan(self, ranks: np.ndarray, graph: PGraph,
             context: ExecutionContext | None = None) -> Plan:
        """Decide how to evaluate ``M_pi(ranks)``."""
        n = ranks.shape[0]
        is_weak_order = (context.compiled(graph).is_weak_order
                         if context is not None
                         else graph.is_weak_order())
        if n <= self.naive_threshold:
            return Plan("naive", f"input has only {n} tuples")
        if self.memory_budget is not None and n > self.memory_budget:
            return Plan(
                "external-osdc",
                f"input exceeds the memory budget of "
                f"{self.memory_budget} tuples",
                options={"memory_budget": self.memory_budget},
            )
        if is_weak_order:
            return Plan(
                "layered",
                "the priority order is a weak order: evaluate layer by "
                "layer",
                _function=lambda r, g, stats=None, context=None, **_:
                    layered(r, g, stats=stats, context=context),
            )
        if self.parallel_threshold is not None \
                and n >= self.parallel_threshold and pool_available():
            return Plan(
                "parallel-osdc",
                f"input of {n} tuples is at or beyond the parallel "
                f"threshold of {self.parallel_threshold}: partition "
                "across the worker pool",
                options={"processes": None},
                thread_budget=1,  # one screen thread per pool worker
            )
        estimate = estimate_pskyline_size(ranks, graph, self.rng,
                                          sample_size=self.sample_size)
        if estimate <= self.bnl_selectivity * n:
            return Plan(
                "bnl",
                "estimated output is a tiny fraction of the input; a "
                "scan with a small window wins",
                estimated_output=estimate,
            )
        return Plan(
            "osdc",
            "general case: output-sensitive divide and conquer",
            estimated_output=estimate,
        )

    def plan_sharded(self, snapshot, graph: PGraph,
                     context: ExecutionContext | None = None,
                     columns=None) -> Plan:
        """The shard-aware rule for a
        :class:`~repro.core.sharding.ShardSnapshot` of an *untracked*
        p-graph.

        * one (or zero) non-empty shards -> evaluate that shard alone
          (``single-shard``: partitioning adds nothing);
        * large snapshots with a live worker pool ->
          ``sharded-scatter-gather`` over the per-shard shared-memory
          registrations;
        * everything else -> ``sharded-serial``, i.e. the ordinary
          single-matrix plan over the materialised snapshot.
        """
        n = len(snapshot)
        populated = [index for index, shard in enumerate(snapshot.shards)
                     if len(shard)]
        if len(populated) <= 1:
            shard = populated[0] if populated else 0
            return Plan(
                "single-shard",
                f"only {len(populated)} of {snapshot.num_shards} shards "
                "hold tuples: evaluate that shard directly",
                options={"shard": shard},
            )
        if n >= self.sharded_threshold and pool_available():
            estimate = None
            if n and (columns is not None
                      or snapshot.relation.arity == graph.d):
                sample = snapshot.relation.ranks
                if columns is not None:
                    sample = sample[:, list(columns)]
                estimate = estimate_pskyline_size(
                    sample, graph, self.rng,
                    sample_size=self.sample_size)
            return Plan(
                "sharded-scatter-gather",
                f"snapshot of {n} tuples across {len(populated)} "
                "populated shards: scatter per shard and tree-merge on "
                "the pool",
                estimated_output=estimate,
                thread_budget=1,  # one screen thread per pool worker
            )
        return Plan(
            "sharded-serial",
            f"snapshot of {n} tuples is below the sharded threshold of "
            f"{self.sharded_threshold} (or no pool is available): "
            "evaluate the materialised snapshot serially",
        )

    def execute(self, ranks: np.ndarray, graph: PGraph,
                stats: Stats | None = None,
                context: ExecutionContext | None = None) -> np.ndarray:
        """Plan and run in one call."""
        context = ensure_context(context, stats)
        return self.plan(ranks, graph, context).execute(
            ranks, graph, context=context)


#: The planner behind ``p_skyline(..., algorithm="auto")``.
DEFAULT_PLANNER = Planner()
