"""Reference p-graph: name-level sets instead of bitmasks.

A small, readable mirror of :class:`repro.core.pgraph.PGraph` operating
on attribute *names* and Python sets -- exactly the notation of the
paper (``Succ``, ``Pre``, ``Desc``, ``Anc``, ``Roots``, depths).  Built
from ``PExpr.edges()``, which produces the transitively closed edge set
of Definition 2.
"""

from __future__ import annotations

from ..core.expressions import PExpr

__all__ = ["PriorityGraph"]


class PriorityGraph:
    """Name-level priority DAG of a p-expression."""

    def __init__(self, expression: PExpr):
        self.attributes = list(expression.attributes())
        closure = {name: set() for name in self.attributes}
        for upper, lower in expression.edges():
            closure[upper].add(lower)
        self.desc = closure
        self.anc = {name: set() for name in self.attributes}
        for upper, lowers in closure.items():
            for lower in lowers:
                self.anc[lower].add(upper)
        # transitive reduction: drop edges implied by an intermediate
        self.succ = {
            upper: {
                lower for lower in lowers
                if not any(lower in closure[mid]
                           for mid in lowers if mid != lower)
            }
            for upper, lowers in closure.items()
        }
        self.pre = {name: set() for name in self.attributes}
        for upper, lowers in self.succ.items():
            for lower in lowers:
                self.pre[lower].add(upper)
        self.roots = {name for name in self.attributes
                      if not self.anc[name]}
        self.depth = {}
        for name in self._topological():
            self.depth[name] = max(
                (self.depth[parent] + 1 for parent in self.pre[name]),
                default=0,
            )

    def _topological(self) -> list[str]:
        order: list[str] = []
        placed: set[str] = set()

        def visit(name: str) -> None:
            if name in placed:
                return
            for parent in self.anc[name]:
                visit(parent)
            placed.add(name)
            order.append(name)

        for name in self.attributes:
            visit(name)
        return order

    def desc_of(self, names: set[str]) -> set[str]:
        """Union of ``Desc`` over a set of attributes."""
        result: set[str] = set()
        for name in names:
            result |= self.desc[name]
        return result
