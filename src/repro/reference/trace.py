"""Invocation traces of the reference DC recursion (the paper's
Example 3 diagram, as text).

``trace_dc`` runs the pseudocode-faithful DC while recording one node per
DCREC invocation: the input tuples, the candidate/equal sets, the action
taken (split, promotion, base case) and the returned p-skyline.
``format_trace`` renders the tree with indentation, which reproduces the
paper's Example 3 walk-through for teaching and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.expressions import PExpr
from .algorithms import (_pscreen_single_point, pscreen,
                         pskyline_single_point, split_by_attribute)
from .pgraph import PriorityGraph

__all__ = ["TraceNode", "trace_dc", "format_trace"]

Tuple = Mapping[str, float]


@dataclass
class TraceNode:
    """One DCREC invocation."""

    tuples: list[Tuple]
    candidates: set[str]
    equal: set[str]
    action: str = ""
    result: list[Tuple] = field(default_factory=list)
    children: list["TraceNode"] = field(default_factory=list)


def trace_dc(expression: PExpr, tuples: Sequence[Tuple],
             lookahead: bool = False) -> TraceNode:
    """Run (OS)DC on ``tuples`` and return the invocation tree."""
    graph = PriorityGraph(expression)

    def rec(data: list[Tuple], candidates: set[str],
            equal: set[str]) -> TraceNode:
        node = TraceNode(list(data), set(candidates), set(equal))
        if not candidates or len(data) <= 1:
            node.action = "base case: return D"
            node.result = list(data)
            return node
        attribute = next(
            (a for a in sorted(candidates)
             if len({item[a] for item in data}) > 1),
            None,
        )
        if attribute is None:
            attribute = sorted(candidates)[0]
            new_equal = equal | {attribute}
            new_candidates = (candidates - {attribute}) | {
                successor for successor in graph.succ[attribute]
                if graph.pre[successor] <= new_equal
            }
            node.action = (f"all tuples agree on {attribute}: move it to "
                           f"E, C becomes {sorted(new_candidates)}")
            child = rec(data, new_candidates, new_equal)
            node.children.append(child)
            node.result = child.result
            return node
        better, worse = split_by_attribute(data, attribute)
        node.action = (f"split on {attribute}: |B|={len(better)} "
                       f"|W|={len(worse)}")
        pivots: list[Tuple] = []
        if lookahead:
            pivot = pskyline_single_point(expression, better)
            pivots = [pivot]
            before = len(better) + len(worse)
            better = _pscreen_single_point(
                expression, pivot,
                [item for item in better if item is not pivot])
            worse = _pscreen_single_point(expression, pivot, worse)
            pruned = before - 1 - len(better) - len(worse)
            node.action += f"; look-ahead p*={dict(pivot)} pruned {pruned}"
        better_node = rec(better, candidates, equal)
        node.children.append(better_node)
        surviving = pscreen(expression, better_node.result, worse,
                            candidates - {attribute}, equal, graph)
        node.action += (f"; p-screening kept {len(surviving)} of "
                        f"{len(worse)} in W")
        worse_node = rec(surviving, candidates, equal)
        node.children.append(worse_node)
        node.result = pivots + better_node.result + worse_node.result
        return node

    return rec(list(tuples), set(graph.roots), set())


def format_trace(node: TraceNode, labels: Mapping[int, str] | None = None,
                 indent: int = 0) -> str:
    """Render an invocation tree as indented text.

    ``labels`` optionally maps ``id(tuple_dict)`` to display names (the
    paper labels cars ``t1..t4``).
    """

    def name(item: Tuple) -> str:
        if labels and id(item) in labels:
            return labels[id(item)]
        return "{" + ", ".join(f"{k}={v:g}" for k, v in item.items()) + "}"

    pad = "  " * indent
    lines = [
        f"{pad}DCREC  D={{{', '.join(name(t) for t in node.tuples)}}}  "
        f"C={sorted(node.candidates)}  E={sorted(node.equal)}",
        f"{pad}  {node.action}",
    ]
    for child in node.children:
        lines.append(format_trace(child, labels, indent + 1))
    lines.append(
        f"{pad}  returns {{{', '.join(name(t) for t in node.result)}}}"
    )
    return "\n".join(lines)
