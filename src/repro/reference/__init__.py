"""Readable, pseudocode-faithful reference implementations.

Pure-Python, tuple-at-a-time versions of the paper's algorithms, meant
to be read next to the paper and used as an independent cross-check of
the optimised NumPy implementations in :mod:`repro.algorithms`.
"""

from .algorithms import (bnl, dc, extension_key, osdc, pscreen,
                         pskyline_single_point, sfs)
from .model import (Outcome, compare, dominates, indistinguishable,
                    maxima)
from .pgraph import PriorityGraph
from .trace import TraceNode, format_trace, trace_dc

__all__ = [
    "Outcome",
    "compare",
    "dominates",
    "indistinguishable",
    "maxima",
    "PriorityGraph",
    "bnl",
    "sfs",
    "dc",
    "osdc",
    "pscreen",
    "pskyline_single_point",
    "extension_key",
    "trace_dc",
    "format_trace",
    "TraceNode",
]
