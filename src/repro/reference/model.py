"""Reference preference semantics, straight from the definitions.

This package is the *readable* counterpart of the optimised kernels: it
evaluates preferences by structural recursion over the p-expression, on
plain Python tuples, exactly as Section 2.1 defines the operators:

* Pareto accumulation: ``t' ≻_{1⊗2} t  iff  (t' ≻_1 t ∧ t' ⪰_2 t) ∨
  (t' ≻_2 t ∧ t' ⪰_1 t)``;
* prioritized accumulation: ``t' ≻_{1&2} t  iff  t' ≻_1 t ∨
  (t' ≈_1 t ∧ t' ≻_2 t)``.

No p-graphs, no bitmasks, no NumPy.  The test suite cross-checks the
production kernels against this implementation on thousands of random
instances, so the two code paths fail independently.
"""

from __future__ import annotations

import enum
from typing import Mapping, Sequence

from ..core.expressions import Att, Pareto, PExpr, Prioritized

__all__ = ["Outcome", "compare", "dominates", "indistinguishable",
           "maxima"]

Tuple = Mapping[str, float]


class Outcome(enum.Enum):
    """Result of comparing two tuples under a preference."""

    FIRST = ">"          # the first tuple is preferred
    SECOND = "<"         # the second tuple is preferred
    EQUAL = "="          # indistinguishable on every relevant attribute
    INCOMPARABLE = "~"   # distinguishable, neither preferred

    def flipped(self) -> "Outcome":
        if self is Outcome.FIRST:
            return Outcome.SECOND
        if self is Outcome.SECOND:
            return Outcome.FIRST
        return self


def compare(expression: PExpr, first: Tuple, second: Tuple) -> Outcome:
    """Compare two tuples under ``expression`` (smaller values better)."""
    if isinstance(expression, Att):
        left = first[expression.name]
        right = second[expression.name]
        if left < right:
            return Outcome.FIRST
        if right < left:
            return Outcome.SECOND
        return Outcome.EQUAL
    outcomes = [compare(child, first, second)
                for child in expression.children]
    if isinstance(expression, Prioritized):
        # the leftmost child that distinguishes the tuples decides
        for outcome in outcomes:
            if outcome is not Outcome.EQUAL:
                return outcome
        return Outcome.EQUAL
    assert isinstance(expression, Pareto)
    if Outcome.INCOMPARABLE in outcomes:
        return Outcome.INCOMPARABLE
    wins = Outcome.FIRST in outcomes
    losses = Outcome.SECOND in outcomes
    if wins and losses:
        return Outcome.INCOMPARABLE
    if wins:
        return Outcome.FIRST
    if losses:
        return Outcome.SECOND
    return Outcome.EQUAL


def dominates(expression: PExpr, first: Tuple, second: Tuple) -> bool:
    """``first ≻_pi second``."""
    return compare(expression, first, second) is Outcome.FIRST


def indistinguishable(expression: PExpr, first: Tuple,
                      second: Tuple) -> bool:
    """``first ≈_pi second``."""
    return compare(expression, first, second) is Outcome.EQUAL


def maxima(expression: PExpr, tuples: Sequence[Tuple]) -> list[int]:
    """Indices of the maximal tuples (the p-skyline), by double loop."""
    result = []
    for i, candidate in enumerate(tuples):
        if not any(dominates(expression, other, candidate)
                   for j, other in enumerate(tuples) if j != i):
            result.append(i)
    return result
