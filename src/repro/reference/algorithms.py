"""Reference algorithms: the paper's pseudocode, line by line.

Tuple-at-a-time implementations over lists of ``{attribute: value}``
dicts, mirroring Algorithms DC, OSDC and PSCREEN as printed in Section 3
and Section 4, plus the BNL and SFS baselines.  They exist to be *read*
next to the paper and to cross-check the optimised NumPy implementations;
they are not meant to be fast.

Two deliberate deviations from the printed pseudocode, both noted inline:

* ``split_by_attribute`` nudges the median threshold up one distinct
  value when duplicates make ``B`` empty (the paper implicitly assumes
  the median splits the data);
* PSCREEN's "apply Lemma 4" base case is realised as an exact quadratic
  screen over full tuples -- the production implementation in
  :mod:`repro.algorithms.lowdim` contains the five specialised
  procedures; here clarity wins.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.expressions import PExpr
from .model import Outcome, compare, dominates
from .pgraph import PriorityGraph

__all__ = ["bnl", "sfs", "dc", "osdc", "pscreen",
           "pskyline_single_point", "extension_key"]

Tuple = Mapping[str, float]


# ---------------------------------------------------------------------------
# scan-based baselines
# ---------------------------------------------------------------------------

def bnl(expression: PExpr, tuples: Sequence[Tuple]) -> list[Tuple]:
    """Single-pass block-nested-loop with an unbounded window."""
    window: list[Tuple] = []
    for candidate in tuples:
        if any(dominates(expression, kept, candidate) for kept in window):
            continue
        window = [kept for kept in window
                  if not dominates(expression, candidate, kept)]
        window.append(candidate)
    return window


def extension_key(graph: PriorityGraph, item: Tuple) -> tuple[float, ...]:
    """The ``≻ext`` key of Section 6: per-depth attribute sums."""
    levels = max(graph.depth.values(), default=0) + 1
    sums = [0.0] * levels
    for name in graph.attributes:
        sums[graph.depth[name]] += item[name]
    return tuple(sums)


def sfs(expression: PExpr, tuples: Sequence[Tuple]) -> list[Tuple]:
    """Sort-filter-skyline: presort by ``≻ext`` then filter."""
    graph = PriorityGraph(expression)
    ordered = sorted(tuples, key=lambda item: extension_key(graph, item))
    window: list[Tuple] = []
    for candidate in ordered:
        if not any(dominates(expression, kept, candidate)
                   for kept in window):
            window.append(candidate)
    return window


# ---------------------------------------------------------------------------
# shared divide-and-conquer machinery
# ---------------------------------------------------------------------------

def split_by_attribute(tuples: list[Tuple], attribute: str):
    """SplitByAttribute(D, A): median split, duplicate-safe.

    Returns ``(B, W)`` with every ``B`` tuple strictly better than every
    ``W`` tuple on ``attribute``, both non-empty whenever the column is
    not constant.
    """
    values = sorted(item[attribute] for item in tuples)
    median = values[len(values) // 2]
    if median == values[0]:
        median = next(v for v in values if v > values[0])
    better = [item for item in tuples if item[attribute] < median]
    worse = [item for item in tuples if item[attribute] >= median]
    return better, worse


def _promote_constant(graph: PriorityGraph, attribute: str,
                      candidates: set[str], equal: set[str]):
    """Lines 7-9 of DC / lines 14-15 of PSCREEN: move ``attribute`` into
    ``E`` and pull in successors whose predecessors are all equal."""
    new_equal = equal | {attribute}
    new_candidates = (candidates - {attribute}) | {
        successor for successor in graph.succ[attribute]
        if graph.pre[successor] <= new_equal
    }
    return new_candidates, new_equal


def pskyline_single_point(expression: PExpr,
                          tuples: Sequence[Tuple]) -> Tuple:
    """PSKYLINESP (Lemma 1): the ``≻ext`` minimum is ``≻pi``-maximal."""
    graph = PriorityGraph(expression)
    return min(tuples, key=lambda item: extension_key(graph, item))


def _pscreen_single_point(expression: PExpr, point: Tuple,
                          tuples: Sequence[Tuple]) -> list[Tuple]:
    """PSCREENSP (Lemma 2): one dominance test per tuple."""
    return [item for item in tuples
            if not dominates(expression, point, item)]


# ---------------------------------------------------------------------------
# Algorithm PSCREEN (Section 4)
# ---------------------------------------------------------------------------

def pscreen(expression: PExpr, blockers: Sequence[Tuple],
            tuples: Sequence[Tuple],
            candidates: set[str] | None = None,
            equal: set[str] | None = None,
            graph: PriorityGraph | None = None) -> list[Tuple]:
    """All tuples of ``tuples`` not dominated by any of ``blockers``.

    Precondition: ``tuples ⋡pi blockers``.
    """
    if graph is None:
        graph = PriorityGraph(expression)
    if candidates is None:
        candidates = set(graph.roots)
    if equal is None:
        equal = set()
    blockers = list(blockers)
    tuples = list(tuples)
    # base cases (lines 4-8); an empty B screens nothing, checked first
    if not tuples:
        return []
    if not blockers:
        return tuples
    if not candidates:
        return []
    if len(blockers) == 1:
        return _pscreen_single_point(expression, blockers[0], tuples)
    relevant = candidates | graph.desc_of(candidates)
    if len(relevant) <= 3:
        # "apply Lemma 4": exact quadratic screen on full tuples (the
        # optimised implementation uses the five specialised procedures)
        return [item for item in tuples
                if not any(dominates(expression, blocker, item)
                           for blocker in blockers)]
    # select an attribute A from the candidates set (line 9)
    attribute = next(
        (a for a in sorted(candidates)
         if len({item[a] for item in blockers}) > 1),
        None,
    )
    if attribute is None:
        # lines 10-17: all of B agrees on every candidate; handle one
        attribute = sorted(candidates)[0]
        value = blockers[0][attribute]
        w_better = [item for item in tuples if item[attribute] < value]
        w_equal = [item for item in tuples if item[attribute] == value]
        w_worse = [item for item in tuples if item[attribute] > value]
        surviving_worse = pscreen(expression, blockers, w_worse,
                                  candidates - {attribute}, equal, graph)
        new_candidates, new_equal = _promote_constant(
            graph, attribute, candidates, equal)
        surviving_equal = pscreen(expression, blockers, w_equal,
                                  new_candidates, new_equal, graph)
        return w_better + surviving_worse + surviving_equal
    # lines 19-24: split B at the median and recurse three ways
    b_better, b_worse = split_by_attribute(blockers, attribute)
    threshold = min(item[attribute] for item in b_worse)
    w_better = [item for item in tuples if item[attribute] < threshold]
    w_rest = [item for item in tuples if item[attribute] >= threshold]
    surviving_better = pscreen(expression, b_better, w_better,
                               candidates, equal, graph)
    surviving_rest = pscreen(expression, b_worse, w_rest,
                             candidates, equal, graph)
    surviving_rest = pscreen(expression, b_better, surviving_rest,
                             candidates - {attribute}, equal, graph)
    return surviving_better + surviving_rest


# ---------------------------------------------------------------------------
# Algorithms DC and OSDC (Section 3)
# ---------------------------------------------------------------------------

def _dc_rec(expression: PExpr, graph: PriorityGraph, tuples: list[Tuple],
            candidates: set[str], equal: set[str],
            lookahead: bool) -> list[Tuple]:
    # line 4: base case
    if not candidates or len(tuples) <= 1:
        return tuples
    # lines 5-10: pick A; promote it into E if constant over D
    attribute = next(
        (a for a in sorted(candidates)
         if len({item[a] for item in tuples}) > 1),
        None,
    )
    if attribute is None:
        attribute = sorted(candidates)[0]
        new_candidates, new_equal = _promote_constant(
            graph, attribute, candidates, equal)
        if not new_candidates:
            return tuples
        return _dc_rec(expression, graph, tuples, new_candidates,
                       new_equal, lookahead)
    # line 12: split at the median of A
    better, worse = split_by_attribute(tuples, attribute)
    pivots: list[Tuple] = []
    if lookahead:
        # OSDC lines 13-15: extract one p-skyline point and prune with it
        pivot = pskyline_single_point(expression, better)
        pivots = [pivot]
        better = _pscreen_single_point(
            expression, pivot,
            [item for item in better if item is not pivot])
        worse = _pscreen_single_point(expression, pivot, worse)
    # lines 13-16 (DC) / 16-19 (OSDC)
    better_sky = _dc_rec(expression, graph, better, candidates, equal,
                         lookahead)
    surviving = pscreen(expression, better_sky, worse,
                        candidates - {attribute}, equal, graph)
    worse_sky = _dc_rec(expression, graph, surviving, candidates, equal,
                        lookahead)
    return pivots + better_sky + worse_sky


def dc(expression: PExpr, tuples: Sequence[Tuple]) -> list[Tuple]:
    """Algorithm DC of Section 3."""
    graph = PriorityGraph(expression)
    return _dc_rec(expression, graph, list(tuples), set(graph.roots),
                   set(), lookahead=False)


def osdc(expression: PExpr, tuples: Sequence[Tuple]) -> list[Tuple]:
    """Algorithm OSDC of Section 3 (DC plus the Lemma 1/2 look-ahead)."""
    graph = PriorityGraph(expression)
    return _dc_rec(expression, graph, list(tuples), set(graph.roots),
                   set(), lookahead=True)
