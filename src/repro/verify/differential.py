"""Differential execution: every algorithm, one case, one answer.

:func:`run_case` runs a set of algorithms on the same ``(ranks, graph)``
pair and reports every way they disagree:

* a different maximal set than the baseline (``result-set``);
* a progressive algorithm whose emission stream is not the result set
  (``emission-set``), is not in best-first ``≻ext`` order
  (``emission-order``), or whose partially-consumed stream is not a
  prefix of the fully-consumed one (``emission-prefix``);
* work counters violating the declared invariants (``stats-invariant``,
  see :mod:`repro.verify.invariants`);
* the baseline itself failing the independent soundness/completeness
  oracle (``oracle``, :func:`repro.core.checks.verify_pskyline`);
* any crash (``error``).

Algorithms are passed as a ``{name: callable}`` mapping, so tests can
inject deliberately broken mutants without touching the global registry.
"""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..algorithms.base import REGISTRY, REGISTRY_INFO, Stats
from ..core.checks import VerificationError, verify_pskyline
from ..core.pgraph import PGraph
from ..engine.compiled import compile_preference
from ..engine.context import ExecutionContext
from .invariants import check_stats

__all__ = ["Mismatch", "run_case", "BASELINE"]

#: The quadratic reference implementation every other algorithm is
#: compared against.
BASELINE = "naive"


@dataclass(frozen=True)
class Mismatch:
    """One observed disagreement on one case."""

    kind: str
    algorithm: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.kind}] {self.algorithm}: {self.detail}"


def _describe(indices: np.ndarray | set) -> str:
    values = sorted(int(i) for i in
                    (indices.tolist() if isinstance(indices, np.ndarray)
                     else indices))
    if len(values) > 12:
        return f"{values[:12]}... ({len(values)} total)"
    return str(values)


def _check_progressive(name: str, info, ranks: np.ndarray, graph: PGraph,
                       expected: set, timeout: float | None
                       ) -> list[Mismatch]:
    mismatches: list[Mismatch] = []
    context = _make_context(timeout)
    emitted = list(info.iterator(ranks, graph, context=context))
    if set(emitted) != expected:
        mismatches.append(Mismatch(
            "emission-set", name,
            f"iterator emitted {_describe(set(emitted))}, result is "
            f"{_describe(expected)}"))
    if len(emitted) != len(set(emitted)):
        mismatches.append(Mismatch(
            "emission-set", name, "iterator emitted duplicate rows"))
    extension = compile_preference(graph).extension
    if emitted:
        keys = extension.keys(ranks[np.asarray(emitted, dtype=np.intp)])
        for position in range(1, len(emitted)):
            if tuple(keys[position]) < tuple(keys[position - 1]):
                mismatches.append(Mismatch(
                    "emission-order", name,
                    f"row {emitted[position]} emitted after "
                    f"{emitted[position - 1]} but strictly precedes it "
                    "in the ≻ext order"))
                break
    # consuming only half must observe a prefix of the full stream
    half = len(emitted) // 2
    if half:
        prefix = list(itertools.islice(
            info.iterator(ranks, graph, context=_make_context(timeout)),
            half))
        if prefix != emitted[:half]:
            mismatches.append(Mismatch(
                "emission-prefix", name,
                f"first {half} results of a fresh iterator differ from "
                "the prefix of the full emission"))
    return mismatches


def _make_context(timeout: float | None) -> ExecutionContext:
    if timeout is None:
        return ExecutionContext()
    return ExecutionContext.create(timeout=timeout)


def run_case(ranks: np.ndarray, graph: PGraph, *,
             algorithms: Mapping[str, Callable] | None = None,
             baseline: str = BASELINE,
             options: Mapping[str, dict] | None = None,
             check_oracle: bool = True,
             check_invariants: bool = True,
             check_progressive: bool = True,
             timeout: float | None = None) -> list[Mismatch]:
    """Differentially test ``algorithms`` on one case; return mismatches.

    ``algorithms`` defaults to the full registry.  ``options`` maps an
    algorithm name to extra keyword options for its run.  ``timeout``
    bounds each individual algorithm run in seconds.
    """
    if algorithms is None:
        algorithms = dict(REGISTRY)
    options = options or {}
    mismatches: list[Mismatch] = []
    if baseline not in algorithms:
        raise KeyError(f"baseline {baseline!r} not among the algorithms")

    expected_indices = algorithms[baseline](
        ranks, graph, context=_make_context(timeout),
        **options.get(baseline, {}))
    expected = set(int(i) for i in expected_indices)
    if check_oracle:
        try:
            verify_pskyline(ranks, graph,
                            np.sort(np.asarray(expected_indices,
                                               dtype=np.intp)))
        except VerificationError as error:
            mismatches.append(Mismatch("oracle", baseline, str(error)))

    n = ranks.shape[0]
    for name, function in algorithms.items():
        if name == baseline:
            continue
        stats = Stats()
        opts = dict(options.get(name, {}))
        try:
            result = function(ranks, graph, stats=stats,
                              context=_make_context(timeout), **opts)
        except Exception as error:
            mismatches.append(Mismatch(
                "error", name,
                f"{type(error).__name__}: {error}\n"
                f"{traceback.format_exc(limit=3)}"))
            continue
        got = set(int(i) for i in result)
        if got != expected:
            missing = expected - got
            extra = got - expected
            mismatches.append(Mismatch(
                "result-set", name,
                f"missing {_describe(missing)}, extra {_describe(extra)} "
                f"(baseline {baseline})"))
        info = REGISTRY_INFO.get(name)
        if info is not None:
            if check_invariants:
                for violation in check_stats(info, stats, n,
                                             len(expected), opts):
                    mismatches.append(Mismatch(
                        "stats-invariant", name, violation))
            if check_progressive and info.progressive:
                mismatches.extend(_check_progressive(
                    name, info, ranks, graph, expected, timeout))
    return mismatches
