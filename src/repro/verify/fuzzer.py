"""Seeded fuzzing with deterministic shrinking.

Each case is derived from ``(seed, case_index)`` alone, so any failure
can be regenerated independently of how many cases ran before it.  A
case samples a dimension count, an exactly-uniform random p-graph
(:class:`~repro.sampling.exact_counting.ExactUniformSampler`), a dataset
shape (:mod:`repro.verify.datasets`) and a size, then runs the full
differential check plus one rotating metamorphic transform.

When a check fails the input is *shrunk* while the failure persists --
rows first (chunked removal), then columns (restricting the p-graph),
then values (integer rounding, then rank-compression to a tiny domain)
-- and the minimized case is written to the corpus with a standalone
reproduction script (:mod:`repro.verify.corpus`).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..algorithms.base import REGISTRY
from ..core.pgraph import PGraph
from ..sampling.exact_counting import ExactUniformSampler
from .corpus import save_case, write_repro_script
from .datasets import random_dataset
from .differential import BASELINE, Mismatch, run_case
from .metamorphic import TRANSFORMS, run_transform

__all__ = ["Fuzzer", "FuzzReport", "FuzzFailure", "case_rng",
           "shrink_case"]


def case_rng(seed: int, case_index: int) -> random.Random:
    """The deterministic per-case generator: independent of ordering."""
    return random.Random(f"repro-verify:{seed}:{case_index}")


@dataclass(frozen=True)
class FuzzFailure:
    """One (shrunk) failing case."""

    case_index: int
    algorithm: str
    kind: str
    detail: str
    shape: str
    ranks: np.ndarray
    graph: PGraph
    transform: str | None = None
    corpus_path: str | None = None
    script_path: str | None = None


@dataclass
class FuzzReport:
    seed: int
    cases: int = 0
    algorithms: tuple[str, ...] = ()
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _predicate_for(mismatch: Mismatch, baseline: str,
                   algorithms: Mapping[str, Callable],
                   transform_rng_factory: Callable[[], random.Random],
                   transform: str | None
                   ) -> Callable[[np.ndarray, PGraph], bool]:
    """Does a reduced case still provoke *some* failure of the same
    algorithm?  (Any kind counts: shrinking may morph one symptom into
    another while chasing the same bug.)"""
    pool = {name: algorithms[name]
            for name in {mismatch.algorithm, baseline}
            if name in algorithms}

    def predicate(ranks: np.ndarray, graph: PGraph) -> bool:
        if ranks.shape[0] == 0 or graph.d != ranks.shape[1]:
            return False
        try:
            if transform is None:
                found = run_case(ranks, graph, algorithms=pool,
                                 baseline=baseline)
            else:
                found = run_transform(
                    TRANSFORMS[transform], ranks, graph,
                    pool[mismatch.algorithm], transform_rng_factory(),
                    algorithm=mismatch.algorithm)
        except Exception:
            return False
        return any(m.algorithm == mismatch.algorithm for m in found)

    return predicate


def _shrink_rows(ranks: np.ndarray, graph: PGraph,
                 predicate) -> np.ndarray:
    chunk = max(1, ranks.shape[0] // 2)
    while chunk >= 1:
        start = 0
        while start < ranks.shape[0] and ranks.shape[0] > 1:
            candidate = np.delete(ranks, slice(start, start + chunk),
                                  axis=0)
            if candidate.shape[0] and predicate(candidate, graph):
                ranks = candidate
            else:
                start += chunk
        chunk //= 2
    return ranks


def _shrink_columns(ranks: np.ndarray,
                    graph: PGraph, predicate) -> tuple[np.ndarray, PGraph]:
    column = 0
    while graph.d > 1 and column < graph.d:
        mask = ((1 << graph.d) - 1) & ~(1 << column)
        candidate_graph = graph.restrict(mask)
        candidate_ranks = np.ascontiguousarray(
            np.delete(ranks, column, axis=1))
        if predicate(candidate_ranks, candidate_graph):
            ranks, graph = candidate_ranks, candidate_graph
        else:
            column += 1
    return ranks, graph


def _shrink_values(ranks: np.ndarray, graph: PGraph,
                   predicate) -> np.ndarray:
    rounded = np.round(ranks)
    if not np.array_equal(rounded, ranks) and predicate(rounded, graph):
        ranks = rounded
    # rank-compress every column to 0..k-1 (ties preserved exactly)
    compressed = np.empty_like(ranks)
    for column in range(ranks.shape[1]):
        _, inverse = np.unique(ranks[:, column], return_inverse=True)
        compressed[:, column] = inverse.astype(np.float64)
    if not np.array_equal(compressed, ranks) and \
            predicate(compressed, graph):
        ranks = compressed
    return ranks


def shrink_case(ranks: np.ndarray, graph: PGraph,
                predicate) -> tuple[np.ndarray, PGraph]:
    """Greedily minimize ``(ranks, graph)`` while ``predicate`` holds."""
    if not predicate(ranks, graph):
        return ranks, graph
    ranks = _shrink_rows(ranks, graph, predicate)
    ranks, graph = _shrink_columns(ranks, graph, predicate)
    ranks = _shrink_rows(ranks, graph, predicate)
    ranks = _shrink_values(ranks, graph, predicate)
    return ranks, graph


class Fuzzer:
    """Seeded differential + metamorphic fuzzing over the registry."""

    def __init__(self, seed: int = 0, *,
                 algorithms: Mapping[str, Callable] | None = None,
                 baseline: str = BASELINE,
                 d_range: tuple[int, int] = (1, 6),
                 n_range: tuple[int, int] = (1, 120),
                 metamorphic: bool = True,
                 timeout: float | None = None,
                 artifacts_dir: str | None = None):
        self.seed = seed
        self.algorithms = dict(algorithms if algorithms is not None
                               else REGISTRY)
        self.baseline = baseline
        self.d_range = d_range
        self.n_range = n_range
        self.metamorphic = metamorphic
        self.timeout = timeout
        self.artifacts_dir = artifacts_dir
        self._samplers: dict[int, ExactUniformSampler] = {}

    # -- case generation -----------------------------------------------------
    def _sampler(self, d: int) -> ExactUniformSampler:
        if d not in self._samplers:
            self._samplers[d] = ExactUniformSampler(
                [f"A{i}" for i in range(d)])
        return self._samplers[d]

    def generate_case(self, case_index: int
                      ) -> tuple[np.ndarray, PGraph, str]:
        """The deterministic case for ``(self.seed, case_index)``."""
        rng = case_rng(self.seed, case_index)
        nrng = np.random.default_rng(rng.getrandbits(64))
        d = rng.randint(*self.d_range)
        graph = self._sampler(d).sample_graph(rng)
        n = rng.randint(*self.n_range)
        shape, ranks = random_dataset(rng, nrng, n, d)
        return ranks, graph, shape

    # -- running -------------------------------------------------------------
    def run(self, cases: int,
            progress: Callable[[str], None] | None = None) -> FuzzReport:
        report = FuzzReport(seed=self.seed,
                            algorithms=tuple(sorted(self.algorithms)))
        transform_names = sorted(TRANSFORMS)
        algorithm_names = sorted(set(self.algorithms) - {self.baseline})
        for case_index in range(cases):
            ranks, graph, shape = self.generate_case(case_index)
            report.cases += 1
            mismatches = [
                (m, None) for m in run_case(
                    ranks, graph, algorithms=self.algorithms,
                    baseline=self.baseline, timeout=self.timeout)
            ]
            if self.metamorphic and algorithm_names:
                transform = transform_names[case_index
                                            % len(transform_names)]
                target = algorithm_names[case_index
                                         % len(algorithm_names)]
                rng = case_rng(self.seed, case_index)
                mismatches.extend(
                    (m, transform) for m in run_transform(
                        TRANSFORMS[transform], ranks, graph,
                        self.algorithms[target], rng, algorithm=target))
            for mismatch, transform in mismatches:
                report.failures.append(self._minimize(
                    case_index, mismatch, transform, ranks, graph, shape))
            if progress is not None and (case_index + 1) % 10 == 0:
                progress(f"case {case_index + 1}/{cases}: "
                         f"{len(report.failures)} failure(s)")
        return report

    # -- failure handling ------------------------------------------------------
    def _minimize(self, case_index: int, mismatch: Mismatch,
                  transform: str | None, ranks: np.ndarray,
                  graph: PGraph, shape: str) -> FuzzFailure:
        predicate = _predicate_for(
            mismatch, self.baseline, self.algorithms,
            lambda: case_rng(self.seed, case_index), transform)
        small_ranks, small_graph = shrink_case(ranks, graph, predicate)
        failure = FuzzFailure(
            case_index=case_index, algorithm=mismatch.algorithm,
            kind=mismatch.kind, detail=mismatch.detail, shape=shape,
            ranks=small_ranks, graph=small_graph, transform=transform)
        if self.artifacts_dir is not None:
            failure = self._persist(failure)
        return failure

    def _persist(self, failure: FuzzFailure) -> FuzzFailure:
        os.makedirs(self.artifacts_dir, exist_ok=True)
        name = (f"fail-seed{self.seed}-case{failure.case_index}"
                f"-{failure.algorithm}-{failure.kind}.json")
        path = os.path.join(self.artifacts_dir, name)
        save_case(path, ranks=failure.ranks, graph=failure.graph,
                  algorithm=failure.algorithm, kind=failure.kind,
                  detail=failure.detail, baseline=self.baseline,
                  transform=failure.transform, seed=self.seed,
                  case_index=failure.case_index, shape=failure.shape)
        script = write_repro_script(path)
        return FuzzFailure(
            case_index=failure.case_index, algorithm=failure.algorithm,
            kind=failure.kind, detail=failure.detail, shape=failure.shape,
            ranks=failure.ranks, graph=failure.graph,
            transform=failure.transform, corpus_path=path,
            script_path=script)
