"""Differential & metamorphic correctness harness.

The verification subsystem cross-checks every registered p-skyline
algorithm three independent ways:

* **differential** (:mod:`repro.verify.differential`) -- all algorithms
  on the same sampled (p-expression, dataset) pair must return the same
  maximal set, progressive algorithms must emit it best-first, and the
  work counters must satisfy the declared invariants
  (:mod:`repro.verify.invariants`);
* **metamorphic** (:mod:`repro.verify.metamorphic`) --
  domination-preserving input transforms with exact oracles: shuffling,
  duplication, monotone rescaling, p-graph isomorphism, appending
  dominated tuples;
* **fuzzing** (:mod:`repro.verify.fuzzer`) -- a seeded generator over
  adversarial dataset shapes (:mod:`repro.verify.datasets`) and
  exactly-uniform random p-graphs, with deterministic shrinking and a
  replayable regression corpus (:mod:`repro.verify.corpus`).

Run it from the command line::

    python -m repro.verify --seed 0 --cases 100
"""

from .corpus import load_case, replay_case, replay_corpus, save_case
from .datasets import (DATASET_SHAPES, correlated_gaussian, generate,
                       random_dataset)
from .differential import Mismatch, run_case
from .fuzzer import FuzzReport, Fuzzer
from .invariants import check_stats
from .metamorphic import TRANSFORMS, MetamorphicTransform, run_transform

__all__ = [
    "DATASET_SHAPES",
    "correlated_gaussian",
    "generate",
    "random_dataset",
    "Mismatch",
    "run_case",
    "check_stats",
    "TRANSFORMS",
    "MetamorphicTransform",
    "run_transform",
    "Fuzzer",
    "FuzzReport",
    "save_case",
    "load_case",
    "replay_case",
    "replay_corpus",
]
