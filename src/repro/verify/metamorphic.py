"""Metamorphic testing: domination-preserving transforms with oracles.

Each transform rewrites a case ``(ranks, graph)`` into a new case whose
p-skyline is *exactly predictable* from the original answer:

``shuffle``
    Permuting rows permutes the result the same way (``M_pi`` is
    order-insensitive).
``duplicate``
    Appending exact copies of existing rows adds exactly the copies of
    maximal rows to the result (equal tuples never dominate each other,
    dominance being strict).
``monotone-rescale``
    A strictly increasing affine map per column (positive scale plus
    offset) preserves every rank comparison, hence the result.
``relabel``
    A p-graph isomorphism -- permuting columns together with the
    priority graph's nodes -- leaves the result untouched.
``append-dominated``
    Appending tuples strictly worse than an existing tuple on every
    attribute adds nothing: the new tuples are dominated, and by
    transitivity of ``≻`` anything they dominate was already dominated.
``kernel-native`` / ``kernel-bitmask`` / ``kernel-gemm`` / ``kernel-scalar``
    Identity transforms that re-run the algorithm with the named
    dominance kernel forced (:func:`repro.core.dominance.forced_kernel`):
    the four kernel families implement the same Proposition 1 test, so
    the result must be identical.  Registering the kernel choice as a
    metamorphic axis makes the differential fuzzer cross-check kernels
    on every rotating case with no algorithm-specific plumbing (the
    ``native`` axis degrades to the bitmask fallback on hosts without
    numba, which is itself a path worth covering).
``kernel-threads``
    Identity transform that re-runs the algorithm with a screen thread
    budget of 2 forced (:func:`repro.engine.threads.thread_budget`):
    tiled screening must reproduce the serial result bit for bit, so
    the fuzzer cross-checks the intra-worker thread layer on every
    rotating case.
``pool-chunked``
    Identity transform executed on the persistent worker pool: the
    case is partitioned into chunks, evaluated by worker processes
    against shared memory and tree-merged
    (:func:`repro.algorithms.parallel.parallel_osdc`).  By the
    partition identity ``M_pi(D) = M_pi(union of chunk skylines)`` the
    result must equal the algorithm-under-test's answer, so the fuzzer
    cross-checks the whole pool execution machinery -- shared-memory
    descriptors, chunk bounds, pooled merges -- on every rotating case.
``sharded-2`` / ``sharded-3``
    Identity transforms executed by hash-partitioning the rows ``k``
    ways and merging the per-shard answers
    (:func:`repro.core.sharding.sharded_pskyline` running the
    algorithm under test per shard and on the union).  Again by the
    partition identity the result must be unchanged -- the
    sharded-vs-monolithic equivalence axis, cross-checking the shard
    router and partition/merge plumbing on every rotating case.
``snapshot-isolation``
    Identity transform executed against a pinned MVCC snapshot of a
    :class:`~repro.core.sharding.ShardedRelation` built from the case,
    *after* dominating inserts and random deletes have landed at later
    versions.  Snapshot isolation demands the snapshot's answer equal
    the original one -- a differential check that writes at version
    ``v + 1`` never leak into a reader pinned at ``v``.

:func:`run_transform` checks the relation for one algorithm on one case
and reports violations as :class:`~repro.verify.differential.Mismatch`
records.  A correct algorithm passes every transform on every input; the
mutation smoke-checks in the test suite show each transform catches a
characteristic implementation bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.dominance import forced_kernel
from ..core.pgraph import PGraph
from .differential import Mismatch, _describe

__all__ = ["MetamorphicTransform", "TRANSFORMS", "run_transform",
           "permute_graph"]

#: apply(ranks, graph, rng) -> (new_ranks, new_graph, oracle) where
#: oracle maps the original result set to the expected transformed one.
Oracle = Callable[[set], set]


@dataclass(frozen=True)
class MetamorphicTransform:
    name: str
    description: str
    apply: Callable[[np.ndarray, PGraph, random.Random],
                    tuple[np.ndarray, PGraph, Oracle]]
    #: When set, the transformed run executes under
    #: :func:`~repro.core.dominance.forced_kernel` with this kernel.
    kernel: str | None = None
    #: When set, the transformed run executes on the persistent worker
    #: pool with this many partitions instead of calling the algorithm
    #: under test directly.
    pool_chunks: int | None = None
    #: When set, the transformed run executes under
    #: :func:`~repro.engine.threads.thread_budget` with this screen
    #: thread budget forced (an explicit budget engages the tiled
    #: screening path regardless of input size).
    threads: int | None = None
    #: When set, the transformed run is delegated entirely to this
    #: callable -- ``executor(new_ranks, new_graph, function, rng)``
    #: returns the result indices (the sharded and snapshot axes).
    executor: Callable | None = None


def permute_graph(graph: PGraph, sigma: list[int]) -> PGraph:
    """The isomorphic p-graph with node ``sigma[j]`` moved to slot ``j``."""
    d = graph.d
    if sorted(sigma) != list(range(d)):
        raise ValueError("sigma must be a permutation of the columns")
    inverse = [0] * d
    for new, old in enumerate(sigma):
        inverse[old] = new
    names = tuple(graph.names[old] for old in sigma)
    closure = []
    for old in sigma:
        mask = graph.closure[old]
        new_mask = 0
        for old_descendant in range(d):
            if mask >> old_descendant & 1:
                new_mask |= 1 << inverse[old_descendant]
        closure.append(new_mask)
    orders = None if graph.orders is None else \
        [graph.orders[old] for old in sigma]
    return PGraph(names, tuple(closure), orders)


def _shuffle(ranks: np.ndarray, graph: PGraph, rng: random.Random):
    n = ranks.shape[0]
    perm = list(range(n))
    rng.shuffle(perm)
    perm_array = np.asarray(perm, dtype=np.intp)
    new_ranks = ranks[perm_array]

    def oracle(original: set) -> set:
        return {new for new, old in enumerate(perm) if old in original}

    return new_ranks, graph, oracle


def _duplicate(ranks: np.ndarray, graph: PGraph, rng: random.Random):
    n = ranks.shape[0]
    count = rng.randint(1, max(1, n // 2)) if n else 0
    chosen = [rng.randrange(n) for _ in range(count)]
    new_ranks = np.vstack([ranks, ranks[chosen]]) if chosen \
        else ranks.copy()

    def oracle(original: set) -> set:
        copies = {n + j for j, row in enumerate(chosen) if row in original}
        return original | copies

    return new_ranks, graph, oracle


def _monotone_rescale(ranks: np.ndarray, graph: PGraph,
                      rng: random.Random):
    d = ranks.shape[1]
    scales = np.array([rng.choice([0.01, 0.5, 3.0, 1000.0])
                       for _ in range(d)])
    offsets = np.array([rng.uniform(-5.0, 5.0) for _ in range(d)])
    new_ranks = ranks * scales + offsets
    return new_ranks, graph, lambda original: set(original)


def _relabel(ranks: np.ndarray, graph: PGraph, rng: random.Random):
    d = ranks.shape[1]
    sigma = list(range(d))
    rng.shuffle(sigma)
    new_ranks = np.ascontiguousarray(ranks[:, sigma])
    return new_ranks, permute_graph(graph, sigma), \
        lambda original: set(original)


def _append_dominated(ranks: np.ndarray, graph: PGraph,
                      rng: random.Random):
    n, d = ranks.shape
    count = rng.randint(1, 5) if n else 0
    appended = []
    for _ in range(count):
        anchor = ranks[rng.randrange(n)]
        worse = anchor + np.array([rng.uniform(0.5, 2.0)
                                   for _ in range(d)])
        appended.append(worse)
    new_ranks = np.vstack([ranks, np.array(appended)]) if appended \
        else ranks.copy()
    return new_ranks, graph, lambda original: set(original)


def _identity(ranks: np.ndarray, graph: PGraph, rng: random.Random):
    return ranks, graph, lambda original: set(original)


def _kernel_transform(kernel: str) -> MetamorphicTransform:
    return MetamorphicTransform(
        f"kernel-{kernel}",
        f"re-run with the {kernel} dominance kernel forced; the result "
        "is unchanged", _identity, kernel=kernel)


def _sharded_executor(shards: int) -> Callable:
    def execute(ranks: np.ndarray, graph: PGraph, function,
                rng: random.Random):
        from ..core.sharding import sharded_pskyline

        return sharded_pskyline(ranks, graph, shards=shards,
                                function=function)
    return execute


def _sharded_transform(shards: int) -> MetamorphicTransform:
    return MetamorphicTransform(
        f"sharded-{shards}",
        f"hash-partition the rows {shards} ways, evaluate per shard and "
        "merge; the result is unchanged (partition identity)",
        _identity, executor=_sharded_executor(shards))


def _snapshot_isolation_executor(ranks: np.ndarray, graph: PGraph,
                                 function, rng: random.Random):
    """Pin a snapshot, land writes at later versions, answer from the
    snapshot -- it must still see the original case."""
    from ..core.sharding import ShardedRelation

    relation = ShardedRelation.from_array(ranks, names=graph.names,
                                          shards=2)
    snapshot = relation.snapshot()
    try:
        pinned = snapshot.version
        n, d = ranks.shape
        for _ in range(rng.randint(1, 4)):
            if n:
                anchor = ranks[rng.randrange(n)]
                better = anchor - np.array(
                    [rng.uniform(0.5, 2.0) for _ in range(d)])
            else:
                better = np.zeros(d)
            relation.insert_ranks(better)
        if n:
            for gid in rng.sample(range(n), min(n, rng.randint(1, 3))):
                relation.delete(gid)
        if relation.version <= pinned:
            raise AssertionError(
                "writes did not advance the relation version")
        # global ids of the bulk-built rows are the original row order,
        # so snapshot positions map straight back to case indices
        local = np.asarray(function(snapshot.relation.ranks, graph),
                           dtype=np.intp)
        return snapshot.global_ids[local]
    finally:
        snapshot.close()


def _fused_batch_executor(ranks: np.ndarray, graph: PGraph,
                          function, rng: random.Random):
    """Answer the case from inside a fused correlated batch.

    The case graph is batched with a duplicate of itself, the empty
    graph (Pareto -- contained in every p-graph) and the full priority
    chain over the same attributes, then the whole batch runs through
    :class:`~repro.core.fusion.FusionPlan`: one shared-base evaluation
    plus packed-mask screening must reproduce exactly what the
    algorithm under test answers for the case graph alone (fused ==
    unfused).
    """
    from ..core.fusion import FusionPlan

    d = graph.d
    if d == 0:
        return function(ranks, graph)
    empty = PGraph(graph.names, (0,) * d, graph.orders)
    chain_closure = tuple((((1 << d) - 1) >> (i + 1)) << (i + 1)
                          for i in range(d))
    chain = PGraph(graph.names, chain_closure, graph.orders)
    key = tuple(range(d))
    plan = FusionPlan.build([(graph, key), (empty, key), (chain, key),
                             (graph, key)])

    def evaluate(g: PGraph, k: tuple):
        return function(ranks, g)

    def candidates(indices: np.ndarray, k: tuple):
        return ranks[indices]

    results = plan.execute(evaluate=evaluate, candidates=candidates)
    if not np.array_equal(np.asarray(results[0]),
                          np.asarray(results[3])):
        raise AssertionError(
            "duplicate spellings of one preference diverged in the "
            "fused batch")
    return results[0]


TRANSFORMS: dict[str, MetamorphicTransform] = {
    transform.name: transform for transform in (
        MetamorphicTransform(
            "shuffle", "permute the rows; the result permutes alike",
            _shuffle),
        MetamorphicTransform(
            "duplicate",
            "append copies of rows; copies of maximal rows join the "
            "result", _duplicate),
        MetamorphicTransform(
            "monotone-rescale",
            "positively rescale each column; the result is unchanged",
            _monotone_rescale),
        MetamorphicTransform(
            "relabel",
            "apply a p-graph isomorphism (permute columns with nodes); "
            "the result is unchanged", _relabel),
        MetamorphicTransform(
            "append-dominated",
            "append tuples strictly worse than an existing tuple; the "
            "result is unchanged", _append_dominated),
        # forcing "native" exercises the compiled backend when numba is
        # importable and the graceful bitmask fallback otherwise -- both
        # must reproduce the oracle bit for bit
        _kernel_transform("native"),
        _kernel_transform("bitmask"),
        _kernel_transform("gemm"),
        _kernel_transform("scalar"),
        MetamorphicTransform(
            "kernel-threads",
            "re-run with a screen thread budget of 2 forced (tiled "
            "screening); the result is unchanged", _identity, threads=2),
        MetamorphicTransform(
            "pool-chunked",
            "re-evaluate on the persistent worker pool (2 chunks, "
            "shared memory, tree merge); the result is unchanged",
            _identity, pool_chunks=2),
        _sharded_transform(2),
        _sharded_transform(3),
        MetamorphicTransform(
            "snapshot-isolation",
            "answer from a pinned MVCC snapshot after writes land at "
            "later versions; the result is unchanged",
            _identity, executor=_snapshot_isolation_executor),
        MetamorphicTransform(
            "fused-batch",
            "evaluate inside a fused correlated batch (duplicate, "
            "empty and chain companions share one base skyline and "
            "packed Better masks); the result is unchanged",
            _identity, executor=_fused_batch_executor),
    )
}


def run_transform(transform: MetamorphicTransform, ranks: np.ndarray,
                  graph: PGraph, function, rng: random.Random, *,
                  algorithm: str = "?") -> list[Mismatch]:
    """Check one metamorphic relation for one algorithm on one case."""
    original = set(int(i) for i in function(ranks, graph))
    new_ranks, new_graph, oracle = transform.apply(ranks, graph, rng)
    expected = oracle(original)
    if transform.executor is not None:
        got = set(int(i) for i in transform.executor(
            new_ranks, new_graph, function, rng))
    elif transform.pool_chunks is not None:
        from ..algorithms.parallel import parallel_osdc

        got = set(int(i) for i in parallel_osdc(
            new_ranks, new_graph, processes=transform.pool_chunks,
            min_chunk=8))
    elif transform.kernel is not None:
        with forced_kernel(transform.kernel):
            got = set(int(i) for i in function(new_ranks, new_graph))
    elif transform.threads is not None:
        from ..engine.threads import thread_budget

        with thread_budget(transform.threads):
            got = set(int(i) for i in function(new_ranks, new_graph))
    else:
        got = set(int(i) for i in function(new_ranks, new_graph))
    if got != expected:
        return [Mismatch(
            f"metamorphic-{transform.name}", algorithm,
            f"expected {_describe(expected)} after the transform, got "
            f"{_describe(got)} (original result {_describe(original)})")]
    return []
