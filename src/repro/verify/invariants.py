"""Work-counter invariants keyed on declared algorithm guarantees.

The algorithms declare what their :class:`~repro.algorithms.base.Stats`
counters mean at registration time
(:class:`~repro.algorithms.base.AlgorithmInfo`); the differential runner
asserts the implied arithmetic after every run instead of hard-coding
algorithm names:

* every counter is non-negative;
* ``counts-dominance``: each of the ``n - v`` eliminated tuples was
  found dominated by at least one tuple-vs-tuple test, so
  ``dominance_tests >= n - v``;
* ``bounded-window`` (when a ``window_size`` option was passed): the
  reported high-water mark never exceeds the bound;
* ``external``: an input larger than one page incurs page traffic.
"""

from __future__ import annotations

from dataclasses import fields

from ..algorithms.base import AlgorithmInfo, Stats

__all__ = ["check_stats"]


def check_stats(info: AlgorithmInfo, stats: Stats, n: int, v: int,
                options: dict | None = None) -> list[str]:
    """Return human-readable violation strings (empty = all good)."""
    options = options or {}
    violations: list[str] = []
    for field in fields(Stats):
        value = getattr(stats, field.name)
        if isinstance(value, int) and value < 0:
            violations.append(
                f"{info.name}: counter {field.name} is negative ({value})")
    if info.counts_dominance and n - v > 0:
        if stats.dominance_tests < n - v:
            violations.append(
                f"{info.name}: eliminated {n - v} of {n} tuples with only "
                f"{stats.dominance_tests} dominance tests (each eliminated "
                "tuple must be tested at least once)")
    window = options.get("window_size")
    if info.bounded_window and window is not None:
        if stats.window_peak > window:
            violations.append(
                f"{info.name}: window peak {stats.window_peak} exceeds the "
                f"declared bound {window}")
    if info.external:
        page = options.get("page_size", 256)
        if n > page and stats.io_reads + stats.io_writes == 0:
            violations.append(
                f"{info.name}: {n} tuples over {page}-tuple pages caused "
                "no page I/O at all")
    return violations
