"""Dataset generators shared by the verifier, the fuzz tests and the
bench harness.

Each named *shape* stresses a different code path the targeted tests may
miss: extreme duplication (``binary`` / ``tiny-domain``), all-distinct
continuous values, power-law outliers, columns on wildly different
scales, and constant columns (every tuple tied).  ``correlated_gaussian``
wraps the paper's equicorrelated generator (Section 7.2) with the same
feasibility clamp the bench workloads use, so both layers draw from one
implementation.
"""

from __future__ import annotations

import random

import numpy as np

from ..data.gaussian import (alpha_for_correlation, equicorrelated_gaussian,
                             min_correlation)

__all__ = ["DATASET_SHAPES", "generate", "random_dataset",
           "correlated_gaussian", "clamp_correlation"]


def _binary(nrng: np.random.Generator, n: int, d: int) -> np.ndarray:
    return nrng.integers(0, 2, size=(n, d)).astype(float)


def _tiny_domain(nrng: np.random.Generator, n: int, d: int) -> np.ndarray:
    return nrng.integers(-2, 3, size=(n, d)).astype(float)


def _continuous(nrng: np.random.Generator, n: int, d: int) -> np.ndarray:
    return nrng.normal(size=(n, d))


def _powerlaw(nrng: np.random.Generator, n: int, d: int) -> np.ndarray:
    return np.floor(nrng.pareto(1.2, size=(n, d)) * 3)


def _mixed_scale(nrng: np.random.Generator, n: int, d: int) -> np.ndarray:
    scales = 10.0 ** nrng.integers(-3, 6, size=d)
    return np.round(nrng.random((n, d)) * scales, 2)


def _constant_cols(nrng: np.random.Generator, n: int, d: int) -> np.ndarray:
    data = nrng.integers(0, 4, size=(n, d)).astype(float)
    for column in range(0, d, 2):
        data[:, column] = float(column)
    return data


def _duplicated_blocks(nrng: np.random.Generator, n: int,
                       d: int) -> np.ndarray:
    base = max(1, n // 4)
    block = nrng.integers(0, 3, size=(base, d)).astype(float)
    data = block[nrng.integers(0, base, size=n)]
    return data


#: name -> generator(nrng, n, d); every shape returns an (n, d) float64
#: rank matrix with smaller-is-better semantics.
DATASET_SHAPES = {
    "binary": _binary,
    "tiny-domain": _tiny_domain,
    "continuous": _continuous,
    "powerlaw": _powerlaw,
    "mixed-scale": _mixed_scale,
    "constant-cols": _constant_cols,
    "duplicated-blocks": _duplicated_blocks,
}


def generate(shape: str, n: int, d: int,
             nrng: np.random.Generator) -> np.ndarray:
    """Draw an ``(n, d)`` rank matrix of the named shape."""
    try:
        generator = DATASET_SHAPES[shape]
    except KeyError:
        known = ", ".join(sorted(DATASET_SHAPES))
        raise KeyError(f"unknown dataset shape {shape!r}; one of: {known}") \
            from None
    return generator(nrng, n, d)


def random_dataset(rng: random.Random, nrng: np.random.Generator,
                   n: int, d: int) -> tuple[str, np.ndarray]:
    """Draw a shape uniformly at random, then a matrix of that shape."""
    shape = rng.choice(sorted(DATASET_SHAPES))
    return shape, generate(shape, n, d, nrng)


def clamp_correlation(target: float, d: int) -> float:
    """Clamp a target pairwise correlation into the feasible range.

    Equicorrelated Gaussians over ``d`` dimensions cannot go below
    ``-1/(d-1)``; targets beyond the floor are pulled to 90% of it
    (the bench workloads' convention).
    """
    if d < 2:
        return 0.0
    return max(target, min_correlation(d) * 0.9)


def correlated_gaussian(n: int, d: int, target: float,
                        nrng: np.random.Generator, *,
                        round_decimals: int | None = 2
                        ) -> tuple[np.ndarray, float]:
    """Equicorrelated Gaussian data aiming for pairwise correlation
    ``target``; returns ``(ranks, achieved_target)`` where the second
    element is the clamped correlation actually parameterised.
    """
    if d < 2:
        data = nrng.standard_normal((n, max(d, 1)))
        if round_decimals is not None:
            data = np.round(data, round_decimals)
        return data, 0.0
    rho = clamp_correlation(target, d)
    alpha = alpha_for_correlation(rho, d)
    data = equicorrelated_gaussian(n, d, alpha, nrng,
                                   round_decimals=round_decimals)
    return data, rho
