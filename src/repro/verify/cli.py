"""``python -m repro.verify`` -- the verification harness front end.

Modes:

* fuzz (default): ``python -m repro.verify --seed 0 --cases 100`` runs
  the differential + metamorphic fuzzer over every registered algorithm
  and exits non-zero when any mismatch survives shrinking.  With
  ``--artifacts DIR`` each shrunk failure is written as a JSON corpus
  entry plus a standalone reproduction script.
* replay: ``python -m repro.verify --replay tests/corpus`` re-runs every
  stored failure; exit status reports whether all stay fixed.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..algorithms.base import REGISTRY
from .corpus import replay_corpus
from .differential import BASELINE
from .fuzzer import Fuzzer

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential & metamorphic verification of every "
                    "registered p-skyline algorithm",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="fuzzing seed (default 0)")
    parser.add_argument("--cases", type=int, default=100,
                        help="number of fuzz cases (default 100)")
    parser.add_argument("--algorithms", default=None,
                        help="comma-separated subset of the registry "
                             "(default: all)")
    parser.add_argument("--baseline", default=BASELINE,
                        help=f"reference algorithm (default {BASELINE})")
    parser.add_argument("--max-n", type=int, default=120,
                        help="largest dataset size per case")
    parser.add_argument("--max-d", type=int, default=6,
                        help="largest attribute count per case")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-algorithm-run timeout in seconds")
    parser.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic transform per case")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write shrunk failures + repro scripts here")
    parser.add_argument("--replay", default=None, metavar="DIR",
                        help="replay a failure corpus instead of fuzzing")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")
    return parser


def _resolve_algorithms(spec: str | None, baseline: str) -> dict:
    if spec is None:
        pool = dict(REGISTRY)
    else:
        names = [name.strip() for name in spec.split(",") if name.strip()]
        unknown = sorted(set(names) - set(REGISTRY))
        if unknown:
            raise SystemExit(f"unknown algorithm(s): {', '.join(unknown)}")
        pool = {name: REGISTRY[name] for name in names}
    pool.setdefault(baseline, REGISTRY[baseline])
    return pool


def _cmd_replay(directory: str) -> int:
    results = replay_corpus(directory)
    if not results:
        print(f"no corpus entries under {directory}")
        return 0
    broken = 0
    for path, mismatches in sorted(results.items()):
        status = "ok" if not mismatches else "REGRESSED"
        print(f"{status:>9}  {path}")
        for mismatch in mismatches:
            broken += 1
            print(f"           {mismatch}")
    print(f"{len(results)} corpus case(s), {broken} regression(s)")
    return 1 if broken else 0


def main(argv: list[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.replay is not None:
        return _cmd_replay(arguments.replay)

    algorithms = _resolve_algorithms(arguments.algorithms,
                                     arguments.baseline)
    fuzzer = Fuzzer(
        arguments.seed,
        algorithms=algorithms,
        baseline=arguments.baseline,
        d_range=(1, max(1, arguments.max_d)),
        n_range=(1, max(1, arguments.max_n)),
        metamorphic=not arguments.no_metamorphic,
        timeout=arguments.timeout,
        artifacts_dir=arguments.artifacts,
    )
    progress = None if arguments.quiet else \
        (lambda line: print(line, flush=True))
    started = time.perf_counter()
    report = fuzzer.run(arguments.cases, progress=progress)
    elapsed = time.perf_counter() - started

    names = sorted(algorithms)
    print(f"verified {len(names)} algorithms "
          f"({', '.join(names)})")
    print(f"{report.cases} case(s) in {elapsed:.1f}s, seed "
          f"{arguments.seed}: {len(report.failures)} failure(s)")
    for failure in report.failures:
        print(f"  {failure.algorithm} [{failure.kind}] case "
              f"{failure.case_index} shape={failure.shape} shrunk to "
              f"n={failure.ranks.shape[0]} d={failure.graph.d}"
              + (f" transform={failure.transform}"
                 if failure.transform else ""))
        if failure.corpus_path:
            print(f"    corpus: {failure.corpus_path}")
            print(f"    repro:  {failure.script_path}")
    return 1 if report.failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
