"""Output-size estimation for (p-)skyline queries.

Section 8 of the paper asks whether the expected output size of a
p-skyline query can be predicted and used to choose the evaluation
algorithm case by case.  This module provides:

* the classical CI skyline cardinality ``E|M_sky| = H_{d-1,n}`` (Buchta,
  Observation 2), computed exactly by the generalised-harmonic recurrence
  and approximated by ``(ln n)^{d-1} / (d-1)!``;
* a sampling-based estimator for arbitrary p-expressions and data, based
  on the identity ``E|M_pi(D)| = n * P(t maximal)``, with ``P`` estimated
  by screening a random sample against the whole data set;
* :func:`choose_algorithm`, a simple cost-model switch implementing the
  paper's suggestion (BNL for tiny outputs, OSDC otherwise).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.dominance import Dominance
from ..core.pgraph import PGraph

__all__ = [
    "harmonic_skyline_size",
    "estimate_by_extrapolation",
    "harmonic_skyline_size_approx",
    "estimate_pskyline_size",
    "choose_algorithm",
]


def harmonic_skyline_size(n: int, d: int) -> float:
    """Exact ``H_{k,n}`` with ``k = d - 1``: the expected skyline size of
    ``n`` CI tuples in ``d`` dimensions (Buchta).

    Recurrence: ``H_{0,n} = 1`` and ``H_{k,n} = sum_{i<=n} H_{k-1,i} / i``.
    Computed iteratively in ``O(d * n)``.
    """
    if n <= 0:
        return 0.0
    if d < 1:
        raise ValueError("d must be positive")
    level = np.ones(n, dtype=np.float64)  # H_{0, 1..n}
    for _ in range(d - 1):
        level = np.cumsum(level / np.arange(1, n + 1))
    return float(level[-1])


def harmonic_skyline_size_approx(n: int, d: int) -> float:
    """The standard ``(ln n)^{d-1} / (d-1)!`` approximation of Buchta's
    expectation."""
    if n <= 1:
        return float(min(n, 1))
    return math.log(n) ** (d - 1) / math.factorial(d - 1)


def estimate_pskyline_size(ranks: np.ndarray, graph: PGraph,
                           rng: np.random.Generator,
                           sample_size: int = 64) -> float:
    """Estimate ``|M_pi(D)|`` by checking maximality of a random sample.

    Each sampled tuple is tested against the full input with one
    vectorised pass, so the cost is ``O(sample_size * n)``; the estimate
    ``n * (#maximal in sample) / sample_size`` is unbiased.
    """
    n = ranks.shape[0]
    if n == 0:
        return 0.0
    dominance = Dominance(graph)
    sample_size = min(sample_size, n)
    rows = rng.choice(n, size=sample_size, replace=False)
    maximal = 0
    for row in rows:
        if not dominance.dominators_mask(ranks, ranks[row]).any():
            maximal += 1
    return n * maximal / sample_size


def estimate_by_extrapolation(ranks: np.ndarray, graph: PGraph,
                              rng: np.random.Generator, *,
                              fractions: tuple[float, ...] = (0.05, 0.1,
                                                              0.2),
                              algorithm=None) -> float:
    """Estimate ``|M_pi(D)|`` by power-law extrapolation from subsamples.

    Skyline sizes typically follow ``v(n) ~ c * n^beta`` with
    ``beta < 1`` (``beta = 0`` under heavy priorities, ``(d-1)``-fold
    polylog for CI skylines, up to ``beta ~ 1`` on anti-correlated
    data).  Measuring ``v`` exactly on a few small random subsamples and
    fitting ``log v ~ log n`` extrapolates to the full input at a
    fraction of its cost, and -- unlike the point-sampling estimator --
    adapts to the data's correlation structure.
    """
    n = ranks.shape[0]
    if n == 0:
        return 0.0
    if algorithm is None:
        from ..algorithms.osdc import osdc as algorithm
    points: list[tuple[int, int]] = []
    for fraction in fractions:
        size = max(2, int(round(n * fraction)))
        rows = rng.choice(n, size=min(size, n), replace=False)
        v = int(algorithm(ranks[rows], graph).size)
        points.append((size, max(v, 1)))
    if len({size for size, _ in points}) < 2:
        return float(points[-1][1])
    xs = np.log([size for size, _ in points])
    ys = np.log([v for _, v in points])
    beta, intercept = np.polyfit(xs, ys, 1)
    beta = min(max(float(beta), 0.0), 1.0)  # v is monotone, sub-linear
    return float(np.exp(intercept) * n ** beta)


def choose_algorithm(ranks: np.ndarray, graph: PGraph,
                     rng: np.random.Generator, *,
                     sample_size: int = 64,
                     bnl_threshold: float = 0.002) -> str:
    """Pick an algorithm name from the estimated selectivity.

    BNL is competitive only when the output is a tiny fraction of the
    input (Figure 4, right); otherwise OSDC wins.  Returns a key of
    :data:`repro.algorithms.REGISTRY`.
    """
    n = ranks.shape[0]
    if n == 0:
        return "bnl"
    estimate = estimate_pskyline_size(ranks, graph, rng,
                                      sample_size=sample_size)
    if estimate <= bnl_threshold * n:
        return "bnl"
    return "osdc"
