"""Output-size estimation and algorithm selection (paper Section 8)."""

from .cardinality import (choose_algorithm, estimate_by_extrapolation,
                          estimate_pskyline_size,
                          harmonic_skyline_size,
                          harmonic_skyline_size_approx)

__all__ = [
    "harmonic_skyline_size",
    "harmonic_skyline_size_approx",
    "estimate_pskyline_size",
    "estimate_by_extrapolation",
    "choose_algorithm",
]
