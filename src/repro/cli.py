"""Command-line interface: ``python -m repro`` / ``repro-skyline``.

Sub-commands:

``query``
    Evaluate a p-skyline query over a CSV file::

        repro-skyline query cars.csv \\
            --preferring "lowest(price) & (lowest(mileage) * highest(hp))" \\
            --algorithm osdc --limit 20

``generate``
    Write a synthetic data set (gaussian / independent / correlated /
    anticorrelated / nba / covertype) to CSV::

        repro-skyline generate gaussian --rows 10000 --dims 8 \\
            --alpha 0.5 --out data.csv

``sample``
    Print uniform random p-expressions (the Section 7.1 sampler)::

        repro-skyline sample --dims 10 --count 5 --seed 7

``bench``
    Run the figure-reproduction harness at a chosen scale (same engine as
    ``examples/reproduce_figures.py``)::

        repro-skyline bench --scale quick

``bench-kernels``
    Time the three dominance kernels (bitmask / gemm / scalar) on a
    screening workload::

        repro-skyline bench-kernels --rows 20000 --dims 4 8 16

``pool-bench``
    Benchmark the persistent worker pool: serial vs cold-pool vs
    warm-pool wall clock, warm speedup per worker count, and the
    batched query service's amortisation::

        repro-skyline pool-bench --rows 200000 --queries 16

``shard-bench``
    Benchmark sharded relations: maintained per-shard serve vs
    monolithic scatter/gather on a warm pool, per-row insert overhead
    of the sharded maintainer, optional shard-count sweep::

        repro-skyline shard-bench --rows 100000 --shards 4

``batch-bench``
    Benchmark cross-query batch fusion: a correlated,
    elicitation-derived statement batch answered by the fused
    ``execute_batch`` versus the sequential per-statement path::

        repro-skyline batch-bench --rows 40000 --queries 64

``serve``
    Run the asyncio Preference SQL server (result cache, admission
    control, per-request deadlines; see ``docs/server.md``)::

        repro-skyline serve --synthetic 20000 --dims 5 --port 7654

``load-gen``
    Drive a running server with concurrent clients replaying a
    correlated, elicitation-derived workload::

        repro-skyline load-gen --port 7654 --clients 4 --repeat 4

``verify``
    Run the differential/metamorphic correctness fuzzer (delegates to
    ``python -m repro.verify``)::

        repro-skyline verify --seed 0 --cases 100
"""

from __future__ import annotations

import argparse
import csv
import random
import sys
import time

import numpy as np

from .algorithms import REGISTRY, Stats
from .bench.harness import group_records, run_pool
from .bench.report import format_series
from .bench.workloads import (DEFAULT, FULL, PAPER_ALGORITHMS, QUICK,
                              covertype_tasks, gaussian_tasks, nba_tasks)
from .core.preferring import evaluate_preferring, parse_preferring
from .core.relation import Relation
from .core.attributes import lowest
from .data import (anticorrelated, correlated, covertype_dataset,
                   equicorrelated_gaussian, independent, nba_dataset)
from .data.covertype import COVERTYPE_ATTRIBUTES
from .data.nba import NBA_ATTRIBUTES

__all__ = ["main"]

_SCALES = {"quick": QUICK, "default": DEFAULT, "full": FULL}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description="Prioritized skyline queries (SIGMOD'15 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser(
        "query", help="evaluate a p-skyline query over a CSV file")
    query.add_argument("csv", help="input CSV with a header row")
    query.add_argument("--preferring", required=True,
                       help="PREFERRING clause, e.g. "
                            "'lowest(price) & highest(hp)'")
    query.add_argument("--algorithm", default="osdc",
                       choices=sorted(REGISTRY))
    query.add_argument("--limit", type=int, default=None,
                       help="print at most this many result rows")
    query.add_argument("--stats", action="store_true",
                       help="print work counters")

    generate = commands.add_parser(
        "generate", help="write a synthetic data set to CSV")
    generate.add_argument("kind", choices=["gaussian", "independent",
                                           "correlated", "anticorrelated",
                                           "nba", "covertype"])
    generate.add_argument("--rows", type=int, default=10_000)
    generate.add_argument("--dims", type=int, default=8,
                          help="columns (ignored for nba/covertype)")
    generate.add_argument("--alpha", type=float, default=1.0,
                          help="gaussian correlation parameter")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", default="-",
                          help="output path ('-' for stdout)")

    sample = commands.add_parser(
        "sample", help="print uniform random p-expressions")
    sample.add_argument("--dims", type=int, default=8)
    sample.add_argument("--count", type=int, default=5)
    sample.add_argument("--seed", type=int, default=None)
    sample.add_argument("--f", type=float, default=0.5,
                        help="SampleSAT mixing ratio")

    bench = commands.add_parser(
        "bench", help="run the figure-reproduction harness")
    bench.add_argument("--scale", default="quick", choices=sorted(_SCALES))
    bench.add_argument("--workload", default="gaussian",
                       choices=["gaussian", "nba", "covertype"])

    kernels = commands.add_parser(
        "bench-kernels",
        help="time the dominance kernels on a screening workload")
    kernels.add_argument("--rows", type=int, default=20_000)
    kernels.add_argument("--dims", type=int, nargs="+",
                         default=[4, 8, 16])
    kernels.add_argument("--seed", type=int, default=2015)
    kernels.add_argument("--scalar", action="store_true",
                         help="also time the scalar kernel (slow; keep "
                              "--rows small)")
    kernels.add_argument("--list-backends", action="store_true",
                         help="print per-backend availability (and why "
                              "an optional backend is off), the thread "
                              "layer and effective budget, and exit")
    kernels.add_argument("--threads", type=int, default=None,
                         help="force this screen thread budget for the "
                              "timed runs (default: the engine policy)")

    pool = commands.add_parser(
        "pool-bench",
        help="benchmark the persistent worker pool (cold vs warm vs "
             "serial, scaling, batched queries)")
    pool.add_argument("--rows", type=int, default=200_000)
    pool.add_argument("--dims", type=int, default=6)
    pool.add_argument("--alpha", type=float, default=0.2,
                      help="equicorrelation of the generated data")
    pool.add_argument("--workers", type=int, default=4)
    pool.add_argument("--queries", type=int, default=16,
                      help="batch size for the map_queries measurement")
    pool.add_argument("--scaling", type=int, nargs="*", default=None,
                      metavar="W",
                      help="also time the warm pool at these worker "
                           "counts")
    pool.add_argument("--seed", type=int, default=2015)

    shard = commands.add_parser(
        "shard-bench",
        help="benchmark sharded relations (maintained serve vs "
             "monolithic scatter/gather, insert overhead, shard "
             "scaling)")
    shard.add_argument("--rows", type=int, default=100_000)
    shard.add_argument("--dims", type=int, default=6)
    shard.add_argument("--alpha", type=float, default=0.2,
                       help="equicorrelation of the generated data")
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument("--workers", type=int, default=4)
    shard.add_argument("--inserts", type=int, default=2_000,
                       help="stream length for the insert-overhead "
                            "measurement")
    shard.add_argument("--scaling", type=int, nargs="*", default=None,
                       metavar="S",
                       help="also time the serve path at these shard "
                            "counts")
    shard.add_argument("--seed", type=int, default=2015)

    batch = commands.add_parser(
        "batch-bench",
        help="benchmark cross-query batch fusion (fused vs sequential "
             "execute_batch on a correlated statement workload)")
    batch.add_argument("--rows", type=int, default=40_000)
    batch.add_argument("--dims", type=int, default=6)
    batch.add_argument("--queries", type=int, default=64,
                       help="statements in the batch")
    batch.add_argument("--intents", type=int, default=6,
                       help="hidden priority chains behind the workload")
    batch.add_argument("--algorithm", default="osdc",
                       choices=sorted(REGISTRY))
    batch.add_argument("--corpus", default=None, metavar="DIR",
                       help="also replay this regression corpus through "
                            "the fused-batch metamorphic axis")
    batch.add_argument("--seed", type=int, default=2015)

    serve = commands.add_parser(
        "serve",
        help="run the asyncio Preference SQL server over CSV tables "
             "(or a generated data set)")
    serve.add_argument("--load", action="append", default=[],
                       metavar="NAME=PATH",
                       help="register a CSV file as a table "
                            "(repeatable)")
    serve.add_argument("--synthetic", type=int, default=None,
                       metavar="ROWS",
                       help="also register ROWS gaussian rows as table "
                            "'data' (demo/bench mode)")
    serve.add_argument("--dims", type=int, default=5,
                       help="columns of the synthetic table")
    serve.add_argument("--sharded", action="store_true",
                       help="register the synthetic table as a mutable "
                            "sharded relation")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7654)
    serve.add_argument("--cache", type=int, default=256,
                       help="result-cache entries (0 disables)")
    serve.add_argument("--max-inflight", type=int, default=4)
    serve.add_argument("--max-queue", type=int, default=8)
    serve.add_argument("--shed-prefix", type=int, default=32)
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-request timeout in seconds")
    serve.add_argument("--algorithm", default="osdc",
                       choices=sorted(REGISTRY))
    serve.add_argument("--seed", type=int, default=2015)

    loadgen = commands.add_parser(
        "load-gen",
        help="drive a running server with concurrent clients and a "
             "correlated elicitation-derived workload")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7654)
    loadgen.add_argument("--table", default="data")
    loadgen.add_argument("--columns", nargs="+", default=None,
                         help="attribute names for the workload "
                              "(default: ask the server's table)")
    loadgen.add_argument("--statements", type=int, default=64,
                         help="distinct workload statements")
    loadgen.add_argument("--clients", type=int, default=4)
    loadgen.add_argument("--repeat", type=int, default=4,
                         help="passes over the workload per client")
    loadgen.add_argument("--seed", type=int, default=2015)
    loadgen.add_argument("--no-cache", action="store_true",
                         help="ask the server to bypass its result "
                              "cache")
    loadgen.add_argument("--batch", type=int, default=0, metavar="N",
                         help="send N statements per request through "
                              "the server's fused batch path (0 = one "
                              "request per statement)")
    loadgen.add_argument("--timeout", type=float, default=30.0)
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as JSON")

    shell = commands.add_parser(
        "shell", help="interactive Preference SQL over CSV files")
    shell.add_argument("--load", action="append", default=[],
                       metavar="NAME=PATH",
                       help="register a CSV file as a table (repeatable)")

    commands.add_parser(
        "verify", help="differential/metamorphic correctness fuzzer "
                       "(same flags as 'python -m repro.verify')",
        add_help=False)
    return parser


def _cmd_query(arguments: argparse.Namespace) -> int:
    clause = parse_preferring(arguments.preferring)
    with open(arguments.csv, newline="") as handle:
        reader = csv.DictReader(handle)
        rows = list(reader)
    if not rows:
        print("empty input", file=sys.stderr)
        return 1
    schema = []
    for name in clause.attributes:
        if name not in rows[0]:
            print(f"column {name!r} not found in {arguments.csv}",
                  file=sys.stderr)
            return 1
        schema.append(lowest(name))
    records = [{name: float(row[name]) for name in clause.attributes}
               for row in rows]
    relation = Relation.from_records(records, schema)
    stats = Stats()
    start = time.perf_counter()
    result = evaluate_preferring(relation, clause,
                                 algorithm=arguments.algorithm,
                                 stats=stats)
    elapsed = time.perf_counter() - start
    print(f"# {len(result)} of {len(relation)} tuples are maximal "
          f"({elapsed * 1000:.1f} ms, {arguments.algorithm})")
    writer = csv.DictWriter(sys.stdout, fieldnames=list(clause.attributes))
    writer.writeheader()
    for record in result.to_records()[: arguments.limit]:
        writer.writerow(record)
    if arguments.stats:
        print(f"# dominance tests: {stats.dominance_tests}, "
              f"passes: {stats.passes}, "
              f"recursive calls: {stats.recursive_calls}",
              file=sys.stderr)
    return 0


def _cmd_generate(arguments: argparse.Namespace) -> int:
    rng = np.random.default_rng(arguments.seed)
    kind = arguments.kind
    if kind == "gaussian":
        data = equicorrelated_gaussian(arguments.rows, arguments.dims,
                                       arguments.alpha, rng)
        names = [f"A{i}" for i in range(arguments.dims)]
    elif kind == "independent":
        data = independent(arguments.rows, arguments.dims, rng)
        names = [f"A{i}" for i in range(arguments.dims)]
    elif kind == "correlated":
        data = correlated(arguments.rows, arguments.dims, rng)
        names = [f"A{i}" for i in range(arguments.dims)]
    elif kind == "anticorrelated":
        data = anticorrelated(arguments.rows, arguments.dims, rng)
        names = [f"A{i}" for i in range(arguments.dims)]
    elif kind == "nba":
        data = nba_dataset(arguments.rows, rng)
        names = list(NBA_ATTRIBUTES)
    else:
        data = covertype_dataset(arguments.rows, rng)
        names = list(COVERTYPE_ATTRIBUTES)
    sink = sys.stdout if arguments.out == "-" else open(arguments.out, "w",
                                                        newline="")
    try:
        writer = csv.writer(sink)
        writer.writerow(names)
        writer.writerows(data.tolist())
    finally:
        if sink is not sys.stdout:
            sink.close()
            print(f"wrote {data.shape[0]} rows x {data.shape[1]} columns "
                  f"to {arguments.out}")
    return 0


def _cmd_sample(arguments: argparse.Namespace) -> int:
    from .sampling import PExpressionSampler, decompose
    rng = random.Random(arguments.seed)
    names = [f"A{i}" for i in range(arguments.dims)]
    sampler = PExpressionSampler(names, f=arguments.f)
    for _ in range(arguments.count):
        graph = sampler.sample_graph(rng)
        print(f"roots={graph.num_roots:2d} edges={graph.num_edges:3d}  "
              f"{decompose(graph)}")
    return 0


def _cmd_bench(arguments: argparse.Namespace) -> int:
    scale = _SCALES[arguments.scale]
    builders = {"gaussian": gaussian_tasks, "nba": nba_tasks,
                "covertype": covertype_tasks}
    tasks = builders[arguments.workload](scale)
    records = run_pool(PAPER_ALGORITHMS, tasks, repeats=scale.repeats)
    grouped = group_records(records, key=lambda r: r.num_attributes)
    print(format_series(
        f"{arguments.workload} workload ({scale.name} scale) by d",
        grouped, PAPER_ALGORITHMS, "d"))
    return 0


def _kernel_backends() -> list[tuple[str, bool, str | None]]:
    """``(name, available, reason)`` per registered kernel family.

    Enumerated from :data:`repro.core.dominance.KERNELS` so newly
    registered backends show up without touching the CLI; only the
    optional compiled backend can currently be unavailable, with the
    precise reason (``numba missing`` vs ``JIT compile failed``)
    reported by :func:`repro.core.native.availability`.
    """
    from .core import native
    from .core.dominance import KERNELS

    backends = []
    for name in KERNELS:
        if name == "native":
            ok, reason = native.availability()
        else:
            ok, reason = True, None
        backends.append((name, ok, reason))
    return backends


def _thread_layer_line() -> str:
    """The ``threads:`` row of ``--list-backends``: which parallel layer
    serves a multi-thread budget, and the effective budget + source."""
    from .core import native
    from .engine.threads import budget_source

    budget, source = budget_source()
    parallel_ok, parallel_reason = native.parallel_availability()
    layer = ("prange-native" if parallel_ok
             else f"tiled (compiled parallel layer unavailable: "
                  f"{parallel_reason})")
    return f"budget {budget} ({source}), layer {layer}"


def _cmd_bench_kernels(arguments: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .bench.perf_gate import run_kernel_bench
    from .engine.threads import thread_budget

    backends = _kernel_backends()
    if arguments.list_backends:
        for name, ok, reason in backends:
            state = "available" if ok else f"unavailable ({reason})"
            print(f"{name:>8}: {state}")
        print(f"{'threads':>8}: {_thread_layer_line()}")
        return 0
    kernels = []
    for name, ok, reason in backends:
        if not ok:
            print(f"note: skipping {name}: {reason}")
        elif name == "scalar" and not arguments.scalar:
            continue  # slow reference kernel is opt-in
        else:
            kernels.append(name)
    for dims in arguments.dims:
        scope = (thread_budget(arguments.threads)
                 if arguments.threads is not None else nullcontext())
        with scope:
            record = run_kernel_bench(dims, arguments.rows,
                                      arguments.seed,
                                      kernels=tuple(kernels))
        timings = "  ".join(
            f"{kernel} {seconds * 1000:8.2f}ms"
            for kernel, seconds in record["timings"].items())
        suffixes = []
        speedup = record.get("speedup_native_over_bitmask")
        if speedup is not None:
            suffixes.append(f"{speedup:.2f}x native over bitmask")
        speedup = record.get("speedup_bitmask_over_gemm")
        if speedup is not None:
            suffixes.append(f"{speedup:.2f}x bitmask over gemm")
        suffix = f"  ({', '.join(suffixes)})" if suffixes else ""
        print(f"d={dims:2d} block={record['block_rows']} "
              f"against={record['against_rows']} "
              f"survivors={record['survivors']}: {timings}{suffix}")
    return 0


def _cmd_pool_bench(arguments: argparse.Namespace) -> int:
    from .bench.pool_bench import (measure_batch, measure_parallel,
                                   measure_scaling)
    record = measure_parallel(arguments.rows, arguments.dims,
                              workers=arguments.workers,
                              alpha=arguments.alpha, seed=arguments.seed)
    print(f"{record['name']}: out={record['output_size']} "
          f"kernel={record['kernel']} "
          f"chunks={record['chunk_skylines']}")
    print(f"  serial {record['serial_seconds'] * 1000:8.2f}ms   "
          f"cold {record['cold_seconds'] * 1000:8.2f}ms   "
          f"warm {record['warm_seconds'] * 1000:8.2f}ms")
    print(f"  warm over cold {record['speedup_warm_over_cold']:5.2f}x   "
          f"warm over serial "
          f"{record['speedup_warm_over_serial']:5.2f}x")
    batch = measure_batch(arguments.rows // 8 or 1, arguments.dims,
                          queries=arguments.queries,
                          workers=arguments.workers,
                          alpha=arguments.alpha, seed=arguments.seed)
    print(f"{batch['name']}: cold {batch['cold_seconds'] * 1000:8.2f}ms  "
          f"warm {batch['warm_seconds'] * 1000:8.2f}ms  "
          f"({batch['speedup_batch_over_cold']:.2f}x amortised)")
    if arguments.scaling is not None:
        counts = arguments.scaling or [1, 2, 4, 8]
        for point in measure_scaling(arguments.rows, arguments.dims,
                                     counts, alpha=arguments.alpha,
                                     seed=arguments.seed):
            print(f"  workers={point['workers']:2d}: "
                  f"{point['seconds'] * 1000:8.2f}ms  "
                  f"out={point['output_size']}")
    return 0


def _cmd_shard_bench(arguments: argparse.Namespace) -> int:
    from .bench.shard_bench import (measure_insert_overhead,
                                    measure_shard_scaling,
                                    measure_sharded)
    record = measure_sharded(arguments.rows, arguments.dims,
                             shards=arguments.shards,
                             workers=arguments.workers,
                             alpha=arguments.alpha, seed=arguments.seed)
    print(f"{record['name']}: out={record['output_size']} "
          f"version={record['version']} "
          f"shard skylines={record['shard_skylines']}")
    print(f"  monolithic {record['monolithic_seconds'] * 1000:8.2f}ms   "
          f"scatter {record['scatter_seconds'] * 1000:8.2f}ms   "
          f"serve {record['serve_seconds'] * 1000:8.2f}ms")
    print(f"  serve over monolithic "
          f"{record['speedup_serve_over_monolithic']:5.2f}x   "
          f"scatter over monolithic "
          f"{record['speedup_scatter_over_monolithic']:5.2f}x")
    insert = measure_insert_overhead(
        arguments.rows // 5 or 1, arguments.inserts, arguments.dims,
        shards=arguments.shards, alpha=arguments.alpha,
        seed=arguments.seed)
    print(f"{insert['name']}: single "
          f"{insert['single_seconds'] * 1000:8.2f}ms  sharded "
          f"{insert['sharded_seconds'] * 1000:8.2f}ms  "
          f"({insert['insert_overhead']:.2f}x overhead)")
    if arguments.scaling is not None:
        counts = arguments.scaling or [2, 4, 8]
        for point in measure_shard_scaling(arguments.rows,
                                           arguments.dims, counts,
                                           workers=arguments.workers,
                                           alpha=arguments.alpha,
                                           seed=arguments.seed):
            print(f"  shards={point['shards']:2d}: serve "
                  f"{point['serve_seconds'] * 1000:8.2f}ms  "
                  f"({point['speedup_serve_over_monolithic']:.2f}x)  "
                  f"skylines={point['shard_skylines']}")
    return 0


def _cmd_batch_bench(arguments: argparse.Namespace) -> int:
    from .bench.batch_bench import (measure_fused_batch,
                                    replay_fused_batch_corpus)
    record = measure_fused_batch(arguments.rows, arguments.dims,
                                 queries=arguments.queries,
                                 intents=arguments.intents,
                                 algorithm=arguments.algorithm,
                                 seed=arguments.seed)
    print(f"{record['name']}: {record['queries']} queries -> "
          f"{record['distinct']} distinct in {record['groups']} "
          "group(s)")
    print(f"  sequential {record['unfused_seconds'] * 1000:8.2f}ms   "
          f"fused {record['fused_seconds'] * 1000:8.2f}ms   "
          f"({record['speedup_fused_over_unfused']:.2f}x)")
    print(f"  dedup_hits={record['dedup_hits']} "
          f"evaluations={record['base_evaluations']} "
          f"screened={record['screened']} "
          f"masks={record['mask_hits']}hit/{record['mask_misses']}miss "
          f"fallbacks={record['fallbacks']}")
    if arguments.corpus:
        replay = replay_fused_batch_corpus(arguments.corpus)
        print(f"  corpus: fused-batch axis over {replay['cases']} "
              f"case(s), {len(replay['mismatches'])} mismatch(es)")
        for mismatch in replay["mismatches"]:
            print(f"    {mismatch}")
        if replay["mismatches"]:
            return 1
    return 0


def _load_csv_as_relation(path: str) -> Relation:
    """All-numeric CSV -> relation with lowest-preferred columns."""
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path!r} has no header row")
        names = list(reader.fieldnames)
        records = [{name: float(row[name]) for name in names}
                   for row in reader]
    return Relation.from_records(records, [lowest(name)
                                           for name in names])


def _cmd_serve(arguments: argparse.Namespace) -> int:
    from .server import SkylineServer

    server = SkylineServer(
        host=arguments.host, port=arguments.port,
        cache=arguments.cache if arguments.cache > 0 else None,
        max_inflight=arguments.max_inflight,
        max_queue=arguments.max_queue,
        shed_prefix=arguments.shed_prefix,
        default_timeout=arguments.timeout,
        algorithm=arguments.algorithm)
    for spec in arguments.load:
        name, _, path = spec.partition("=")
        if not path:
            print(f"--load expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 1
        server.register(name, _load_csv_as_relation(path))
        print(f"loaded {name} from {path}")
    if arguments.synthetic is not None:
        names = [f"a{j}" for j in range(arguments.dims)]
        matrix = equicorrelated_gaussian(
            arguments.synthetic, arguments.dims, 0.2,
            np.random.default_rng(arguments.seed))
        relation = Relation.from_array(matrix, names=names)
        if arguments.sharded:
            from .core.sharding import ShardedRelation
            server.register("data",
                            ShardedRelation.from_relation(relation))
        else:
            server.register("data", relation)
        print(f"registered synthetic table 'data' "
              f"({arguments.synthetic} x {arguments.dims}"
              f"{', sharded' if arguments.sharded else ''})")
    if not server.tables():
        print("no tables registered; use --load and/or --synthetic",
              file=sys.stderr)
        return 1
    from .server.service import serve_in_thread
    handle = serve_in_thread(server)
    host, port = handle.address
    print(f"serving {', '.join(server.tables())} on {host}:{port} "
          f"(ctrl-c to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("draining ...")
    finally:
        handle.stop()
    return 0


def _cmd_load_gen(arguments: argparse.Namespace) -> int:
    import json as json_module

    from .server import SkylineClient
    from .server.loadgen import correlated_statements, run_load

    address = (arguments.host, arguments.port)
    columns = arguments.columns
    if columns is None:
        # the workload needs attribute names: probe the table
        with SkylineClient(address) as client:
            probe = client.query(
                f"SELECT * FROM {arguments.table} TOP 1")
            columns = probe["columns"]
    statements = correlated_statements(
        columns, arguments.statements, table=arguments.table,
        seed=arguments.seed)
    report = run_load(address, statements, clients=arguments.clients,
                      repeat=arguments.repeat,
                      timeout=arguments.timeout,
                      no_cache=arguments.no_cache,
                      batch=arguments.batch)
    if arguments.json:
        print(json_module.dumps(report.to_dict(), indent=2,
                                sort_keys=True))
        return 0
    print(f"clients={arguments.clients} statements="
          f"{len(statements)} repeat={arguments.repeat} "
          f"no_cache={arguments.no_cache} batch={arguments.batch}")
    print(f"  {report.queries} queries in {report.elapsed_s:.2f}s "
          f"-> {report.qps:.0f} qps")
    print(f"  latency ms: mean={report.mean_ms:.2f} "
          f"p50={report.p50_ms:.2f} p99={report.p99_ms:.2f} "
          f"max={report.max_ms:.2f}")
    print(f"  cached={report.cached} shed={report.shed} "
          f"errors={report.errors}")
    if report.server and report.server.get("cache"):
        cache = report.server["cache"]
        print(f"  server cache: hit_ratio={cache['hit_ratio']:.2f} "
              f"size={cache['size']} "
              f"invalidations={cache['invalidations']}")
    return 0


def _cmd_shell(arguments: argparse.Namespace) -> int:
    from .sql import PreferenceSQL, SqlExecutionError, SqlSyntaxError
    engine = PreferenceSQL()
    for spec in arguments.load:
        name, _, path = spec.partition("=")
        if not path:
            print(f"--load expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 1
        engine.register(name, _load_csv_as_relation(path))
        print(f"loaded {name} from {path}")
    print("Preference SQL shell -- SELECT ... FROM ... [WHERE ...] "
          "[PREFERRING ...] [TOP k]; empty line quits.")
    while True:
        try:
            line = input("psql> ").strip()
        except EOFError:
            break
        if not line:
            break
        try:
            result = engine.execute(line)
        except (SqlSyntaxError, SqlExecutionError, KeyError,
                ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            continue
        writer = csv.DictWriter(sys.stdout, fieldnames=list(result.names))
        writer.writeheader()
        for record in result.to_records():
            writer.writerow(record)
        print(f"({len(result)} rows)")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "verify":
        # Hand everything after the sub-command to the repro.verify CLI
        # untouched (argparse.REMAINDER drops leading optionals, so the
        # delegation happens before parsing).
        from .verify.cli import main as verify_main
        return verify_main(argv[1:])
    arguments = _build_parser().parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "generate": _cmd_generate,
        "sample": _cmd_sample,
        "bench": _cmd_bench,
        "bench-kernels": _cmd_bench_kernels,
        "pool-bench": _cmd_pool_bench,
        "shard-bench": _cmd_shard_bench,
        "batch-bench": _cmd_batch_bench,
        "serve": _cmd_serve,
        "load-gen": _cmd_load_gen,
        "shell": _cmd_shell,
    }
    return handlers[arguments.command](arguments)


if __name__ == "__main__":
    raise SystemExit(main())
