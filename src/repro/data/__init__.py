"""Synthetic data generators: the paper's equicorrelated Gaussian
(Section 7.2), classic skyline workloads, and simulated stand-ins for the
NBA and CoverType real data sets (Section 7.3)."""

from .classic import (anticorrelated, clustered, correlated, independent,
                      zipfian)
from .correlation import mean_pairwise_correlation, pairwise_correlations
from .covertype import (COVERTYPE_ATTRIBUTES, COVERTYPE_DEFAULT_ROWS,
                        covertype_dataset)
from .gaussian import (alpha_for_correlation, equicorrelated_gaussian,
                       expected_correlation, min_correlation)
from .nba import NBA_ATTRIBUTES, NBA_DEFAULT_ROWS, nba_dataset
from .real import load_covertype_file, load_nba_csv

__all__ = [
    "equicorrelated_gaussian",
    "expected_correlation",
    "alpha_for_correlation",
    "min_correlation",
    "independent",
    "correlated",
    "anticorrelated",
    "zipfian",
    "clustered",
    "load_covertype_file",
    "load_nba_csv",
    "nba_dataset",
    "NBA_ATTRIBUTES",
    "NBA_DEFAULT_ROWS",
    "covertype_dataset",
    "COVERTYPE_ATTRIBUTES",
    "COVERTYPE_DEFAULT_ROWS",
    "pairwise_correlations",
    "mean_pairwise_correlation",
]
