"""Correlation measurement utilities.

Figure 4 plots response time against the *observed* mean pairwise Pearson
correlation of the (rounded) data, not the generator parameter -- these
helpers reproduce that measurement.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_correlations", "mean_pairwise_correlation"]


def pairwise_correlations(data: np.ndarray) -> np.ndarray:
    """The strictly-upper-triangle Pearson coefficients of the columns."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[1] < 2:
        raise ValueError("need a matrix with at least two columns")
    if data.shape[0] < 2:
        raise ValueError("need at least two rows")
    deviations = data - data.mean(axis=0)
    scale = deviations.std(axis=0)
    if (scale == 0).any():
        raise ValueError("constant column has undefined correlation")
    matrix = (deviations / scale).T @ (deviations / scale) / data.shape[0]
    i, j = np.triu_indices(data.shape[1], k=1)
    return matrix[i, j]


def mean_pairwise_correlation(data: np.ndarray) -> float:
    """The average pairwise Pearson correlation across all column pairs."""
    return float(pairwise_correlations(data).mean())
