"""A synthetic stand-in for the NBA regular-season statistics data set.

The paper evaluates on 21,959 player-season rows over 14 attributes from
databasebasketball.com (Figure 6); that site is defunct and this
environment has no network access, so we *simulate* a data set with the
same statistical shape (see DESIGN.md, substitutions):

* counting stats (games, minutes, points, rebounds, assists, steals,
  blocks, turnovers, personal fouls, field-goal/free-throw/three-point
  attempts) are driven by two latent per-player factors -- playing time
  and skill -- which makes the columns strongly *positively* correlated,
  exactly the property of real box-score data that shapes Figure 6;
* physicals (height, weight) are weakly correlated with everything else
  but strongly with each other;
* all counting stats are non-negative, right-skewed and heavily
  duplicated (rounded to integers), like the real data.

Larger values are preferred on every attribute, as in the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NBA_ATTRIBUTES", "NBA_DEFAULT_ROWS", "nba_dataset"]

NBA_ATTRIBUTES = (
    "gp", "minutes", "pts", "reb", "asts", "stl", "blk",
    "turnover", "pf", "fga", "fta", "tpa", "weight", "height",
)

NBA_DEFAULT_ROWS = 21_959

# per-attribute scale of the latent model: (base, playtime load, skill load)
_STAT_MODEL = {
    "minutes": (200.0, 2600.0, 400.0),
    "pts": (50.0, 900.0, 700.0),
    "reb": (30.0, 380.0, 160.0),
    "asts": (15.0, 210.0, 160.0),
    "stl": (5.0, 75.0, 40.0),
    "blk": (3.0, 45.0, 40.0),
    "turnover": (10.0, 140.0, 60.0),
    "pf": (20.0, 180.0, 30.0),
    "fga": (40.0, 800.0, 500.0),
    "fta": (10.0, 230.0, 200.0),
    "tpa": (5.0, 140.0, 120.0),
}


def nba_dataset(n: int = NBA_DEFAULT_ROWS,
                rng: np.random.Generator | None = None) -> np.ndarray:
    """Generate ``n`` player-season rows over :data:`NBA_ATTRIBUTES`.

    Returns raw values where **larger is better** for every column (negate
    before handing them to the rank-based algorithms, or wrap them with
    ``highest(...)`` attributes in a :class:`~repro.core.relation.Relation`).
    """
    if rng is None:
        rng = np.random.default_rng(1946)  # BAA founding year
    if n < 0:
        raise ValueError("n must be non-negative")
    playtime = rng.beta(1.6, 2.4, size=n)          # share of season played
    skill = rng.beta(2.0, 5.0, size=n)             # right-skewed talent
    columns: dict[str, np.ndarray] = {}
    games = np.clip(np.round(playtime * 82 + rng.normal(0, 6, n)), 1, 82)
    columns["gp"] = games
    for stat, (base, load_time, load_skill) in _STAT_MODEL.items():
        noise = rng.gamma(shape=2.0, scale=0.25, size=n)
        raw = (base * noise
               + load_time * playtime * (0.6 + 0.8 * skill)
               + load_skill * skill * rng.uniform(0.5, 1.5, n))
        columns[stat] = np.round(np.maximum(raw * playtime, 0.0))
    height = np.round(rng.normal(79.0, 3.6, n))      # inches
    weight = np.round(height * 2.9 + rng.normal(0, 12.0, n))
    columns["height"] = height
    columns["weight"] = weight
    return np.column_stack([columns[name] for name in NBA_ATTRIBUTES])
