"""A synthetic stand-in for the UCI Forest CoverType data set.

The paper evaluates on the 10 quantitative cartographic attributes of
CoverType (581,012 rows, Figure 7).  With no network access we *simulate*
a data set with the same statistical shape (see DESIGN.md, substitutions):

* observations come from a handful of terrain clusters (elevation bands),
  reproducing CoverType's strong multi-modal structure;
* hillshade columns are bounded 0-254 and mutually anti-correlated through
  the aspect angle; distances are non-negative and right-skewed;
* every column is integer valued, hence heavily duplicated -- the property
  that makes prioritized preferences (and the paper's `SplitByValue`
  equal-branch) actually fire.

Smaller values are preferred on every attribute, as in the paper.  The
default size is scaled to one tenth of the original; pass
``n=581_012`` to reproduce the full-size workload.
"""

from __future__ import annotations

import numpy as np

__all__ = ["COVERTYPE_ATTRIBUTES", "COVERTYPE_DEFAULT_ROWS",
           "covertype_dataset"]

COVERTYPE_ATTRIBUTES = (
    "elevation", "aspect", "slope",
    "horiz_dist_hydrology", "vert_dist_hydrology",
    "horiz_dist_roadways", "hillshade_9am", "hillshade_noon",
    "hillshade_3pm", "horiz_dist_fire_points",
)

COVERTYPE_DEFAULT_ROWS = 58_101

# (mean elevation, elevation spread, cluster weight) of the terrain modes
_TERRAIN_CLUSTERS = (
    (2300.0, 180.0, 0.25),
    (2750.0, 140.0, 0.35),
    (3100.0, 160.0, 0.30),
    (3400.0, 120.0, 0.10),
)


def covertype_dataset(n: int = COVERTYPE_DEFAULT_ROWS,
                      rng: np.random.Generator | None = None) -> np.ndarray:
    """Generate ``n`` cartographic rows over
    :data:`COVERTYPE_ATTRIBUTES` (smaller is better)."""
    if rng is None:
        rng = np.random.default_rng(1998)  # UCI donation year
    if n < 0:
        raise ValueError("n must be non-negative")
    weights = np.array([w for _, _, w in _TERRAIN_CLUSTERS])
    weights = weights / weights.sum()
    cluster = rng.choice(len(_TERRAIN_CLUSTERS), size=n, p=weights)
    means = np.array([m for m, _, _ in _TERRAIN_CLUSTERS])[cluster]
    spreads = np.array([s for _, s, _ in _TERRAIN_CLUSTERS])[cluster]
    elevation = rng.normal(means, spreads)

    aspect = rng.uniform(0.0, 360.0, n)
    slope = np.clip(rng.gamma(2.2, 6.0, n), 0, 66)

    # higher terrain sits farther from water and roads
    altitude_factor = (elevation - 2000.0) / 1500.0
    horiz_hydro = rng.gamma(1.5, 180.0, n) * (0.6 + altitude_factor)
    vert_hydro = rng.normal(45.0, 55.0, n) * (0.5 + altitude_factor)
    horiz_road = rng.gamma(1.8, 1300.0, n) * (0.5 + altitude_factor)
    horiz_fire = rng.gamma(1.8, 1100.0, n)

    # hillshade: driven by aspect and slope; 9am and 3pm anti-correlated
    radians = np.deg2rad(aspect)
    shade_9 = 220 + 30 * np.cos(radians - np.pi / 4) - slope * 0.8 \
        + rng.normal(0, 12, n)
    shade_noon = 225 + 20 * np.cos(radians - np.pi) * 0.2 - slope * 0.3 \
        + rng.normal(0, 10, n)
    shade_3 = 140 - 30 * np.cos(radians - np.pi / 4) + slope * 0.2 \
        + rng.normal(0, 20, n)

    columns = {
        "elevation": np.clip(elevation, 1850, 3900),
        "aspect": aspect,
        "slope": slope,
        "horiz_dist_hydrology": np.clip(horiz_hydro, 0, None),
        "vert_dist_hydrology": vert_hydro,
        "horiz_dist_roadways": np.clip(horiz_road, 0, None),
        "hillshade_9am": np.clip(shade_9, 0, 254),
        "hillshade_noon": np.clip(shade_noon, 0, 254),
        "hillshade_3pm": np.clip(shade_3, 0, 254),
        "horiz_dist_fire_points": np.clip(horiz_fire, 0, None),
    }
    matrix = np.column_stack(
        [columns[name] for name in COVERTYPE_ATTRIBUTES]
    )
    return np.round(matrix)
