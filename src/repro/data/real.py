"""Loaders for the *actual* NBA and CoverType files (when available).

The committed benchmarks run on the statistical simulators of
:mod:`repro.data.nba` / :mod:`repro.data.covertype` (see DESIGN.md:
no network access in the reproduction environment).  Users who have the
original files can load them with these helpers and re-run the Figure 6/7
workloads on the true data:

* CoverType (``covtype.data`` from the UCI repository): the first ten
  columns are the quantitative cartographic attributes, in exactly the
  order of :data:`~repro.data.covertype.COVERTYPE_ATTRIBUTES`;
* NBA: any CSV of player-season rows containing the fourteen stat
  columns of :data:`~repro.data.nba.NBA_ATTRIBUTES` (header names are
  matched case-insensitively).
"""

from __future__ import annotations

import csv

import numpy as np

from .covertype import COVERTYPE_ATTRIBUTES
from .nba import NBA_ATTRIBUTES

__all__ = ["load_covertype_file", "load_nba_csv"]


def load_covertype_file(path: str, limit: int | None = None) -> np.ndarray:
    """Parse UCI ``covtype.data`` (comma-separated, no header).

    Keeps the first ``len(COVERTYPE_ATTRIBUTES)`` columns of each row;
    ``limit`` caps the number of rows (the full file has 581,012).
    Smaller values are preferred, as in the paper.
    """
    width = len(COVERTYPE_ATTRIBUTES)
    rows: list[list[float]] = []
    with open(path, newline="") as handle:
        for record in csv.reader(handle):
            if not record:
                continue
            if len(record) < width:
                raise ValueError(
                    f"expected at least {width} columns, got "
                    f"{len(record)}"
                )
            rows.append([float(value) for value in record[:width]])
            if limit is not None and len(rows) >= limit:
                break
    if not rows:
        raise ValueError(f"no data rows found in {path!r}")
    return np.asarray(rows, dtype=np.float64)


def load_nba_csv(path: str, limit: int | None = None) -> np.ndarray:
    """Parse an NBA player-season CSV with a header row.

    The file must contain every column of ``NBA_ATTRIBUTES`` (matched
    case-insensitively); extra columns are ignored, rows with missing or
    non-numeric values in the relevant columns are dropped (the paper
    drops null rows too).  Larger values are preferred -- negate before
    handing the matrix to the rank-based algorithms.
    """
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path!r} has no header row")
        lookup = {name.lower(): name for name in reader.fieldnames}
        missing = [name for name in NBA_ATTRIBUTES
                   if name.lower() not in lookup]
        if missing:
            raise ValueError(f"CSV is missing columns: {missing}")
        columns = [lookup[name.lower()] for name in NBA_ATTRIBUTES]
        rows: list[list[float]] = []
        for record in reader:
            try:
                row = [float(record[column]) for column in columns]
            except (TypeError, ValueError):
                continue  # null / malformed row: drop, as the paper does
            rows.append(row)
            if limit is not None and len(rows) >= limit:
                break
    if not rows:
        raise ValueError(f"no usable rows found in {path!r}")
    return np.asarray(rows, dtype=np.float64)
