"""The paper's equicorrelated Gaussian generator (Section 7.2).

Data is drawn from a zero-mean multivariate Gaussian whose covariance is

.. math::  \\Sigma_\\alpha = M \\, diag(\\alpha, 1, \\dots, 1) \\, M^{-1}
           = I + \\frac{\\alpha - 1}{d} \\vec{1}\\,\\vec{1}^T

where ``M`` is any rotation whose first row is parallel to the all-ones
vector.  Every pair of distinct dimensions then shares the same Pearson
correlation

.. math::  \\rho = \\frac{\\alpha - 1}{d + \\alpha - 1},

ranging from ``-1/(d-1)`` (as ``alpha -> 0``) to ``1`` (as
``alpha -> inf``); ``alpha = 1`` gives independent columns.  Among all
distributions with a common pairwise correlation this is the maximum
entropy one.  Values are rounded (the paper uses four decimal digits) so
that duplicates occur -- a precondition for prioritized preferences to be
meaningful.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "equicorrelated_gaussian",
    "expected_correlation",
    "alpha_for_correlation",
    "min_correlation",
]


def expected_correlation(alpha: float, d: int) -> float:
    """The theoretical pairwise Pearson correlation for ``alpha``."""
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    return (alpha - 1.0) / (d + alpha - 1.0)


def min_correlation(d: int) -> float:
    """The infimum of achievable pairwise correlation, ``-1/(d-1)``."""
    if d < 2:
        raise ValueError("need at least two dimensions")
    return -1.0 / (d - 1)


def alpha_for_correlation(rho: float, d: int) -> float:
    """Invert :func:`expected_correlation` (``rho`` in ``(-1/(d-1), 1)``)."""
    if not min_correlation(d) < rho < 1.0:
        raise ValueError(
            f"correlation must lie in ({min_correlation(d):.4f}, 1) "
            f"for d={d}"
        )
    return 1.0 + rho * d / (1.0 - rho)


def equicorrelated_gaussian(n: int, d: int, alpha: float,
                            rng: np.random.Generator,
                            round_decimals: int | None = 4) -> np.ndarray:
    """Sample ``n`` tuples over ``d`` equicorrelated Gaussian attributes.

    Implemented without materialising the rotation: with
    ``u = 1/sqrt(d) * (1, ..., 1)``,

    ``x = z + (sqrt(alpha) - 1) (z . u) u``  for  ``z ~ N(0, I)``

    has exactly the covariance ``I + (alpha - 1) u u^T``.
    ``round_decimals=None`` disables rounding (continuous CI data).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if d < 1:
        raise ValueError("d must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    z = rng.standard_normal((n, d))
    unit = np.full(d, 1.0 / np.sqrt(d))
    projection = z @ unit  # (n,)
    x = z + np.outer(projection, (np.sqrt(alpha) - 1.0) * unit)
    if round_decimals is not None:
        x = np.round(x, round_decimals)
    return x
