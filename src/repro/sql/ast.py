"""AST nodes of the Preference SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.preferring import PreferringClause

__all__ = ["Comparison", "Logical", "Not", "Condition", "Query"]


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` (the literal side is pre-normalised)."""

    column: str
    operator: str          # one of = != < <= > >=
    literal: float | str


@dataclass(frozen=True)
class Logical:
    """``left AND right`` / ``left OR right``."""

    operator: str          # "and" | "or"
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class Not:
    operand: "Condition"


Condition = Comparison | Logical | Not


@dataclass(frozen=True)
class Query:
    """A parsed ``SELECT ... FROM ... [WHERE] [PREFERRING] [ORDER BY]
    [TOP]``."""

    columns: tuple[str, ...] | None     # None = '*'
    table: str
    where: Condition | None
    preferring: PreferringClause | None
    order_by: tuple[str, bool] | None   # (column, ascending)
    top: int | None
