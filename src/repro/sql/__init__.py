"""A mini Preference SQL engine (Kiessling & Koestler style):
``SELECT ... FROM ... WHERE ... PREFERRING ... TOP k`` over registered
relations, with prioritized/Pareto preference clauses."""

from .ast import Comparison, Logical, Not, Query
from .executor import BatchExecutionError, PreferenceSQL, SqlExecutionError
from .lexer import SqlSyntaxError, Token, tokenize
from .parser import parse_query

__all__ = [
    "PreferenceSQL",
    "SqlExecutionError",
    "BatchExecutionError",
    "SqlSyntaxError",
    "parse_query",
    "tokenize",
    "Token",
    "Query",
    "Comparison",
    "Logical",
    "Not",
]
