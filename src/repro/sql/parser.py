"""Recursive-descent parser for the Preference SQL dialect.

Grammar::

    query      := SELECT select_list FROM name
                  [WHERE condition]
                  [PREFERRING pref_clause]
                  [ORDER BY name [ASC|DESC]]
                  [TOP number]
    select_list := '*' | name (',' name)*
    condition  := and_chain (OR and_chain)*
    and_chain  := factor (AND factor)*
    factor     := NOT factor | '(' condition ')' | comparison
    comparison := name op literal | literal op name
    op         := = | != | <> | < | <= | > | >=
    literal    := number | 'string'

The ``PREFERRING`` body reuses :mod:`repro.core.preferring`'s clause
language (``lowest(a) & (b * highest(c))``); its extent runs to the
``ORDER``/``TOP`` keyword or the end of the statement.
"""

from __future__ import annotations

from ..core.preferring import parse_preferring
from .ast import Comparison, Condition, Logical, Not, Query
from .lexer import SqlSyntaxError, Token, tokenize

__all__ = ["parse_query", "SqlSyntaxError"]

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
            "!=": "!="}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers ---------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "end":
            self.position += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token.kind == "keyword" and token.text == word:
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            token = self.peek()
            raise SqlSyntaxError(
                f"expected {word.upper()} but found {token.text!r} at "
                f"position {token.position}"
            )

    def expect(self, kind: str) -> Token:
        token = self.advance()
        if token.kind != kind:
            raise SqlSyntaxError(
                f"expected {kind} but found {token.text!r} at position "
                f"{token.position}"
            )
        return token

    # -- grammar ---------------------------------------------------------------
    def parse(self) -> Query:
        self.expect_keyword("select")
        columns = self.select_list()
        self.expect_keyword("from")
        table = self.expect("name").text
        where = None
        if self.accept_keyword("where"):
            where = self.condition()
        preferring = None
        if self.accept_keyword("preferring"):
            preferring = self.preferring_clause()
        order_by = None
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            column = self.expect("name").text
            ascending = True
            if self.accept_keyword("desc"):
                ascending = False
            else:
                self.accept_keyword("asc")
            order_by = (column, ascending)
        top = None
        if self.accept_keyword("top"):
            token = self.expect("number")
            value = float(token.text)
            if value < 0 or value != int(value):
                raise SqlSyntaxError(
                    f"TOP expects a non-negative integer, got {token.text}"
                )
            top = int(value)
        tail = self.peek()
        if tail.kind != "end":
            raise SqlSyntaxError(
                f"trailing input {tail.text!r} at position {tail.position}"
            )
        return Query(columns, table, where, preferring, order_by,
                     top)

    def select_list(self) -> tuple[str, ...] | None:
        if self.peek().kind == "punct" and self.peek().text == "*":
            self.advance()
            return None
        names = [self.expect("name").text]
        while self.peek().kind == "punct" and self.peek().text == ",":
            self.advance()
            names.append(self.expect("name").text)
        return tuple(names)

    def condition(self) -> Condition:
        left = self.and_chain()
        while self.accept_keyword("or"):
            left = Logical("or", left, self.and_chain())
        return left

    def and_chain(self) -> Condition:
        left = self.factor()
        while self.accept_keyword("and"):
            left = Logical("and", left, self.factor())
        return left

    def factor(self) -> Condition:
        if self.accept_keyword("not"):
            return Not(self.factor())
        token = self.peek()
        if token.kind == "punct" and token.text == "(":
            self.advance()
            inner = self.condition()
            closing = self.advance()
            if closing.kind != "punct" or closing.text != ")":
                raise SqlSyntaxError(
                    f"missing ')' at position {closing.position}"
                )
            return inner
        return self.comparison()

    def comparison(self) -> Comparison:
        first = self.advance()
        operator = self.expect("op").text
        second = self.advance()
        operator = "!=" if operator == "<>" else operator
        if first.kind == "name" and second.kind in ("number", "string"):
            return Comparison(first.text, operator,
                              self._literal(second))
        if first.kind in ("number", "string") and second.kind == "name":
            return Comparison(second.text, _FLIPPED[operator],
                              self._literal(first))
        raise SqlSyntaxError(
            "comparisons must be between a column and a literal "
            f"(position {first.position})"
        )

    @staticmethod
    def _literal(token: Token) -> float | str:
        if token.kind == "number":
            return float(token.text)
        return token.text

    def preferring_clause(self):
        # the clause body extends until TOP or the end of the statement
        start = self.peek().position
        stop = len(self.text)
        while self.peek().kind != "end":
            token = self.peek()
            if token.kind == "keyword" and token.text in ("top", "order"):
                stop = token.position
                break
            self.advance()
        body = self.text[start:stop]
        return parse_preferring(body)


def parse_query(text: str) -> Query:
    """Parse a Preference SQL statement into a :class:`Query`."""
    if not text or not text.strip():
        raise SqlSyntaxError("empty statement")
    return _Parser(text).parse()
