"""Execution of Preference SQL queries over registered relations.

:class:`PreferenceSQL` is a tiny catalog + executor:

1. ``WHERE`` filters rows with vectorised predicates over the *raw*
   column values (numeric columns compare numerically, ranked columns
   compare their string values; ordering comparisons on ranked columns
   follow the declared preference order, best first);
2. ``PREFERRING`` evaluates the p-skyline of the survivors
   (:mod:`repro.core.preferring` semantics, directions overriding the
   schema);
3. ``TOP k`` keeps the ``k`` best maximal tuples in ``≻ext`` order;
4. the ``SELECT`` list projects the final relation.
"""

from __future__ import annotations

import operator
from typing import Any

import numpy as np

from ..algorithms.base import Stats, ensure_context, get_algorithm
from ..core.attributes import Direction
from ..core.pgraph import PGraph
from ..core.preferring import (encode_columns, evaluate_preferring,
                               resolve_preferring)
from ..core.relation import Relation
from ..engine.context import ExecutionContext
from .ast import Comparison, Condition, Logical, Not, Query
from .parser import parse_query

__all__ = ["PreferenceSQL", "SqlExecutionError", "BatchExecutionError"]

_OPERATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class SqlExecutionError(ValueError):
    """Semantic error while executing a statement (unknown table/column,
    type mismatch, ...)."""


class BatchExecutionError(SqlExecutionError):
    """A statement failed mid-batch; completed answers are preserved.

    ``results`` has one slot per statement of the batch: the result
    :class:`~repro.core.relation.Relation` for every statement that
    completed before the failure, ``None`` for the failing statement
    and any not yet executed.  ``failed_index`` is the 0-based position
    of the statement whose execution raised, ``completed`` counts the
    preserved results, and the original exception is both ``cause`` and
    ``__cause__``.
    """

    def __init__(self, failed_index: int, total: int, results,
                 cause: BaseException):
        self.failed_index = failed_index
        self.results = list(results)
        self.completed = sum(result is not None for result in self.results)
        self.cause = cause
        super().__init__(
            f"statement {failed_index + 1} of {total} failed with "
            f"{type(cause).__name__} after {self.completed} completed "
            f"result(s): {cause}")


class PreferenceSQL:
    """An in-memory catalog of relations queryable with Preference SQL."""

    def __init__(self) -> None:
        self._catalog: dict[str, Relation] = {}

    def register(self, name: str, relation: Relation) -> None:
        """Add (or replace) a relation under ``name``."""
        if not name or not name.isidentifier():
            raise ValueError(f"invalid table name {name!r}")
        self._catalog[name] = relation

    def tables(self) -> list[str]:
        return sorted(self._catalog)

    def relation(self, name: str) -> Relation:
        """The relation registered under ``name``."""
        if name not in self._catalog:
            known = ", ".join(self.tables()) or "(none)"
            raise SqlExecutionError(
                f"unknown table {name!r}; registered: {known}")
        return self._catalog[name]

    # -- execution ----------------------------------------------------------
    def execute(self, statement: str, *,
                algorithm: str = "osdc",
                stats: Stats | None = None,
                context: ExecutionContext | None = None,
                timeout: float | None = None) -> Relation:
        """Run one statement and return the result relation.

        ``timeout`` (seconds) or a ``context`` carrying a deadline or
        cancellation token makes the statement raise
        :class:`~repro.engine.QueryTimeout` /
        :class:`~repro.engine.QueryCancelled` mid-evaluation.
        """
        if timeout is not None:
            if context is not None:
                raise ValueError("pass either timeout or context, not both")
            context = ExecutionContext.create(stats=stats, timeout=timeout)
        context = ensure_context(context, stats)
        query = parse_query(statement)
        return self._execute_parsed(query, algorithm=algorithm,
                                    context=context)

    def execute_batch(self, statements, *,
                      algorithm: str = "osdc",
                      stats: Stats | None = None,
                      context: ExecutionContext | None = None,
                      timeout: float | None = None,
                      fuse: bool = True) -> list[Relation]:
        """Run many statements as one batch; returns one relation each.

        All statements share a single :class:`ExecutionContext` (one
        deadline and cancellation token covering the whole batch, work
        counters accumulated across statements).  With ``fuse`` (the
        default), ``PREFERRING``-only statements over the same plain
        relation are planned together by
        :class:`~repro.core.fusion.FusionPlan`: duplicate preferences
        evaluate once, and distinct preferences over a shared encoded
        column signature are refined from their common base skyline
        with shared packed ``Better`` masks
        (``stats.extra["fusion"]`` carries the exact counters).
        Statements with ``WHERE`` clauses or sharded tables keep their
        independent per-statement path; ``TOP`` / ``ORDER BY`` /
        ``SELECT`` post-processing always applies per statement.

        A statement failing mid-batch raises
        :class:`BatchExecutionError`, which carries every already
        completed result -- a timeout at statement ``k`` of ``n`` no
        longer discards the ``k`` finished answers.
        """
        if timeout is not None:
            if context is not None:
                raise ValueError("pass either timeout or context, not both")
            context = ExecutionContext.create(stats=stats, timeout=timeout)
        context = ensure_context(context, stats)
        queries = [parse_query(statement) for statement in statements]
        results: list[Relation | None] = [None] * len(queries)
        fused = self._fusable_groups(queries) if fuse else {}
        member: dict[int, str] = {
            position: table
            for table, positions in fused.items()
            for position in positions}
        position = 0
        try:
            for position, query in enumerate(queries):
                if results[position] is not None:
                    continue  # already answered by a fused group
                table = member.get(position)
                if table is not None:
                    batch = [(p, queries[p]) for p in fused[table]]
                    self._execute_fused(
                        self._catalog[table], batch, results,
                        algorithm=algorithm, context=context)
                else:
                    results[position] = self._execute_parsed(
                        query, algorithm=algorithm, context=context)
        except Exception as error:
            # a failure inside a fused group is pinned to the member
            # that raised, not the position the group ran at
            failed = getattr(error, "_batch_position", position)
            raise BatchExecutionError(failed, len(queries), results,
                                      error) from error
        return results

    def _fusable_groups(self, queries) -> dict[str, list[int]]:
        """Positions of fusable statements, grouped by table.

        A statement fuses when it has a ``PREFERRING`` clause, no
        ``WHERE`` filter, and its table is a plain in-memory
        :class:`~repro.core.relation.Relation` (sharded tables pin a
        snapshot per statement and stay on the independent path).  Only
        groups of two or more are worth a fused plan.
        """
        from ..core.sharding import ShardedRelation

        groups: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            if query.preferring is None or query.where is not None:
                continue
            relation = self._catalog.get(query.table)
            if relation is None or isinstance(relation, ShardedRelation):
                continue
            groups.setdefault(query.table, []).append(position)
        return {table: positions for table, positions in groups.items()
                if len(positions) >= 2}

    def _execute_fused(self, relation: Relation, batch, results, *,
                       algorithm: str,
                       context: ExecutionContext) -> None:
        """Evaluate fused ``(position, query)`` statements on one
        relation, writing each answer into ``results`` as it lands.

        Per-statement failures (a bad ``PREFERRING`` attribute, a bad
        ``SELECT`` projection) are annotated with the offending batch
        position so :meth:`execute_batch` reports the right statement;
        answers post-processed before the failure stay in ``results``.
        """
        from ..core.fusion import FusionPlan

        resolved = []
        for position, query in batch:
            try:
                resolved.append(
                    resolve_preferring(relation, query.preferring))
            except Exception as error:
                error._batch_position = position
                raise
        plan = FusionPlan.build(resolved)
        matrices: dict[tuple, np.ndarray] = {}

        def data_for(key: tuple) -> np.ndarray:
            matrix = matrices.get(key)
            if matrix is None:
                matrix = encode_columns(relation, key)
                matrices[key] = matrix
            return matrix

        function = get_algorithm(algorithm)

        def evaluate(graph, key):
            return function(data_for(key), graph, context=context)

        def candidates(indices, key):
            return data_for(key)[indices]

        index_lists = plan.execute(evaluate=evaluate,
                                   candidates=candidates,
                                   context=context)
        for (position, query), indices in zip(batch, index_lists):
            try:
                results[position] = self._post_process(
                    relation.take(indices), query, context)
            except Exception as error:
                error._batch_position = position
                raise

    def execute_parsed(self, query: Query, *,
                       algorithm: str = "osdc",
                       stats: Stats | None = None,
                       context: ExecutionContext | None = None,
                       timeout: float | None = None) -> Relation:
        """Run an already-parsed :class:`~repro.sql.ast.Query`.

        The parse-once entry point for callers that hold on to an AST
        and execute it repeatedly (the query server parses each
        statement a single time, then replays the AST per request);
        semantics are identical to :meth:`execute` on the statement the
        AST was parsed from.
        """
        if timeout is not None:
            if context is not None:
                raise ValueError("pass either timeout or context, not both")
            context = ExecutionContext.create(stats=stats, timeout=timeout)
        context = ensure_context(context, stats)
        return self._execute_parsed(query, algorithm=algorithm,
                                    context=context)

    def _execute_parsed(self, query: Query, *, algorithm: str,
                        context: ExecutionContext) -> Relation:
        from ..core.sharding import ShardedRelation

        if query.table not in self._catalog:
            known = ", ".join(self.tables()) or "(none)"
            raise SqlExecutionError(
                f"unknown table {query.table!r}; registered: {known}"
            )
        relation = self._catalog[query.table]
        if isinstance(relation, ShardedRelation):
            # pin one MVCC snapshot for the whole statement: concurrent
            # writes bump the version but never shift this query's rows
            with relation.snapshot() as snapshot:
                context.event("sql-snapshot",
                              version=snapshot.version,
                              shards=snapshot.num_shards)
                if context.stats is not None:
                    context.stats.extra["relation_version"] = \
                        snapshot.version
                order = np.argsort(snapshot.global_ids, kind="stable")
                stable = snapshot.relation.take(order)
            return self._execute_on(stable, query, algorithm=algorithm,
                                    context=context)
        return self._execute_on(relation, query, algorithm=algorithm,
                                context=context)

    def _execute_on(self, relation: Relation, query: Query, *,
                    algorithm: str,
                    context: ExecutionContext) -> Relation:
        if query.where is not None:
            context.check("sql-where")
            mask = self._evaluate(query.where, relation)
            relation = relation.take(np.flatnonzero(mask))

        if query.preferring is not None:
            relation = evaluate_preferring(relation, query.preferring,
                                           algorithm=algorithm,
                                           context=context)
        return self._post_process(relation, query, context)

    def _post_process(self, relation: Relation, query: Query,
                      context: ExecutionContext) -> Relation:
        """``TOP`` / ``ORDER BY`` / ``SELECT`` on an evaluated
        preference result (shared by the per-statement and fused batch
        paths; ``relation`` already holds the ``PREFERRING``
        survivors)."""
        if query.preferring is not None:
            if query.order_by is None and query.top is not None:
                relation = self._take_top(relation, query, context)
                if query.columns is None:
                    return relation
        if query.order_by is not None:
            column, ascending = query.order_by
            if column not in relation.names:
                raise SqlExecutionError(
                    f"unknown column {column!r} in ORDER BY"
                )
            relation = relation.sort_by(column, best_first=ascending)
        if query.top is not None and (query.preferring is None
                                      or query.order_by is not None):
            relation = relation.take(
                np.arange(min(query.top, len(relation)), dtype=np.intp))

        if query.columns is not None:
            missing = [c for c in query.columns
                       if c not in relation.names]
            if missing:
                raise SqlExecutionError(
                    f"unknown column(s) in SELECT: {missing}"
                )
            relation = relation.project(list(query.columns))
        return relation

    # -- WHERE evaluation ------------------------------------------------------
    def _evaluate(self, condition: Condition,
                  relation: Relation) -> np.ndarray:
        if isinstance(condition, Logical):
            left = self._evaluate(condition.left, relation)
            right = self._evaluate(condition.right, relation)
            return left & right if condition.operator == "and" \
                else left | right
        if isinstance(condition, Not):
            return ~self._evaluate(condition.operand, relation)
        assert isinstance(condition, Comparison)
        return self._compare(condition, relation)

    @staticmethod
    def _compare(comparison: Comparison,
                 relation: Relation) -> np.ndarray:
        if comparison.column not in relation.names:
            raise SqlExecutionError(
                f"unknown column {comparison.column!r} in WHERE"
            )
        index = relation.names.index(comparison.column)
        attribute = relation.schema[index]
        ranks = relation.ranks[:, index]
        literal: Any = comparison.literal
        compare = _OPERATORS[comparison.operator]
        if attribute.direction is Direction.RANKED:
            if not isinstance(literal, str):
                raise SqlExecutionError(
                    f"column {comparison.column!r} holds ranked values; "
                    "compare it with a quoted string"
                )
            if literal not in attribute.order:
                if comparison.operator in ("=", "!="):
                    # equality with an unknown value is simply never true
                    value = np.zeros(ranks.shape[0], dtype=bool)
                    return ~value if comparison.operator == "!=" else value
                raise SqlExecutionError(
                    f"value {literal!r} is not in the declared order of "
                    f"{comparison.column!r}"
                )
            else:
                # ordering follows the declared ranking (best first), so
                # "t < 'automatic'" means "strictly preferred to it"
                target = float(attribute.order.index(literal))
                return compare(ranks, target)
        if isinstance(literal, str):
            raise SqlExecutionError(
                f"column {comparison.column!r} is numeric; compare it "
                "with a number"
            )
        if attribute.direction is Direction.MAX:
            ranks = -ranks  # back to raw values
        return compare(ranks, float(literal))

    # -- TOP ----------------------------------------------------------------
    @staticmethod
    def _take_top(relation: Relation, query: Query,
                  context: ExecutionContext) -> Relation:
        clause = query.preferring
        assert clause is not None and query.top is not None
        context.check("sql-top")
        names = list(clause.attributes)
        columns = [relation.names.index(name) for name in names]
        matrix = relation.ranks[:, columns].copy()
        orders = []
        for position, name in enumerate(names):
            attribute = relation.schema[columns[position]]
            if attribute.direction is Direction.RANKED:
                orders.append(attribute.order_token())
            else:
                orders.append(clause.directions[name].value)
                if clause.directions[name] is not attribute.direction:
                    matrix[:, position] = -matrix[:, position]
        graph = PGraph.from_expression(clause.expression, names=names) \
            .with_orders(orders)
        order = context.compiled(graph).extension.argsort(matrix)
        return relation.take(order[: query.top])
