"""Tokenizer for the Preference SQL dialect.

Token kinds: keywords (case-insensitive), identifiers, numbers, quoted
strings, comparison operators, punctuation.  Positions are tracked for
error messages.
"""

from __future__ import annotations

import re
from typing import NamedTuple

__all__ = ["Token", "tokenize", "SqlSyntaxError", "KEYWORDS"]

KEYWORDS = frozenset({
    "select", "from", "where", "preferring", "top",
    "order", "by", "asc", "desc",
    "and", "or", "not", "lowest", "highest",
})


class SqlSyntaxError(ValueError):
    """Malformed Preference SQL text."""


class Token(NamedTuple):
    kind: str     # keyword | name | number | string | op | punct | end
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<op><=|>=|!=|<>|=|<|>)"
    r"|(?P<punct>[(),*&])"
    r")"
)


def tokenize(text: str) -> list[Token]:
    """Lex ``text``; appends a synthetic ``end`` token."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.lastgroup is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SqlSyntaxError(
                f"unexpected character {remainder[0]!r} at position "
                f"{position}"
            )
        kind = match.lastgroup
        value = match.group(kind)
        start = match.start(kind)
        if kind == "name" and value.lower() in KEYWORDS:
            tokens.append(Token("keyword", value.lower(), start))
        elif kind == "string":
            unquoted = value[1:-1].replace("''", "'")
            tokens.append(Token("string", unquoted, start))
        else:
            tokens.append(Token(kind, value, start))
        position = match.end()
    tokens.append(Token("end", "", len(text)))
    return tokens
