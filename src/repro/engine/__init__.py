"""The engine layer: compile-once preferences + per-query execution state.

Two pillars (see ``docs/architecture.md``):

* :class:`CompiledPreference` / :class:`PreferenceCache` -- everything
  derivable from a p-graph (dominance oracle, ``≻ext`` weights,
  topological order, specialization flags, restricted sub-graphs),
  built once and LRU-cached so repeated queries over the same
  p-expression skip all preprocessing;
* :class:`ExecutionContext` -- per-query :class:`Stats`, deadline /
  cancellation token, memory budget and event-trace ring buffer,
  threaded through every evaluation path (scan, divide-and-conquer,
  external-memory, parallel, SQL).
"""

from .compiled import (CompiledPreference, PreferenceCache,
                       compile_preference, default_cache)
from .context import CancellationToken, ExecutionContext
from .errors import (EngineError, MemoryBudgetExceeded, QueryCancelled,
                     QueryTimeout)
from .pool import (SharedRegistration, WorkerPool, default_worker_count,
                   get_default_pool, pool_available,
                   shutdown_default_pool)
from .threads import (effective_budget, pin_thread_budget,
                      thread_budget)
from .trace import TraceBuffer, TraceEvent

__all__ = [
    "CompiledPreference",
    "PreferenceCache",
    "compile_preference",
    "default_cache",
    "ExecutionContext",
    "CancellationToken",
    "EngineError",
    "QueryTimeout",
    "QueryCancelled",
    "MemoryBudgetExceeded",
    "TraceBuffer",
    "TraceEvent",
    "WorkerPool",
    "SharedRegistration",
    "get_default_pool",
    "shutdown_default_pool",
    "pool_available",
    "default_worker_count",
    "thread_budget",
    "pin_thread_budget",
    "effective_budget",
]
