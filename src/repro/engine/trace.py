"""Event tracing for query execution.

:class:`TraceBuffer` is a bounded ring buffer of :class:`TraceEvent`
records (``phase``, ``elapsed_ns``, free-form counters).  Algorithms and
the planner append events at phase boundaries; the bench harness and
``explain``-style tooling render or serialise the buffer afterwards.
The buffer is deliberately lossy (oldest events drop first) so tracing
can stay enabled on long-running queries without unbounded growth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "TraceBuffer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped engine event."""

    phase: str
    elapsed_ns: int
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"phase": self.phase, "elapsed_ns": self.elapsed_ns,
                **self.counters}


class TraceBuffer:
    """A bounded ring buffer of :class:`TraceEvent` records."""

    __slots__ = ("_events", "dropped")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("trace capacity must be at least 1")
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        #: Number of events evicted by the ring buffer so far.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._events.maxlen or 0

    def __len__(self) -> int:
        return len(self._events)

    def record(self, phase: str, elapsed_ns: int, **counters) -> None:
        """Append one event (evicting the oldest when full)."""
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(TraceEvent(phase, int(elapsed_ns), counters))

    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def to_json(self) -> list[dict]:
        """JSON-serialisable view of the buffer (for bench artifacts)."""
        return [event.to_dict() for event in self._events]

    def render(self) -> str:
        """A human-readable table of the buffered events."""
        lines = [f"{'elapsed':>12}  phase"]
        for event in self._events:
            extras = " ".join(f"{k}={v}" for k, v in event.counters.items())
            milliseconds = event.elapsed_ns / 1e6
            line = f"{milliseconds:>10.3f}ms  {event.phase}"
            if extras:
                line += f"  [{extras}]"
            lines.append(line)
        if self.dropped:
            lines.append(f"... {self.dropped} earlier event(s) dropped")
        return "\n".join(lines)
