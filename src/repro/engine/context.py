"""The per-query execution context threaded through every evaluation path.

:class:`ExecutionContext` carries everything a single query evaluation
needs beyond its input data:

* the :class:`~repro.algorithms.base.Stats` work counters (optional, as
  before -- counting is skipped when absent);
* a monotonic **deadline** and a :class:`CancellationToken`, both checked
  by :meth:`check` at block boundaries (BNL/SFS/LESS window passes,
  DC/OSDC/PSCREEN recursion steps, external-memory page reads, parallel
  merges).  An expired deadline raises
  :class:`~repro.engine.errors.QueryTimeout`; a triggered token raises
  :class:`~repro.engine.errors.QueryCancelled`;
* a **memory budget** (tuples an operator may hold in memory at once),
  enforced through :meth:`charge_memory`;
* an event-trace ring buffer (:class:`~repro.engine.trace.TraceBuffer`)
  that the bench harness and ``explain`` render;
* the :class:`~repro.engine.compiled.PreferenceCache` used to resolve
  p-graphs into :class:`~repro.engine.compiled.CompiledPreference`
  instances (the process-wide default cache if none is given).

Algorithms keep their public ``algorithm(ranks, graph, *, stats=None,
**options)`` signature: :func:`repro.algorithms.base.ensure_context`
synthesizes a default context when the caller passes only ``stats``.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from .errors import MemoryBudgetExceeded, QueryCancelled, QueryTimeout
from .trace import TraceBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algorithms.base import Stats
    from ..core.pgraph import PGraph
    from .compiled import CompiledPreference, PreferenceCache

__all__ = ["CancellationToken", "ExecutionContext"]


class CancellationToken:
    """A thread-safe flag a caller flips to abort an in-flight query.

    Besides the in-process event, a token can *mirror* into other
    event-like objects (anything with ``set()``): the worker pool links
    its shared :class:`multiprocessing.Event` here so a ``cancel()``
    in the parent is observed by worker processes at their next block
    boundary.  Mirrors are linked for the duration of one pooled query
    and unlinked afterwards.
    """

    __slots__ = ("_event", "_mirrors", "_lock")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._mirrors: list = []
        self._lock = threading.Lock()

    def cancel(self) -> None:
        """Request cancellation: the next context check raises."""
        self._event.set()
        with self._lock:
            mirrors = list(self._mirrors)
        for mirror in mirrors:
            mirror.set()

    def link(self, event) -> None:
        """Mirror future (and past) cancellations into ``event``."""
        with self._lock:
            self._mirrors.append(event)
        if self.cancelled:
            event.set()

    def unlink(self, event) -> None:
        """Stop mirroring into ``event`` (no-op when not linked)."""
        with self._lock:
            try:
                self._mirrors.remove(event)
            except ValueError:
                pass

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class ExecutionContext:
    """Per-query state shared by every operator the query touches."""

    __slots__ = ("stats", "deadline", "cancel", "memory_budget", "trace",
                 "cache", "threads", "_start_ns")

    def __init__(self, *, stats: "Stats | None" = None,
                 deadline: float | None = None,
                 cancel: CancellationToken | None = None,
                 memory_budget: int | None = None,
                 trace: TraceBuffer | None = None,
                 cache: "PreferenceCache | None" = None,
                 threads: int | None = None):
        self.stats = stats
        #: Absolute :func:`time.monotonic` instant after which evaluation
        #: raises :class:`QueryTimeout` (``None`` = no deadline).
        self.deadline = deadline
        self.cancel = cancel
        self.memory_budget = memory_budget
        self.trace = trace
        self.cache = cache
        #: Explicit screen thread budget for this query (``None`` defers
        #: to the :mod:`repro.engine.threads` policy).  The query API
        #: enters a :func:`repro.engine.threads.thread_budget` scope for
        #: the evaluation when set.
        self.threads = threads
        self._start_ns = time.monotonic_ns()

    # -- construction ----------------------------------------------------------
    @classmethod
    def create(cls, *, stats: "Stats | None" = None,
               timeout: float | None = None,
               deadline: float | None = None,
               cancel: CancellationToken | None = None,
               memory_budget: int | None = None,
               trace: "TraceBuffer | bool | int | None" = None,
               cache: "PreferenceCache | None" = None,
               threads: int | None = None
               ) -> "ExecutionContext":
        """Build a context from user-facing knobs.

        ``timeout`` is relative seconds from now (converted to an
        absolute monotonic ``deadline``); ``trace`` may be an existing
        buffer, ``True`` (default capacity) or a capacity in events;
        ``threads`` forces the screen thread budget for this query.
        """
        if timeout is not None:
            if timeout <= 0:
                raise ValueError("timeout must be positive seconds")
            relative = time.monotonic() + timeout
            deadline = relative if deadline is None \
                else min(deadline, relative)
        if trace is True:
            trace = TraceBuffer()
        elif isinstance(trace, int) and not isinstance(trace, bool):
            trace = TraceBuffer(capacity=trace)
        elif trace is False:
            trace = None
        return cls(stats=stats, deadline=deadline, cancel=cancel,
                   memory_budget=memory_budget, trace=trace, cache=cache,
                   threads=threads)

    # -- deadline / cancellation -----------------------------------------------
    @property
    def interruptible(self) -> bool:
        """True when a deadline or cancellation token is attached.

        The parallel executor uses this to avoid forking workers that
        could not observe a mid-flight cancellation.
        """
        return self.deadline is not None or self.cancel is not None

    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        return self.deadline is not None and \
            time.monotonic() > self.deadline

    def check(self, phase: str = "evaluate") -> None:
        """Raise if the query should stop.  Called at block boundaries.

        Cheap by design: two attribute tests when no limit is attached.
        """
        cancel = self.cancel
        if cancel is not None and cancel.cancelled:
            raise QueryCancelled(f"query cancelled during {phase}")
        deadline = self.deadline
        if deadline is not None and time.monotonic() > deadline:
            raise QueryTimeout(
                f"query deadline exceeded during {phase}"
            )

    # -- memory budget ---------------------------------------------------------
    def charge_memory(self, tuples: int, phase: str = "evaluate") -> None:
        """Assert an operator may materialise ``tuples`` rows at once."""
        if self.memory_budget is not None and tuples > self.memory_budget:
            raise MemoryBudgetExceeded(
                f"{phase} needs {tuples} tuples in memory but the budget "
                f"is {self.memory_budget}"
            )

    # -- compiled preferences --------------------------------------------------
    def compiled(self, graph: "PGraph") -> "CompiledPreference":
        """Resolve ``graph`` through the context's preference cache."""
        from .compiled import compile_preference

        return compile_preference(graph, self.cache)

    # -- tracing ---------------------------------------------------------------
    @property
    def elapsed_ns(self) -> int:
        """Nanoseconds since this context was created."""
        return time.monotonic_ns() - self._start_ns

    def event(self, phase: str, **counters) -> None:
        """Record a trace event (no-op when tracing is disabled)."""
        trace = self.trace
        if trace is not None:
            trace.record(phase, self.elapsed_ns, **counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline in {self.remaining():.3f}s")
        if self.cancel is not None:
            parts.append("cancellable")
        if self.memory_budget is not None:
            parts.append(f"budget={self.memory_budget}")
        if self.trace is not None:
            parts.append(f"trace[{len(self.trace)}]")
        return f"ExecutionContext({', '.join(parts) or 'unbounded'})"
