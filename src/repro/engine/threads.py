"""The intra-worker thread-budget policy (pool x threads coordination).

Two parallelism layers exist below the query API: the process-level
:class:`~repro.engine.pool.WorkerPool` (PR 4) and the intra-process
thread tiling of the dominance screen (:mod:`repro.core.dominance` --
a ``prange`` loop inside the compiled native kernels, a
``ThreadPoolExecutor`` over row tiles for the interpreted bitmask
family).  Left uncoordinated they multiply: 8 pool workers each running
8 screen threads oversubscribe a 16-core host 4x.  This module is the
single policy both layers consult, so oversubscription is impossible
by default:

* **pool workers pin a budget of 1 at spawn**
  (:func:`pin_thread_budget`): a pooled query parallelises across
  processes, never twice;
* **serial / single-worker execution** gets
  ``min(cores, d-aware cap)`` (:func:`auto_budget`);
* **explicit overrides** win over everything: per-scope via the
  :func:`thread_budget` context manager (which the query API enters for
  ``ExecutionContext(threads=...)`` and the CLI for ``--threads``), or
  process-wide via the ``REPRO_THREAD_BUDGET`` environment variable.

Resolution order (first hit wins): thread-local override -> process
pin -> environment -> auto.  The effective budget is recorded in
``Stats.extra["thread_budget"]`` and the ``kernel-select`` trace event
by :func:`repro.algorithms.base.resolve_kernel`, so every artifact and
``explain`` output shows how many threads served the query.

An *explicit* override (context manager / ``threads=`` argument) also
forces the tiled screen to engage regardless of block size; the auto
policy only threads blocks of at least
:data:`repro.core.dominance.THREAD_MIN_ROWS` rows, where the tile
dispatch overhead amortises.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = ["DEFAULT_THREAD_CAP", "WIDE_THREAD_CAP", "ENV_VAR",
           "thread_budget", "current_override", "pin_thread_budget",
           "pinned_budget", "env_budget", "auto_budget", "cap_for",
           "effective_budget", "budget_source"]

#: Auto-policy thread cap for dense-table dimensionalities
#: (``d <= DENSE_TABLE_LIMIT``): the per-pair work is a table gather,
#: cheap enough that tiles stay load-balanced at this width.
DEFAULT_THREAD_CAP = 8

#: Auto-policy cap above the dense-table limit: the OR-reduction over
#: set-bit columns does more (and more cache-hostile) work per pair, so
#: wider problems get fewer, larger tiles.
WIDE_THREAD_CAP = 4

#: Environment override consulted by :func:`effective_budget` (parsed
#: once per call; invalid values are ignored).
ENV_VAR = "REPRO_THREAD_BUDGET"

_LOCAL = threading.local()
_PIN: int | None = None
_PIN_LOCK = threading.Lock()


def _validate(budget: int) -> int:
    budget = int(budget)
    if budget < 1:
        raise ValueError("thread budget must be a positive integer")
    return budget


def current_override() -> int | None:
    """The thread-local explicit budget, or ``None`` when not inside a
    :func:`thread_budget` scope."""
    return getattr(_LOCAL, "budget", None)


@contextmanager
def thread_budget(budget: int):
    """Force the screening thread budget inside this scope (this thread).

    Wins over the process pin, the environment and the auto policy, and
    forces the tiled screen to engage even on small blocks (an explicit
    request is honoured exactly -- the verification harness relies on
    this to tile tiny fuzz cases).  Nestable; restores the previous
    override on exit.
    """
    budget = _validate(budget)
    previous = current_override()
    _LOCAL.budget = budget
    try:
        yield
    finally:
        _LOCAL.budget = previous


def pin_thread_budget(budget: int | None) -> None:
    """Pin the process-wide budget (``None`` unpins).

    Pool workers call ``pin_thread_budget(1)`` once at spawn, *before*
    JIT-warming the kernels: the pin is read at every budget resolution,
    so later changes to ``REPRO_THREAD_BUDGET`` / ``NUMBA_NUM_THREADS``
    in the parent can never oversubscribe an already-running worker.
    A thread-local :func:`thread_budget` override still wins (the pool
    ships each task's budget explicitly -- 1 by default).
    """
    global _PIN
    with _PIN_LOCK:
        _PIN = None if budget is None else _validate(budget)


def pinned_budget() -> int | None:
    """The process-wide pinned budget, or ``None``."""
    return _PIN


def env_budget() -> int | None:
    """The ``REPRO_THREAD_BUDGET`` override, or ``None`` (unset or
    unparseable)."""
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        return None
    return budget if budget >= 1 else None


def cap_for(d: int | None = None) -> int:
    """The d-aware auto-policy cap (see :data:`DEFAULT_THREAD_CAP`)."""
    from ..core.dominance import DENSE_TABLE_LIMIT

    if d is not None and d > DENSE_TABLE_LIMIT:
        return WIDE_THREAD_CAP
    return DEFAULT_THREAD_CAP


def auto_budget(d: int | None = None) -> int:
    """``min(cores, d-aware cap)`` -- the unforced serial-path budget."""
    return max(1, min(os.cpu_count() or 1, cap_for(d)))


def effective_budget(d: int | None = None) -> int:
    """Resolve the budget: override -> pin -> environment -> auto."""
    return budget_source(d)[0]


def budget_source(d: int | None = None) -> tuple[int, str]:
    """``(budget, source)`` where source names the winning policy layer
    (``"override"`` / ``"pinned"`` / ``"env"`` / ``"auto"``)."""
    override = current_override()
    if override is not None:
        return override, "override"
    pinned = pinned_budget()
    if pinned is not None:
        return pinned, "pinned"
    env = env_budget()
    if env is not None:
        return env, "env"
    return auto_budget(d), "auto"
