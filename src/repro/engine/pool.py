"""The persistent worker-pool execution service.

``parallel-osdc`` used to fork a fresh ``multiprocessing.Pool`` per
call, pickle every chunk's full rank array into its workers, discard
the workers' :class:`~repro.algorithms.base.Stats`, and refuse to run
at all under a deadline or cancellation token.  This module replaces
that with a warm, reusable execution service:

* :class:`WorkerPool` keeps worker *processes* alive across queries.
  Any registered algorithm can run on the pool (workers dispatch by
  registry name), so the same pool serves partition-parallel OSDC,
  pooled merges and batched query service.
* Rank matrices are registered **once** into
  :mod:`multiprocessing.shared_memory`; chunk dispatch ships only a
  ``(segment name, shape, dtype, row range)`` descriptor.  Workers map
  the segment and slice it -- a zero-copy read for row ranges.
  Registrations are cached per pool (keyed by the array object) and
  unlinked deterministically on :meth:`WorkerPool.close`, via the
  context-manager protocol, and from an ``atexit`` hook.
* Interruption propagates *into* workers: each task ships the absolute
  :func:`time.monotonic` deadline (CLOCK_MONOTONIC is system-wide on
  every platform we support, so parent and worker read the same clock)
  and every worker polls a shared :class:`multiprocessing.Event` that
  the parent's :class:`~repro.engine.context.CancellationToken` mirrors
  into.  Workers observe a cancellation at their next context check --
  within one chunk/block boundary -- and the parent raises
  :class:`~repro.engine.errors.QueryCancelled` /
  :class:`~repro.engine.errors.QueryTimeout` exactly as the serial path
  does.
* The final merge is a **tree of pairwise merges executed on the
  pool** instead of one serial pass over all survivors, and every
  worker's :class:`Stats` is merged back into the parent context
  (dominance tests, kernel choice, per-chunk skyline sizes,
  per-worker totals).
* :meth:`WorkerPool.map_queries` amortises one shared-memory
  registration across many p-expressions -- the "many users, one data
  set" shape of a loaded service.

The module-level :func:`get_default_pool` serves the process-wide warm
pool used by :func:`repro.algorithms.parallel.parallel_osdc` when the
caller does not bring their own.
"""

from __future__ import annotations

import atexit
import itertools
import os
import queue as queue_module
import threading
import uuid
import weakref
from contextlib import nullcontext
from dataclasses import dataclass

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from .context import ExecutionContext
from .threads import pin_thread_budget, thread_budget

__all__ = ["SharedArraySpec", "ShardedArraySpec", "SharedRegistration",
           "WorkerPool", "get_default_pool", "shutdown_default_pool",
           "pool_available", "default_worker_count",
           "WORKER_THREAD_BUDGET"]

#: Shared-memory segments created by this module are named
#: ``repro-pool-<pid>-<nonce>`` so leak checks can find strays.
SEGMENT_PREFIX = "repro-pool"

#: Upper bound on the default pool's worker count (a service box with 64
#: cores should not fork 64 Python interpreters for one library user).
DEFAULT_MAX_WORKERS = 8

#: Seconds between parent-side context checks while waiting on workers.
_POLL_INTERVAL = 0.02

#: Screen thread budget inside each pool worker.  A pooled query
#: parallelises across *processes*; pool x threads must not multiply, so
#: workers pin this at spawn and every task spec ships it explicitly
#: (see :mod:`repro.engine.threads`).
WORKER_THREAD_BUDGET = 1


def default_worker_count() -> int:
    """The default pool size: the CPU count, at least 2, at most
    :data:`DEFAULT_MAX_WORKERS`."""
    return min(DEFAULT_MAX_WORKERS, max(2, os.cpu_count() or 1))


def pool_available() -> bool:
    """True when this process may host a worker pool.

    Daemonic processes cannot have children -- the one genuine reason
    left to run serially.
    """
    return not mp.current_process().daemon


@dataclass(frozen=True)
class SharedArraySpec:
    """A picklable descriptor of one registered array: everything a
    worker needs to map the segment, and nothing else."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShardedArraySpec:
    """A picklable descriptor of one *virtually concatenated* array made
    of independently registered parts (the shards of a
    :class:`~repro.core.sharding.ShardedRelation`).

    ``offsets`` has ``len(parts) + 1`` entries: part ``i`` covers virtual
    rows ``offsets[i]:offsets[i + 1]``.  Workers address rows in the
    virtual coordinate space and gather across part segments -- a write
    to one shard therefore only invalidates that shard's registration,
    not the whole relation's.
    """

    parts: tuple[SharedArraySpec, ...]
    offsets: tuple[int, ...]

    def __post_init__(self):
        if len(self.offsets) != len(self.parts) + 1:
            raise ValueError(
                f"{len(self.parts)} parts need {len(self.parts) + 1} "
                f"offsets, got {len(self.offsets)}")

    @property
    def shape(self) -> tuple[int, ...]:
        width = self.parts[0].shape[1] if self.parts else 0
        return (self.offsets[-1], width)


class SharedRegistration:
    """A parent-side handle on one shared-memory copy of an array.

    The registration owns the segment: :meth:`close` (idempotent, also
    run by ``with``-blocks and the pool's own shutdown) closes *and
    unlinks* it, so no segment outlives the process even when a query
    raises mid-flight.
    """

    __slots__ = ("spec", "_shm", "__weakref__")

    def __init__(self, array: np.ndarray):
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:12]}"
        nbytes = max(1, array.nbytes)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes,
                                               name=name)
        self.spec = SharedArraySpec(name, tuple(array.shape),
                                    array.dtype.str)
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=self._shm.buf)
        view[...] = array

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedRegistration":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- worker side -------------------------------------------------------------


class _EventCancelToken:
    """Duck-typed :class:`CancellationToken` over a shared ``mp.Event``.

    Workers attach it to their :class:`ExecutionContext`, so every
    ``context.check`` at a block boundary observes a parent-side
    cancellation.
    """

    __slots__ = ("_event",)

    def __init__(self, event) -> None:
        self._event = event

    def cancel(self) -> None:  # pragma: no cover - parent cancels
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting its lifetime.

    Python's resource tracker assumes whoever opens a segment owns it
    and will unlink it at interpreter exit; suppressing the
    registration keeps ownership with the parent's
    :class:`SharedRegistration` (Python 3.13's ``track=False``
    parameter, backported by hand).  Merely attaching and then
    un-registering would race the parent: with the fork start method
    both sides talk to one tracker process, and the parent's own
    unlink-time unregister would arrive second and error out.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    try:
        resource_tracker.register = lambda *args, **kwargs: None
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _attach_view(array_spec: SharedArraySpec,
                 attachments: dict) -> np.ndarray:
    """Map one registered segment (cached per worker by segment name)."""
    cached = attachments.get(array_spec.name)
    if cached is None:
        shm = _attach(array_spec.name)
        view = np.ndarray(array_spec.shape,
                          dtype=np.dtype(array_spec.dtype),
                          buffer=shm.buf)
        view.setflags(write=False)
        cached = (shm, view)
        attachments[array_spec.name] = cached
    return cached[1]


def _gather_sharded(spec: ShardedArraySpec, kind: str, payload,
                    attachments: dict):
    """Gather rows of a virtually concatenated array across its part
    segments; returns ``(rows, to_global)`` like the single-segment
    path.  Stays zero-copy when a slice falls inside one part."""
    offsets = np.asarray(spec.offsets, dtype=np.intp)
    if kind == "slice":
        start, stop = payload
        # side="right" - 1 lands on the part containing the row even
        # when empty parts produce repeated offsets
        first = int(np.searchsorted(offsets, start, side="right")) - 1
        if stop <= offsets[first + 1]:  # inside one part: zero-copy
            view = _attach_view(spec.parts[first], attachments)
            rows = view[start - offsets[first]:stop - offsets[first]]
        else:
            pieces = []
            cursor = start
            part = first
            while cursor < stop:
                view = _attach_view(spec.parts[part], attachments)
                lo = cursor - offsets[part]
                hi = min(stop, int(offsets[part + 1])) - offsets[part]
                if hi > lo:
                    pieces.append(view[lo:hi])
                cursor = int(offsets[part + 1])
                part += 1
            rows = np.vstack(pieces)

        def to_global(local: np.ndarray) -> np.ndarray:
            return local + start
    else:
        indices = np.asarray(payload, dtype=np.intp)
        part_of = np.searchsorted(offsets, indices, side="right") - 1
        width = spec.shape[1]
        rows = np.empty((indices.size, width), dtype=np.float64)
        for part in np.unique(part_of):
            mask = part_of == part
            view = _attach_view(spec.parts[part], attachments)
            rows[mask] = view[indices[mask] - offsets[part]]

        def to_global(local: np.ndarray) -> np.ndarray:
            return indices[local]
    return rows, to_global


def _run_task(spec: dict, attachments: dict, cancel_event):
    """Execute one task spec; returns ``(global_indices, stats)``."""
    from .. import algorithms as _algorithms  # fills the registry
    from ..core.dominance import forced_kernel
    from ..core.pgraph import PGraph

    array_spec = spec["array"]
    kind, payload = spec["rows"]
    if isinstance(array_spec, ShardedArraySpec):
        rows, to_global = _gather_sharded(array_spec, kind, payload,
                                          attachments)
    elif kind == "slice":
        view = _attach_view(array_spec, attachments)
        start, stop = payload
        rows = view[start:stop]  # zero-copy view of the segment

        def to_global(local: np.ndarray) -> np.ndarray:
            return local + start
    else:  # "indices": merge tasks and arbitrary subsets
        view = _attach_view(array_spec, attachments)
        indices = np.asarray(payload, dtype=np.intp)
        rows = view[indices]

        def to_global(local: np.ndarray) -> np.ndarray:
            return indices[local]

    columns = spec["columns"]
    if columns is not None:
        rows = rows[:, list(columns)]

    names, closure, orders = spec["graph"]
    graph = PGraph(names, closure, orders)
    stats = _algorithms.Stats()
    context = ExecutionContext(
        stats=stats,
        deadline=spec["deadline"],
        cancel=_EventCancelToken(cancel_event),
        memory_budget=spec["memory_budget"],
    )
    function = _algorithms.REGISTRY[spec["algorithm"]]
    guard = forced_kernel(spec["forced_kernel"]) \
        if spec["forced_kernel"] else nullcontext()
    budget = thread_budget(spec.get("thread_budget")
                           or WORKER_THREAD_BUDGET)
    with guard, budget:
        local = function(rows, graph, context=context, **spec["options"])
    return to_global(np.asarray(local, dtype=np.intp)), stats


def _worker_main(worker_id: int, tasks, results, cancel_event) -> None:
    """The worker loop: pull task specs until the ``None`` sentinel."""
    # Pin the screen thread budget *before* anything else: a pooled
    # query parallelises across processes, never twice, and the pin is
    # read at every budget resolution -- so later changes to
    # REPRO_THREAD_BUDGET / NUMBA_NUM_THREADS in the parent can never
    # oversubscribe an already-running worker.
    try:
        pin_thread_budget(WORKER_THREAD_BUDGET)
    except Exception:  # pragma: no cover - policy is best effort
        pass
    # JIT-warm the compiled native kernel backend once at spawn (a no-op
    # when numba is absent) so queries never pay compile latency and the
    # compiled speedup compounds across workers.  The parallel layer is
    # warmed too (availability() compiles both), then clamped to the
    # pinned single-thread budget.
    try:
        from ..core.native import availability, set_thread_count

        availability()
        set_thread_count(WORKER_THREAD_BUDGET)
    except Exception:  # pragma: no cover - warmup is best effort
        pass
    attachments: dict = {}
    try:
        while True:
            item = tasks.get()
            if item is None:
                break
            query_id, task_id, spec = item
            try:
                indices, stats = _run_task(spec, attachments, cancel_event)
                results.put((query_id, task_id, worker_id, True,
                             indices, stats))
            except BaseException as error:
                try:
                    results.put((query_id, task_id, worker_id, False,
                                 error, None))
                except Exception:  # unpicklable exception: degrade
                    results.put((query_id, task_id, worker_id, False,
                                 RuntimeError(repr(error)), None))
    finally:
        for shm, _view in attachments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - shutdown best effort
                pass


# -- parent side -------------------------------------------------------------


class WorkerPool:
    """A persistent pool of worker processes for p-skyline evaluation.

    Parameters
    ----------
    processes:
        Worker count (default :func:`default_worker_count`).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (zero-cost inheritance of the registry), ``spawn``
        otherwise (workers re-import :mod:`repro.algorithms`).

    The pool is a context manager; :meth:`close` (also registered with
    ``atexit``) joins the workers and unlinks every live shared-memory
    registration.  Queries are serialised through an internal lock --
    the pool is safe to share between threads, one query in flight at a
    time.
    """

    def __init__(self, processes: int | None = None, *,
                 start_method: str | None = None):
        if processes is not None and processes < 1:
            raise ValueError("processes must be positive")
        if not pool_available():
            raise RuntimeError(
                "cannot start a WorkerPool inside a daemonic process")
        self.processes = processes or default_worker_count()
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() \
                else "spawn"
        self._mp = mp.get_context(start_method)
        self.start_method = start_method
        self._cancel_event = self._mp.Event()
        self._tasks = self._mp.Queue()
        self._results = self._mp.Queue()
        self._workers = []
        for worker_id in range(self.processes):
            process = self._mp.Process(
                target=_worker_main,
                args=(worker_id, self._tasks, self._results,
                      self._cancel_event),
                daemon=True,
                name=f"repro-pool-worker-{worker_id}",
            )
            process.start()
            self._workers.append(process)
        #: id(array) -> (weakref to the array, SharedRegistration)
        self._registrations: dict = {}
        self._lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._query_ids = itertools.count(1)
        self._closed = False
        atexit.register(self.close)

    # -- lifecycle -----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Join the workers and unlink every registration.

        Idempotent *and* thread-safe: with the server's atexit hook,
        the pool's own atexit hook and explicit ``shutdown_default_pool``
        calls all racing at interpreter exit, the first caller tears the
        pool down under ``_close_lock`` while later callers block until
        teardown finishes, then return without re-running it.  In-flight
        queries observe the cancel event (or the ``closed`` flag) and
        fail with :class:`~repro.engine.errors.QueryCancelled` before
        their shared segments are unlinked.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            try:
                atexit.unregister(self.close)
            except Exception:  # pragma: no cover - interpreter tear-down
                pass
            self._cancel_event.set()
            for _ in self._workers:
                try:
                    self._tasks.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    break
            for process in self._workers:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=1.0)
            for q in (self._tasks, self._results):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:  # pragma: no cover - best effort
                    pass
            # Wait for any in-flight run_query to notice the cancel and
            # bail out before its shared segments are unlinked.
            acquired = self._lock.acquire(timeout=5.0)
            try:
                self._release_registrations()
            finally:
                if acquired:
                    self._lock.release()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _release_registrations(self) -> None:
        registrations, self._registrations = self._registrations, {}
        for _ref, registration in registrations.values():
            registration.close()

    # -- shared-memory registration ------------------------------------------
    def register(self, array: np.ndarray) -> SharedRegistration:
        """Copy ``array`` into shared memory once; reuse on repeat calls.

        The cache keys on the array *object* (arrays are assumed frozen
        once registered, as :class:`~repro.core.relation.Relation`
        guarantees); registrations whose array has been garbage
        collected are unlinked on the next call.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        array = np.ascontiguousarray(array)
        for key, (ref, registration) in list(self._registrations.items()):
            if ref() is None:
                registration.close()
                del self._registrations[key]
        entry = self._registrations.get(id(array))
        if entry is not None and entry[0]() is array \
                and not entry[1].closed:
            return entry[1]
        registration = SharedRegistration(array)
        self._registrations[id(array)] = (weakref.ref(array), registration)
        return registration

    def live_segments(self) -> tuple[str, ...]:
        """Names of the shared-memory segments this pool currently owns
        (leak tests assert this is empty after :meth:`close`)."""
        return tuple(registration.name
                     for _ref, registration in self._registrations.values()
                     if not registration.closed)

    # -- query execution -----------------------------------------------------
    def run_query(self, ranks: np.ndarray, graph, *,
                  algorithm: str = "osdc", chunks: int | None = None,
                  columns=None, options: dict | None = None,
                  context: ExecutionContext | None = None) -> np.ndarray:
        """Evaluate ``M_pi(ranks)`` on the pool; returns sorted indices.

        The input is partitioned into ``chunks`` row ranges (default:
        one per worker), each evaluated by ``algorithm`` in a worker
        against the shared segment, then reduced with a tree of
        pairwise merges -- the partition identity ``M_pi(D) =
        M_pi(union of the M_pi(D_i))`` applied level by level, also on
        the pool.  Worker stats are merged into ``context.stats``.
        """
        from ..algorithms.base import ensure_context

        context = ensure_context(context)
        if self._closed:
            raise RuntimeError("pool is closed")
        n = int(ranks.shape[0])
        chunks = self.processes if chunks is None else int(chunks)
        chunks = max(1, min(chunks, n if n else 1))
        context.check("pool-setup")
        with self._lock:
            registration = self.register(ranks)
            bounds = np.linspace(0, n, chunks + 1, dtype=np.intp)
            row_tasks = [("slice", (int(bounds[i]), int(bounds[i + 1])))
                         for i in range(chunks)]
            return self._scatter_gather(
                registration.spec, graph, row_tasks=row_tasks,
                algorithm=algorithm, columns=columns, options=options,
                context=context)

    def run_sharded(self, arrays, graph, *, algorithm: str = "osdc",
                    columns=None, options: dict | None = None,
                    context: ExecutionContext | None = None
                    ) -> np.ndarray:
        """Evaluate ``M_pi`` over the virtual concatenation of
        independently registered shard arrays; returns sorted indices in
        the virtual (concatenated) coordinate space.

        Each shard is registered into shared memory on its own, so a
        mutation to one shard of a
        :class:`~repro.core.sharding.ShardedRelation` invalidates only
        that shard's registration on the next query.  Chunk boundaries
        never cross shards: each shard is split into enough slices that
        no task exceeds roughly ``n / processes`` rows, then all slices
        are scattered and tree-merged exactly like :meth:`run_query`.
        """
        from ..algorithms.base import ensure_context

        context = ensure_context(context)
        if self._closed:
            raise RuntimeError("pool is closed")
        arrays = [np.ascontiguousarray(a, dtype=np.float64)
                  for a in arrays if a.shape[0]]
        n = sum(int(a.shape[0]) for a in arrays)
        context.check("pool-setup")
        with self._lock:
            if not arrays:
                return np.empty(0, dtype=np.intp)
            spec = self._register_sharded(arrays)
            target = max(1, -(-n // self.processes))  # ceil division
            row_tasks = []
            for index, array in enumerate(arrays):
                base = spec.offsets[index]
                rows = int(array.shape[0])
                pieces = max(1, -(-rows // target))
                bounds = np.linspace(0, rows, pieces + 1, dtype=np.intp)
                row_tasks.extend(
                    ("slice", (int(base + bounds[i]),
                               int(base + bounds[i + 1])))
                    for i in range(pieces))
            return self._scatter_gather(
                spec, graph, row_tasks=row_tasks, algorithm=algorithm,
                columns=columns, options=options, context=context,
                pool_extra={"shards": len(arrays)})

    def merge_sharded_skylines(self, arrays, graph, parts, *,
                               algorithm: str = "osdc", columns=None,
                               options: dict | None = None,
                               context: ExecutionContext | None = None
                               ) -> np.ndarray:
        """Tree-merge pre-computed per-shard skylines on the pool.

        ``parts`` holds one index array per shard skyline, in the
        virtual coordinate space of the concatenated ``arrays``.  This
        is the serving path for maintained sharded relations: the
        per-shard skylines are already known, so the chunk-evaluation
        stage is skipped entirely and only the merge tree runs.
        Returns sorted virtual indices of the global skyline.
        """
        from ..algorithms.base import ensure_context

        context = ensure_context(context)
        if self._closed:
            raise RuntimeError("pool is closed")
        context.check("pool-setup")
        with self._lock:
            arrays = [np.ascontiguousarray(a, dtype=np.float64)
                      for a in arrays]
            spec = self._register_sharded(arrays)
            parts = [np.asarray(part, dtype=np.intp) for part in parts]
            return self._scatter_gather(
                spec, graph, parts=parts, algorithm=algorithm,
                columns=columns, options=options, context=context,
                phase="pool-shard-merge",
                pool_extra={"shards": len(parts), "merge_only": True})

    def _register_sharded(self, arrays) -> ShardedArraySpec:
        """Register each shard array independently; caller holds the
        lock."""
        offsets = [0]
        specs = []
        for array in arrays:
            specs.append(self.register(array).spec)
            offsets.append(offsets[-1] + int(array.shape[0]))
        return ShardedArraySpec(tuple(specs), tuple(offsets))

    def _scatter_gather(self, array_spec, graph, *, row_tasks=None,
                        parts=None, algorithm: str, columns,
                        options: dict | None,
                        context: ExecutionContext,
                        phase: str = "pool-chunk",
                        pool_extra: dict | None = None) -> np.ndarray:
        """The shared scatter/gather engine behind every pooled query.

        Either evaluates ``row_tasks`` (chunk stage + merge tree) or
        adopts pre-computed ``parts`` (merge tree only).  Caller holds
        the pool lock.  Returns sorted global/virtual indices.
        """
        from ..core.dominance import current_forced_kernel

        query_id = next(self._query_ids)
        self._drain_stale()
        self._cancel_event.clear()
        token = context.cancel
        if token is not None and hasattr(token, "link"):
            token.link(self._cancel_event)
            linked = True
        else:
            linked = False
        base_spec = {
            "array": array_spec,
            "columns": tuple(columns) if columns is not None else None,
            "graph": (graph.names, graph.closure, graph.orders),
            "algorithm": algorithm,
            "options": dict(options or {}),
            "deadline": context.deadline,
            "memory_budget": context.memory_budget,
            "forced_kernel": current_forced_kernel(),
            "thread_budget": WORKER_THREAD_BUDGET,
        }
        worker_stats: list = []
        try:
            if row_tasks is not None:
                specs = [dict(base_spec, rows=rows)
                         for rows in row_tasks]
                context.event("pool-dispatch", chunks=len(specs),
                              workers=self.processes)
                parts, worker_stats = self._execute_tasks(
                    query_id, specs, context, phase)
            chunks = len(parts)
            chunk_sizes = [int(part.size) for part in parts]
            parts, merge_rounds = self._tree_merge(
                query_id, parts, base_spec, context, worker_stats)
            result = np.sort(parts[0]) if parts else \
                np.empty(0, dtype=np.intp)
        except BaseException:
            # wake the workers out of any in-flight sibling task;
            # their (stale) results are discarded by query id
            self._cancel_event.set()
            raise
        finally:
            if linked:
                token.unlink(self._cancel_event)
        self._aggregate_stats(context, worker_stats, chunk_sizes,
                              chunks, merge_rounds, pool_extra)
        context.event("pool-query", chunks=chunks,
                      merge_rounds=merge_rounds,
                      result=int(result.size))
        return result

    def map_queries(self, data, queries, *, algorithm: str = "osdc",
                    chunks: int | None = None, min_chunk: int = 4096,
                    options: dict | None = None,
                    context: ExecutionContext | None = None) -> list:
        """Evaluate many p-expressions against one data set.

        ``data`` is a :class:`~repro.core.relation.Relation` or an
        ``(n, d)`` matrix; ``queries`` is a sequence of p-expressions
        (AST or text), p-graphs, or pre-resolved ``(graph, columns)``
        pairs.  The rank matrix is registered into shared memory
        **once** and every query ships only descriptors -- the "many
        users, one data set" batch shape.

        The batch is fused by :class:`~repro.core.fusion.FusionPlan`
        before it reaches the workers: duplicate preferences dispatch
        one pooled scatter/gather, and distinct preferences sharing a
        column signature dispatch only their common *base* -- the
        members are refined parent-side by replaying shared packed
        ``Better`` masks over the base survivors, so workers receive
        one mask-reuse descriptor set per fused group instead of
        re-deriving every query.  Returns one sorted index array per
        query.
        """
        from ..algorithms.base import ensure_context
        from ..core.fusion import FusionPlan

        context = ensure_context(context)
        ranks, resolved = _resolve_batch(data, queries)
        n = int(ranks.shape[0])
        if chunks is None:
            if min_chunk < 1:
                raise ValueError("min_chunk must be at least 1")
            chunks = max(1, min(self.processes, n // max(1, min_chunk)))
        plan = FusionPlan.build(
            (graph, tuple(columns) if columns is not None
             else tuple(range(graph.d)))
            for graph, columns in resolved)

        def evaluate(graph, key):
            return self.run_query(ranks, graph, algorithm=algorithm,
                                  chunks=chunks, columns=list(key),
                                  options=options, context=context)

        def candidates(indices, key):
            return ranks[np.ix_(indices, list(key))]

        return plan.execute(evaluate=evaluate, candidates=candidates,
                            context=context)

    # -- internals -----------------------------------------------------------
    def _drain_stale(self) -> None:
        """Throw away results of queries that raised mid-flight."""
        while True:
            try:
                self._results.get_nowait()
            except queue_module.Empty:
                return

    def _ensure_workers_alive(self) -> None:
        dead = [p.name for p in self._workers if not p.is_alive()]
        if dead:
            raise RuntimeError(
                f"pool worker(s) died unexpectedly: {', '.join(dead)}")

    def _execute_tasks(self, query_id: int, specs: list[dict],
                       context: ExecutionContext, phase: str):
        """Dispatch ``specs`` and gather their results in task order."""
        from .errors import QueryCancelled

        if self._closed:
            raise QueryCancelled("worker pool closed during query")
        try:
            for task_id, spec in enumerate(specs):
                self._tasks.put((query_id, task_id, spec))
        except Exception:
            if self._closed:
                raise QueryCancelled("worker pool closed during query")
            raise
        results: list = [None] * len(specs)
        stats: list = []
        pending = set(range(len(specs)))
        while pending:
            context.check(phase)
            try:
                item = self._results.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                if self._closed:
                    raise QueryCancelled("worker pool closed during query")
                self._ensure_workers_alive()
                continue
            item_query, task_id, worker_id, ok, payload, task_stats = item
            if item_query != query_id:
                continue  # stale result of an aborted earlier query
            if not ok:
                raise payload
            results[task_id] = payload
            stats.append((worker_id, task_stats))
            pending.discard(task_id)
        return results, stats

    def _tree_merge(self, query_id: int, parts: list, base_spec: dict,
                    context: ExecutionContext, worker_stats: list):
        """Pairwise pooled merges until a single survivor set remains."""
        rounds = 0
        while len(parts) > 1:
            rounds += 1
            specs = []
            carried = []
            for i in range(0, len(parts) - 1, 2):
                union = np.concatenate([parts[i], parts[i + 1]])
                specs.append(dict(base_spec, rows=("indices", union)))
            if len(parts) % 2:
                carried.append(parts[-1])
            context.event("pool-merge", round=rounds, pairs=len(specs))
            merged, stats = self._execute_tasks(
                query_id, specs, context, "pool-merge")
            worker_stats.extend(stats)
            parts = merged + carried
        return parts, rounds

    @staticmethod
    def _aggregate_stats(context: ExecutionContext, worker_stats: list,
                         chunk_sizes: list[int], chunks: int,
                         merge_rounds: int,
                         pool_extra: dict | None = None) -> None:
        stats = context.stats
        if stats is None:
            return
        per_worker: dict[int, int] = {}
        kernel = None
        for worker_id, task_stats in worker_stats:
            stats.merge(task_stats)
            per_worker[worker_id] = (per_worker.get(worker_id, 0)
                                     + task_stats.dominance_tests)
            if kernel is None:
                kernel = task_stats.extra.get("kernel")
        stats.extra["chunk_skylines"] = chunk_sizes
        if kernel is not None and "kernel" not in stats.extra:
            stats.extra["kernel"] = kernel
        stats.extra["pool"] = {
            "chunks": chunks,
            "merge_rounds": merge_rounds,
            "tasks": len(worker_stats),
            "thread_budget": WORKER_THREAD_BUDGET,
            "per_worker_dominance_tests": {
                str(worker_id): count
                for worker_id, count in sorted(per_worker.items())},
        }
        if pool_extra:
            stats.extra["pool"].update(pool_extra)


def _resolve_batch(data, queries):
    """Normalise ``map_queries`` inputs to (ranks, [(graph, columns)])."""
    from ..core.attributes import orders_signature
    from ..core.expressions import PExpr
    from ..core.parser import parse
    from ..core.pgraph import PGraph
    from ..core.relation import Relation

    if isinstance(data, Relation):
        ranks = data.ranks
        names = data.names
        schema = data.schema
    else:
        ranks = np.ascontiguousarray(data, dtype=np.float64)
        if ranks.ndim != 2:
            raise ValueError("expected a 2-d matrix")
        names = tuple(f"A{j}" for j in range(ranks.shape[1]))
        schema = None

    resolved = []
    for query in queries:
        if isinstance(query, tuple):
            graph, columns = query
            resolved.append((graph, columns))
            continue
        if isinstance(query, str):
            query = parse(query)
        if isinstance(query, PExpr):
            used = query.attributes()
            missing = [name for name in used if name not in names]
            if missing:
                raise KeyError(
                    f"expression uses attributes not in the data: "
                    f"{missing}")
            columns = [names.index(name) for name in used]
            graph = PGraph.from_expression(query, names=used)
            if schema is not None:
                graph = graph.with_orders(orders_signature(
                    [schema[c] for c in columns]))
            resolved.append((graph, columns))
        elif isinstance(query, PGraph):
            columns = [names.index(name) for name in query.names]
            resolved.append((query, columns))
        else:
            raise TypeError(
                f"expected a p-expression, p-graph or (graph, columns) "
                f"pair, got {type(query)}")
    return ranks, resolved


# -- default pool ------------------------------------------------------------

_default_pool: WorkerPool | None = None
_default_lock = threading.Lock()


def get_default_pool(processes: int | None = None) -> WorkerPool:
    """The process-wide warm pool (created lazily, resurrected after a
    :func:`shutdown_default_pool`).  ``processes`` only sizes a pool
    being created; an existing pool is returned as is."""
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool.closed:
            _default_pool = WorkerPool(processes)
        return _default_pool


def shutdown_default_pool() -> None:
    """Close the default pool (it will be recreated on next use)."""
    global _default_pool
    with _default_lock:
        if _default_pool is not None:
            _default_pool.close()
            _default_pool = None
