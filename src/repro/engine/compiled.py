"""Compile-once preference machinery and its LRU cache.

Every p-skyline algorithm hangs off the same per-query artifacts derived
from the p-graph: the :class:`~repro.core.dominance.Dominance` oracle
(whose coverage GEMM matrix costs ``O(d^2)`` Python work to build), the
``≻ext`` extension weights (:class:`~repro.core.extension.ExtensionOrder`),
the topological order, the transitive reduction / depth / root masks, the
weak-order / chain / Pareto specialization flags the planner keys on, and
the restricted sub-graphs PSCREEN descends into.  Before the engine layer
each evaluation call rebuilt all of it from scratch.

:class:`CompiledPreference` builds that machinery exactly once per
p-graph; :class:`PreferenceCache` is a keyed LRU so repeated queries over
the same p-expression skip all preprocessing.  A module-level default
cache backs :func:`compile_preference`, which is what
:meth:`repro.engine.context.ExecutionContext.compiled` resolves through.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from ..core.dominance import Dominance
from ..core.extension import ExtensionOrder
from ..core.pgraph import PGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..algorithms.pscreen import PScreener

__all__ = ["CompiledPreference", "PreferenceCache", "compile_preference",
           "default_cache"]

#: Cache key of a p-graph: attribute names, descendant closure, and the
#: per-attribute order signature (MIN/MAX direction or custom ranking).
CacheKey = tuple[tuple[str, ...], tuple[int, ...], tuple | None]


def graph_key(graph: PGraph) -> CacheKey:
    """The cache key identifying a p-graph.

    Structure alone (names + closure) is not enough: two isomorphic
    p-graphs whose attributes are differently *directed* (``lowest(price)``
    vs ``highest(price)``) or carry different custom total orders denote
    different preferences, so they must not share a cache slot.  The
    ``orders`` signature (attached by the relation/PREFERRING/SQL layers
    that re-encode raw columns) is therefore part of the key; bare
    rank-matrix callers leave it ``None``.
    """
    return (graph.names, graph.closure, graph.orders)


class CompiledPreference:
    """All per-p-graph machinery, built once and shared across queries.

    Instances are immutable after construction except for the two
    memoised factories (:meth:`subgraph`, :meth:`screener`), which are
    lock-protected so a compiled preference can be shared between
    threads.
    """

    __slots__ = ("graph", "dominance", "extension", "topological_order",
                 "is_weak_order", "is_chain", "is_pareto", "roots",
                 "reduction", "depths", "_subgraphs", "_screeners", "_lock")

    def __init__(self, graph: PGraph):
        self.graph = graph
        # prepare() builds the bitmask kernel's dense desc-union table at
        # compile time, so cached preferences never pay it mid-query
        self.dominance = Dominance(graph).prepare()
        self.extension = ExtensionOrder(graph)
        self.topological_order = tuple(graph.topological_order())
        # force the p-graph's lazy structure so cache hits never recompute
        self.roots = graph.roots
        self.reduction = graph.reduction
        self.depths = graph.depths
        # specialization flags the planner and layered evaluator key on
        self.is_pareto = graph.num_edges == 0
        self.is_weak_order = graph.is_weak_order()
        # a chain (total priority order) has descendant-set sizes exactly
        # d-1, d-2, ..., 0 -- the longest one dominates everything below it
        self.is_chain = (graph.d <= 1 or sorted(
            mask.bit_count() for mask in graph.closure
        ) == list(range(graph.d)))
        self._subgraphs: dict[int, PGraph] = {graph.all_mask: graph}
        self._screeners: dict[tuple, "PScreener"] = {}
        self._lock = threading.Lock()

    @property
    def key(self) -> CacheKey:
        return graph_key(self.graph)

    @property
    def d(self) -> int:
        return self.graph.d

    def subgraph(self, mask: int) -> PGraph:
        """The induced sub-p-graph on ``mask``, memoised."""
        with self._lock:
            found = self._subgraphs.get(mask)
            if found is None:
                found = self.graph.restrict(mask)
                self._subgraphs[mask] = found
            return found

    def screener(self, *, use_lowdim: bool = True,
                 dense_cutoff: int = 4096,
                 kernel: str | None = None) -> "PScreener":
        """A memoised :class:`~repro.algorithms.pscreen.PScreener` bound
        to this compiled preference (one per option combination)."""
        from ..algorithms.pscreen import PScreener

        options = (use_lowdim, dense_cutoff, kernel)
        with self._lock:
            found = self._screeners.get(options)
            if found is None:
                found = PScreener(self.graph, use_lowdim=use_lowdim,
                                  dense_cutoff=dense_cutoff, compiled=self,
                                  kernel=kernel)
                self._screeners[options] = found
            return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = [name for name, value in
                 (("pareto", self.is_pareto), ("weak-order",
                  self.is_weak_order), ("chain", self.is_chain)) if value]
        suffix = f"; {', '.join(flags)}" if flags else ""
        return f"CompiledPreference({', '.join(self.graph.names)}{suffix})"


class PreferenceCache:
    """A keyed LRU cache of :class:`CompiledPreference` instances.

    ``hits`` / ``misses`` expose the effectiveness of the cache (the
    bench harness reports them); :meth:`clear` resets it, which the
    cold/warm correctness tests rely on.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[CacheKey, CompiledPreference] = \
            OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, graph: PGraph) -> CompiledPreference:
        """The compiled preference for ``graph``, building it on a miss."""
        key = graph_key(graph)
        with self._lock:
            found = self._entries.get(key)
            if found is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return found
        # build outside the lock: compilation is pure and idempotent, so
        # a racing duplicate build is wasteful but harmless
        compiled = CompiledPreference(graph)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return existing
            self.misses += 1
            self._entries[key] = compiled
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return compiled

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Hit/miss/size snapshot (JSON-serialisable)."""
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._entries), "maxsize": self.maxsize}


#: The process-wide default cache behind :func:`compile_preference`.
_DEFAULT_CACHE = PreferenceCache(maxsize=128)


def default_cache() -> PreferenceCache:
    """The process-wide compiled-preference cache."""
    return _DEFAULT_CACHE


def compile_preference(graph: PGraph,
                       cache: PreferenceCache | None = None
                       ) -> CompiledPreference:
    """Compile ``graph`` through ``cache`` (the process default if
    ``None``)."""
    return (cache if cache is not None else _DEFAULT_CACHE).get(graph)
