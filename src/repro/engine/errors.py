"""Engine-level error types.

Every evaluation path (scan, divide-and-conquer, external-memory,
parallel, SQL) raises these -- and only these -- when a query exceeds an
:class:`~repro.engine.context.ExecutionContext` limit, so callers can
catch one exception family regardless of which algorithm the planner
picked.
"""

from __future__ import annotations

__all__ = ["EngineError", "QueryTimeout", "QueryCancelled",
           "MemoryBudgetExceeded"]


class EngineError(RuntimeError):
    """Base class for engine control-flow errors."""


class QueryTimeout(EngineError, TimeoutError):
    """The query's deadline passed before evaluation finished.

    Subclasses :class:`TimeoutError` so generic timeout handlers also
    catch it.
    """


class QueryCancelled(EngineError):
    """The query's cancellation token was triggered mid-evaluation."""


class MemoryBudgetExceeded(EngineError):
    """An operator asked for more tuples in memory than the context's
    ``memory_budget`` allows."""
