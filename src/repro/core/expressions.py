"""P-expression abstract syntax trees.

A *p-expression* (Section 2.1) composes single-attribute preferences with two
binary operators:

* ``&`` -- *prioritized accumulation*: the left operand is infinitely more
  important than the right one;
* ``*`` (the paper's ``⊗``) -- *Pareto accumulation*: both operands are
  equally important.

Both operators are associative and Pareto accumulation is also commutative,
so the AST stores them as flattened n-ary nodes.  No attribute may appear
more than once in a p-expression.

The Python operators ``&`` and ``*`` are overloaded on AST nodes, so
expressions can be written naturally::

    pi = (Att("P") & Att("T")) * Att("M")
"""

from __future__ import annotations

from typing import Iterator, Sequence

__all__ = [
    "PExpr",
    "Att",
    "Pareto",
    "Prioritized",
    "pareto",
    "prioritized",
    "sky",
    "lex",
    "RepeatedAttributeError",
]


class RepeatedAttributeError(ValueError):
    """Raised when an attribute occurs more than once in a p-expression."""


class PExpr:
    """Base class for p-expression nodes.

    Subclasses are immutable and hashable; equality is structural, with
    Pareto children compared as multisets (Pareto accumulation is
    commutative) and prioritized children compared as sequences.
    """

    __slots__ = ()

    def attributes(self) -> tuple[str, ...]:
        """Return ``Var(pi)`` in left-to-right order of first appearance."""
        return tuple(self._iter_attributes())

    def _iter_attributes(self) -> Iterator[str]:
        raise NotImplementedError

    def edges(self) -> set[tuple[str, str]]:
        """Return the edge set of the p-graph ``Gamma_pi`` (Definition 2)."""
        raise NotImplementedError

    def canonical(self) -> "PExpr":
        """Return a canonical structurally-equal form.

        Nested nodes of the same operator are flattened and Pareto children
        are sorted by their smallest attribute name, which makes the
        canonical string representation unique for a given preference
        relation *syntax tree shape* (two different trees inducing the same
        p-graph may still differ; use :meth:`edges` for semantic equality,
        per Proposition 2).
        """
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------
    def __and__(self, other: "PExpr") -> "PExpr":
        return prioritized(self, other)

    def __mul__(self, other: "PExpr") -> "PExpr":
        return pareto(self, other)

    # -- misc ---------------------------------------------------------------
    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"

    def _validate(self) -> None:
        names = list(self._iter_attributes())
        seen: set[str] = set()
        for name in names:
            if name in seen:
                raise RepeatedAttributeError(
                    f"attribute {name!r} appears more than once"
                )
            seen.add(name)


class Att(PExpr):
    """A leaf: a single-attribute preference identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError("attribute name must be a non-empty string")
        self.name = name

    def _iter_attributes(self) -> Iterator[str]:
        yield self.name

    def edges(self) -> set[tuple[str, str]]:
        return set()

    def canonical(self) -> "PExpr":
        return self

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Att) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Att", self.name))


class _Composite(PExpr):
    """Shared machinery for the two accumulation operators."""

    __slots__ = ("children",)
    _symbol = "?"

    def __init__(self, children: Sequence[PExpr]):
        flat: list[PExpr] = []
        for child in children:
            if not isinstance(child, PExpr):
                raise TypeError(
                    f"p-expression operands must be PExpr, got {child!r}"
                )
            if isinstance(child, type(self)):
                flat.extend(child.children)
            else:
                flat.append(child)
        if len(flat) < 2:
            raise ValueError(
                f"{type(self).__name__} needs at least two operands"
            )
        self.children = tuple(flat)
        self._validate()

    def _iter_attributes(self) -> Iterator[str]:
        for child in self.children:
            yield from child._iter_attributes()

    def __str__(self) -> str:
        parts = []
        for child in self.children:
            text = str(child)
            if isinstance(child, _Composite):
                text = f"({text})"
            parts.append(text)
        return f" {self._symbol} ".join(parts)

    def __hash__(self) -> int:
        raise NotImplementedError


class Pareto(_Composite):
    """Pareto accumulation ``pi_1 ⊗ pi_2 ⊗ ...`` (equal importance)."""

    __slots__ = ()
    _symbol = "*"

    def canonical(self) -> "PExpr":
        children = sorted(
            (child.canonical() for child in self.children),
            key=lambda c: min(c.attributes()),
        )
        return Pareto(children)

    def edges(self) -> set[tuple[str, str]]:
        result: set[tuple[str, str]] = set()
        for child in self.children:
            result |= child.edges()
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pareto):
            return False
        if len(self.children) != len(other.children):
            return False
        mine = sorted(self.children, key=str)
        theirs = sorted(other.children, key=str)
        return mine == theirs

    def __hash__(self) -> int:
        return hash(("Pareto", frozenset(str(c) for c in self.children)))


class Prioritized(_Composite):
    """Prioritized accumulation ``pi_1 & pi_2 & ...`` (left most important)."""

    __slots__ = ()
    _symbol = "&"

    def canonical(self) -> "PExpr":
        return Prioritized([child.canonical() for child in self.children])

    def edges(self) -> set[tuple[str, str]]:
        result: set[tuple[str, str]] = set()
        groups = [child.attributes() for child in self.children]
        for child in self.children:
            result |= child.edges()
        for i, upper in enumerate(groups):
            for lower in groups[i + 1:]:
                result |= {(a, b) for a in upper for b in lower}
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Prioritized)
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash(("Prioritized", tuple(str(c) for c in self.children)))


def pareto(*exprs: PExpr) -> PExpr:
    """Pareto-accumulate ``exprs`` (returns the sole operand unchanged)."""
    if len(exprs) == 1:
        return exprs[0]
    return Pareto(exprs)


def prioritized(*exprs: PExpr) -> PExpr:
    """Prioritize ``exprs`` left-to-right (most important first)."""
    if len(exprs) == 1:
        return exprs[0]
    return Prioritized(exprs)


def sky(names: Sequence[str]) -> PExpr:
    """The plain-skyline p-expression ``A_1 ⊗ A_2 ⊗ ...`` (Section 2.2)."""
    atts = [Att(name) for name in names]
    return pareto(*atts)


def lex(names: Sequence[str]) -> PExpr:
    """The lexicographic p-expression ``A_1 & A_2 & ...``."""
    atts = [Att(name) for name in names]
    return prioritized(*atts)
