"""The relation substrate: an in-memory, NumPy-backed table.

A :class:`Relation` couples a schema (a sequence of
:class:`~repro.core.attributes.Attribute`) with a dense ``(n, d)`` rank
matrix in which smaller values are better on every column.  All query
algorithms operate on the rank matrix; the relation keeps the original
values so results can be materialised back into records.
"""

from __future__ import annotations

import csv
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .attributes import Attribute, lowest

__all__ = ["Relation"]


class Relation:
    """An immutable in-memory relation instance ``D``.

    Parameters
    ----------
    schema:
        The attributes, in column order.
    ranks:
        ``(n, d)`` float64 matrix of encoded ranks (smaller is better).
    values:
        Optional ``(n, d)`` object array of the original values, used only
        for presentation; defaults to decoding the ranks.
    """

    __slots__ = ("schema", "ranks", "_values")

    def __init__(self, schema: Sequence[Attribute], ranks: np.ndarray,
                 values: np.ndarray | None = None):
        # one C-contiguous conversion here means no per-kernel layout
        # conversion downstream: every algorithm sees the same buffer
        ranks = np.ascontiguousarray(ranks, dtype=np.float64)
        if ranks.ndim != 2:
            raise ValueError("ranks must be a 2-d matrix")
        if ranks.shape[1] != len(schema):
            raise ValueError(
                f"rank matrix has {ranks.shape[1]} columns but the schema "
                f"declares {len(schema)} attributes"
            )
        finite = np.isfinite(ranks)
        if not finite.all():
            # pinpoint the first bad cell -- without this, bad rows
            # surface later as confusing kernel output in dominance.py
            row, col = np.argwhere(~finite)[0]
            names = [attribute.name for attribute in schema]
            raise ValueError(
                f"rank matrix contains non-finite values: "
                f"{ranks[row, col]!r} at row {row}, attribute "
                f"{names[col]!r}")
        names = [attribute.name for attribute in schema]
        if len(set(names)) != len(names):
            seen: set[str] = set()
            duplicates = sorted({name for name in names
                                 if name in seen or seen.add(name)})
            raise ValueError(
                "schema contains duplicate attribute names: "
                f"{duplicates}")
        self.schema = tuple(schema)
        self.ranks = ranks
        self.ranks.setflags(write=False)
        self._values = values

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any] | Sequence[Any]],
                     schema: Sequence[Attribute]) -> "Relation":
        """Build a relation from dict- or tuple-shaped records."""
        schema = tuple(schema)
        rows = list(records)
        columns: list[list[Any]] = [[] for _ in schema]
        for row in rows:
            if isinstance(row, Mapping):
                for j, attribute in enumerate(schema):
                    if attribute.name not in row:
                        raise ValueError(
                            f"record is missing attribute {attribute.name!r}"
                        )
                    columns[j].append(row[attribute.name])
            else:
                if len(row) != len(schema):
                    raise ValueError(
                        f"record of arity {len(row)} does not match the "
                        f"schema arity {len(schema)}"
                    )
                for j, value in enumerate(row):
                    columns[j].append(value)
        if rows:
            ranks = np.column_stack(
                [attribute.encode(column)
                 for attribute, column in zip(schema, columns)]
            )
            values = np.empty((len(rows), len(schema)), dtype=object)
            for j, column in enumerate(columns):
                values[:, j] = column
        else:
            ranks = np.empty((0, len(schema)), dtype=np.float64)
            values = np.empty((0, len(schema)), dtype=object)
        return cls(schema, ranks, values)

    @classmethod
    def from_array(cls, array: np.ndarray,
                   names: Sequence[str] | None = None,
                   schema: Sequence[Attribute] | None = None) -> "Relation":
        """Wrap a numeric array; by default every column prefers low values."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("expected a 2-d array")
        if schema is None:
            if names is None:
                names = [f"A{j}" for j in range(array.shape[1])]
            schema = [lowest(name) for name in names]
        ranks = np.column_stack(
            [attribute.encode(array[:, j])
             for j, attribute in enumerate(schema)]
        ) if array.shape[1] else array.copy()
        return cls(schema, ranks)

    @classmethod
    def from_csv(cls, path: str, schema: Sequence[Attribute],
                 delimiter: str = ",") -> "Relation":
        """Load a relation from a CSV file with a header row.

        Numeric columns are parsed as floats; ranked attributes keep their
        raw string values.
        """
        schema = tuple(schema)
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter)
            records = []
            for row in reader:
                record = {}
                for attribute in schema:
                    raw = row.get(attribute.name)
                    if raw is None:
                        raise ValueError(
                            f"CSV is missing column {attribute.name!r}"
                        )
                    if attribute.order:
                        record[attribute.name] = raw
                    else:
                        record[attribute.name] = float(raw)
                records.append(record)
        return cls.from_records(records, schema)

    # -- accessors -------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.schema)

    def __len__(self) -> int:
        return self.ranks.shape[0]

    @property
    def arity(self) -> int:
        return self.ranks.shape[1]

    def column(self, name: str) -> np.ndarray:
        """The rank column for ``name``."""
        return self.ranks[:, self._index(name)]

    def _index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown attribute {name!r}") from None

    def take(self, indices: np.ndarray | Sequence[int]) -> "Relation":
        """A new relation containing the given rows (in the given order)."""
        indices = np.asarray(indices, dtype=np.intp)
        values = self._values[indices] if self._values is not None else None
        # fancy indexing already yields a fresh contiguous matrix
        return Relation(self.schema, self.ranks[indices], values)

    def project(self, names: Sequence[str]) -> "Relation":
        """A new relation with only the given columns, in the given order."""
        cols = [self._index(name) for name in names]
        values = self._values[:, cols] if self._values is not None else None
        schema = [self.schema[c] for c in cols]
        return Relation(schema, self.ranks[:, cols], values)

    def head(self, count: int = 10) -> "Relation":
        """The first ``count`` tuples (fewer if the relation is smaller)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.take(np.arange(min(count, len(self)), dtype=np.intp))

    def sort_by(self, name: str, best_first: bool = True) -> "Relation":
        """Tuples ordered by one attribute's *preference* (best first by
        default) -- a stable sort on the rank column."""
        column = self.column(name)
        order = np.argsort(column, kind="stable")
        if not best_first:
            order = order[::-1]
        return self.take(order)

    @classmethod
    def concat(cls, relations: Sequence["Relation"]) -> "Relation":
        """Stack relations with identical schemas."""
        if not relations:
            raise ValueError("nothing to concatenate")
        first = relations[0]
        for other in relations[1:]:
            if other.schema != first.schema:
                raise ValueError("schemas differ; cannot concatenate")
        ranks = np.vstack([relation.ranks for relation in relations])
        values = None
        if all(relation._values is not None for relation in relations):
            values = np.vstack([relation._values
                                for relation in relations])
        return cls(first.schema, ranks, values)

    def __iter__(self):
        """Iterate over tuples as dicts of original values."""
        return iter(self.to_records())

    def to_records(self) -> list[dict[str, Any]]:
        """Materialise the relation as a list of dicts of original values."""
        if self._values is not None:
            return [
                {attribute.name: self._values[i, j]
                 for j, attribute in enumerate(self.schema)}
                for i in range(len(self))
            ]
        decoded = [attribute.decode(self.ranks[:, j])
                   for j, attribute in enumerate(self.schema)]
        return [
            {attribute.name: decoded[j][i]
             for j, attribute in enumerate(self.schema)}
            for i in range(len(self))
        ]

    def __repr__(self) -> str:
        return (f"Relation({len(self)} tuples over "
                f"[{', '.join(self.names)}])")
