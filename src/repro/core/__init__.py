"""Core preference model: attributes, p-expressions, p-graphs, dominance."""

from .attributes import Attribute, Direction, highest, lowest, ranked
from .bitsets import indices_of, iter_bits, mask_of
from .dominance import Dominance
from .expressions import (Att, Pareto, PExpr, Prioritized, lex, pareto,
                          prioritized, sky)
from .extension import ExtensionOrder
from .parser import ParseError, parse
from .pgraph import CyclicPriorityError, PGraph
from .relation import Relation

__all__ = [
    "Attribute",
    "Direction",
    "lowest",
    "highest",
    "ranked",
    "Att",
    "PExpr",
    "Pareto",
    "Prioritized",
    "pareto",
    "prioritized",
    "sky",
    "lex",
    "parse",
    "ParseError",
    "PGraph",
    "CyclicPriorityError",
    "Dominance",
    "ExtensionOrder",
    "Relation",
    "iter_bits",
    "mask_of",
    "indices_of",
]
