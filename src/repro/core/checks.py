"""Result verification: assert that an index set really is ``M_pi(D)``.

Useful for fuzzing, for validating third-party algorithm implementations
registered into :data:`repro.algorithms.REGISTRY`, and as a safety net in
pipelines where a wrong preference result is costly.
"""

from __future__ import annotations

import numpy as np

from .dominance import Dominance
from .pgraph import PGraph

__all__ = ["VerificationError", "verify_pskyline"]


class VerificationError(AssertionError):
    """The claimed result is not the p-skyline; details in the message."""


def verify_pskyline(ranks: np.ndarray, graph: PGraph,
                    indices: np.ndarray, *, chunk: int = 256) -> None:
    """Raise :class:`VerificationError` unless ``indices`` = ``M_pi``.

    Checks three properties with vectorised scans:

    1. indices are in range, sorted and unique;
    2. *soundness* -- no claimed tuple is dominated by anything;
    3. *completeness* -- every unclaimed tuple is dominated by something.

    Cost is ``O(n * |indices| )`` kernel work; intended for tests and
    audits, not hot paths.
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    indices = np.asarray(indices, dtype=np.intp)
    n = ranks.shape[0]
    if indices.size != np.unique(indices).size:
        raise VerificationError("result contains duplicate indices")
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise VerificationError("result contains out-of-range indices")
    if not np.all(np.diff(indices) > 0):
        raise VerificationError("result indices are not sorted")
    dominance = Dominance(graph)
    claimed = np.zeros(n, dtype=bool)
    claimed[indices] = True
    # soundness: claimed tuples survive screening against everything
    survivors = dominance.screen_block(ranks[indices], ranks, chunk=chunk)
    if not survivors.all():
        bad = indices[~survivors][:5]
        raise VerificationError(
            f"claimed tuples {bad.tolist()} are dominated (not maximal)"
        )
    # completeness: unclaimed tuples are dominated by some claimed tuple
    # (dominators of any tuple are always maximal-dominated chains ending
    # in the p-skyline, so screening against the claimed set suffices)
    others = np.flatnonzero(~claimed)
    if others.size:
        undominated = dominance.screen_block(ranks[others], ranks[indices],
                                             chunk=chunk)
        if undominated.any():
            # such a tuple is either maximal itself or dominated by an
            # unclaimed maximal tuple; either way the result is incomplete
            bad = others[undominated][:5]
            raise VerificationError(
                f"tuples {bad.tolist()} are not dominated by the claimed "
                "result: the result misses maximal tuples"
            )
