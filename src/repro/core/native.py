"""Compiled ``native`` dominance kernels (optional numba backend).

The packed-bitmask family (:mod:`repro.core.dominance`) already keeps
its temporaries in a reusable workspace arena, but every ``screen_block``
call still pays a handful of NumPy ufunc launches per attribute and a
full ``(block, against)`` mask matrix of memory traffic per chunk.  This
module compiles the same Proposition 1 test --

    dominated(u, v)  =  ((b_uv | b_vu) != 0)
                      & ((b_vu & ~desc_union(b_uv)) == 0)

-- into tight machine loops with ``numba.njit(cache=True, nogil=True)``:

* :func:`screen_chunk` fuses packing and evaluation per *pair* with a
  per-row early exit (a row stops scanning ``against`` at its first
  dominator), writing into a caller-owned ``dominated`` vector -- the
  steady-state hot path performs zero Python-level allocations;
* :func:`pair_flags` fills a full ``(b, a)`` flag matrix for the
  ``dominators_mask`` / ``dominated_mask`` entry points;
* :func:`pack_masks` / :func:`eval_any` split packing from evaluation so
  :func:`~repro.core.dominance.screen_block_multi` can pack each block
  once and replay it for many p-graphs (the fused batch path);
* each kernel also exists as a ``*_parallel`` variant whose row loop is
  a ``numba.prange`` (compiled with ``parallel=True``): rows are
  independent -- every write lands at the row's own index -- so the
  row-tile decomposition is race-free, per-row early exits survive
  inside each tile, and the result is bit-identical to the serial
  kernel at any thread count.  The worker thread count is applied per
  call through :func:`set_thread_count` (bounded by the budget policy
  in :mod:`repro.engine.threads`).

All mask operands are ``uint64`` (one compiled signature per function,
``d <= 64`` guaranteed by the caller); descendant unions come from the
dense ``desc_union[mask]`` table when the dimensionality permits one and
from an OR-reduction over set bits otherwise.

**Import is cheap and never touches numba.**  The first call to
:func:`availability` probes lazily: it imports numba, JIT-compiles and
warms every kernel on a miniature workload, and records the outcome.
When numba is missing or compilation fails the probe leaves the
pure-Python source functions in place (they are njit-compatible Python
and remain callable -- the test suite uses them to exercise the native
code path without a compiler) and reports a precise reason string
(``"numba missing"`` vs ``"JIT compile failed: ..."``) that
:func:`~repro.core.dominance.select_kernel` callers surface in trace
events and ``repro-skyline bench-kernels --list-backends``.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["availability", "available", "unavailable_reason", "warmup",
           "pair_flags", "screen_chunk", "pack_masks", "eval_any",
           "screen_chunk_parallel", "pair_flags_parallel",
           "pack_masks_parallel", "eval_any_parallel",
           "parallel_availability", "parallel_available",
           "set_thread_count"]

_PROBE_LOCK = threading.Lock()
_AVAILABLE: bool | None = None  # None = not probed yet
_REASON: str | None = None
_PARALLEL_AVAILABLE: bool | None = None
_PARALLEL_REASON: str | None = None

#: Rebound to ``numba.prange`` by ``_probe`` before the ``*_parallel``
#: sources are compiled with ``parallel=True`` (numba resolves the
#: global at compile time).  The interpreted fallback keeps plain
#: ``range``: the parallel sources then *are* the serial sources, which
#: is exactly the single-thread parity the thread-equivalence suite
#: pins.
prange = range

#: Placeholder passed for the dense table when ``d`` exceeds the dense
#: table limit (numba cannot take ``None`` for an array argument).
EMPTY_TABLE = np.zeros(1, dtype=np.uint64)


# -- kernel sources ----------------------------------------------------------
# Plain-Python definitions restricted to the njit-compatible subset.
# ``_probe`` rebinds the module-level names to their compiled versions
# when numba is importable and compilation succeeds.

def _screen_chunk(block, against, closures, table, use_table,
                  dominated):
    """Mark rows of ``block`` dominated by some row of ``against``.

    ``dominated`` is a ``(b,)`` boolean vector updated in place; rows
    already marked are skipped, and each remaining row stops scanning at
    its first dominator (per-row early exit).
    """
    b, d = block.shape
    a = against.shape[0]
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in range(b):
        if dominated[i]:
            continue
        for j in range(a):
            buv = zero  # Better(against[j], block[i])
            bvu = zero  # Better(block[i], against[j])
            for k in range(d):
                x = block[i, k]
                y = against[j, k]
                if x > y:
                    buv |= one << np.uint64(k)
                elif x < y:
                    bvu |= one << np.uint64(k)
            if (buv | bvu) == zero:
                continue  # indistinguishable
            if use_table:
                union = table[buv]
            else:
                union = zero
                mask = buv
                k = 0
                while mask != zero:
                    if (mask & one) != zero:
                        union |= closures[k]
                    mask >>= one
                    k += 1
            if (bvu & ~union) == zero:
                dominated[i] = True
                break


def _pair_flags(block, against, closures, table, use_table, out):
    """Fill ``out[i, j] = against[j] dominates block[i]`` (no early exit)."""
    b, d = block.shape
    a = against.shape[0]
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in range(b):
        for j in range(a):
            buv = zero
            bvu = zero
            for k in range(d):
                x = block[i, k]
                y = against[j, k]
                if x > y:
                    buv |= one << np.uint64(k)
                elif x < y:
                    bvu |= one << np.uint64(k)
            if (buv | bvu) == zero:
                out[i, j] = False
                continue
            if use_table:
                union = table[buv]
            else:
                union = zero
                mask = buv
                k = 0
                while mask != zero:
                    if (mask & one) != zero:
                        union |= closures[k]
                    mask >>= one
                    k += 1
            out[i, j] = (bvu & ~union) == zero


def _pack_masks(block, against, buv, bvu):
    """Pack pairwise ``Better`` masks into caller-owned uint64 matrices.

    ``buv[i, j] = Better(against[j], block[i])`` and ``bvu[i, j] =
    Better(block[i], against[j])`` -- graph-independent, so one packing
    serves every p-graph over the same columns (the fused replay loop).
    """
    b, d = block.shape
    a = against.shape[0]
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in range(b):
        for j in range(a):
            mu = zero
            mv = zero
            for k in range(d):
                x = block[i, k]
                y = against[j, k]
                if x > y:
                    mu |= one << np.uint64(k)
                elif x < y:
                    mv |= one << np.uint64(k)
            buv[i, j] = mu
            bvu[i, j] = mv


def _eval_any(buv, bvu, closures, table, use_table, dominated):
    """Proposition 1 over pre-packed masks, any-reduced per row.

    Updates ``dominated`` in place with a per-row early exit, skipping
    rows already marked (mirrors :func:`_screen_chunk` on packed input).
    """
    b, a = buv.shape
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in range(b):
        if dominated[i]:
            continue
        for j in range(a):
            mu = buv[i, j]
            mv = bvu[i, j]
            if (mu | mv) == zero:
                continue
            if use_table:
                union = table[mu]
            else:
                union = zero
                mask = mu
                k = 0
                while mask != zero:
                    if (mask & one) != zero:
                        union |= closures[k]
                    mask >>= one
                    k += 1
            if (mv & ~union) == zero:
                dominated[i] = True
                break


# -- parallel (prange) kernel sources ----------------------------------------
# Row-tile decompositions of the serial kernels: the outer row loop is a
# ``prange``, every write lands at the row's own index and the per-row
# early exits live inside each tile, so the compiled ``parallel=True``
# versions are race-free and bit-identical to the serial kernels.

def _screen_chunk_parallel(block, against, closures, table, use_table,
                           dominated):
    """:func:`_screen_chunk` with the row loop as a ``prange``."""
    b, d = block.shape
    a = against.shape[0]
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in prange(b):
        if dominated[i]:
            continue
        for j in range(a):
            buv = zero
            bvu = zero
            for k in range(d):
                x = block[i, k]
                y = against[j, k]
                if x > y:
                    buv |= one << np.uint64(k)
                elif x < y:
                    bvu |= one << np.uint64(k)
            if (buv | bvu) == zero:
                continue
            if use_table:
                union = table[buv]
            else:
                union = zero
                mask = buv
                k = 0
                while mask != zero:
                    if (mask & one) != zero:
                        union |= closures[k]
                    mask >>= one
                    k += 1
            if (bvu & ~union) == zero:
                dominated[i] = True
                break


def _pair_flags_parallel(block, against, closures, table, use_table,
                         out):
    """:func:`_pair_flags` with the row loop as a ``prange``."""
    b, d = block.shape
    a = against.shape[0]
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in prange(b):
        for j in range(a):
            buv = zero
            bvu = zero
            for k in range(d):
                x = block[i, k]
                y = against[j, k]
                if x > y:
                    buv |= one << np.uint64(k)
                elif x < y:
                    bvu |= one << np.uint64(k)
            if (buv | bvu) == zero:
                out[i, j] = False
                continue
            if use_table:
                union = table[buv]
            else:
                union = zero
                mask = buv
                k = 0
                while mask != zero:
                    if (mask & one) != zero:
                        union |= closures[k]
                    mask >>= one
                    k += 1
            out[i, j] = (bvu & ~union) == zero


def _pack_masks_parallel(block, against, buv, bvu):
    """:func:`_pack_masks` with the row loop as a ``prange``."""
    b, d = block.shape
    a = against.shape[0]
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in prange(b):
        for j in range(a):
            mu = zero
            mv = zero
            for k in range(d):
                x = block[i, k]
                y = against[j, k]
                if x > y:
                    mu |= one << np.uint64(k)
                elif x < y:
                    mv |= one << np.uint64(k)
            buv[i, j] = mu
            bvu[i, j] = mv


def _eval_any_parallel(buv, bvu, closures, table, use_table, dominated):
    """:func:`_eval_any` with the row loop as a ``prange``."""
    b, a = buv.shape
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in prange(b):
        if dominated[i]:
            continue
        for j in range(a):
            mu = buv[i, j]
            mv = bvu[i, j]
            if (mu | mv) == zero:
                continue
            if use_table:
                union = table[mu]
            else:
                union = zero
                mask = mu
                k = 0
                while mask != zero:
                    if (mask & one) != zero:
                        union |= closures[k]
                    mask >>= one
                    k += 1
            if (mv & ~union) == zero:
                dominated[i] = True
                break


pair_flags = _pair_flags
screen_chunk = _screen_chunk
pack_masks = _pack_masks
eval_any = _eval_any
pair_flags_parallel = _pair_flags_parallel
screen_chunk_parallel = _screen_chunk_parallel
pack_masks_parallel = _pack_masks_parallel
eval_any_parallel = _eval_any_parallel


# -- probe / availability ----------------------------------------------------

def warmup() -> None:
    """Run every kernel on a miniature workload.

    Under numba this triggers (or loads, with ``cache=True``) the JIT
    compilation of each kernel's single ``uint64``/``float64``
    signature; pool workers call it once at spawn so queries never pay
    compile latency.
    """
    block = np.asarray([[0.0, 1.0], [1.0, 0.0]])
    against = np.asarray([[0.0, 0.0]])
    closures = np.zeros(2, dtype=np.uint64)
    table = np.zeros(4, dtype=np.uint64)
    for use_table in (True, False):
        dominated = np.zeros(2, dtype=bool)
        screen_chunk(block, against, closures, table, use_table,
                     dominated)
        out = np.zeros((2, 1), dtype=bool)
        pair_flags(block, against, closures, table, use_table, out)
        if not (dominated == out[:, 0]).all():  # pragma: no cover
            raise AssertionError("native kernels disagree at warmup")
        buv = np.zeros((2, 1), dtype=np.uint64)
        bvu = np.zeros((2, 1), dtype=np.uint64)
        pack_masks(block, against, buv, bvu)
        packed = np.zeros(2, dtype=bool)
        eval_any(buv, bvu, closures, table, use_table, packed)
        if not (packed == dominated).all():  # pragma: no cover
            raise AssertionError("native packed replay disagrees at warmup")


def _warm_parallel() -> None:
    """Run every ``*_parallel`` kernel on a miniature workload.

    Under numba this triggers (or loads) the ``parallel=True``
    compilation *and* spins up the threading layer, so neither cost is
    ever paid on the query path; pool workers inherit the warm cache at
    spawn.  The serial kernels are the reference the parallel results
    must match bit for bit.
    """
    block = np.asarray([[0.0, 1.0], [1.0, 0.0]])
    against = np.asarray([[0.0, 0.0]])
    closures = np.zeros(2, dtype=np.uint64)
    table = np.zeros(4, dtype=np.uint64)
    for use_table in (True, False):
        serial = np.zeros(2, dtype=bool)
        screen_chunk(block, against, closures, table, use_table, serial)
        dominated = np.zeros(2, dtype=bool)
        screen_chunk_parallel(block, against, closures, table, use_table,
                              dominated)
        out = np.zeros((2, 1), dtype=bool)
        pair_flags_parallel(block, against, closures, table, use_table,
                            out)
        if not ((dominated == serial).all()
                and (out[:, 0] == serial).all()):  # pragma: no cover
            raise AssertionError("parallel kernels disagree at warmup")
        buv = np.zeros((2, 1), dtype=np.uint64)
        bvu = np.zeros((2, 1), dtype=np.uint64)
        pack_masks_parallel(block, against, buv, bvu)
        packed = np.zeros(2, dtype=bool)
        eval_any_parallel(buv, bvu, closures, table, use_table, packed)
        if not (packed == serial).all():  # pragma: no cover
            raise AssertionError(
                "parallel packed replay disagrees at warmup")


def _probe() -> None:
    global _AVAILABLE, _REASON, _PARALLEL_AVAILABLE, _PARALLEL_REASON
    global pair_flags, screen_chunk, pack_masks, eval_any
    global pair_flags_parallel, screen_chunk_parallel
    global pack_masks_parallel, eval_any_parallel, prange
    try:
        import numba
    except Exception as error:
        _AVAILABLE = False
        _PARALLEL_AVAILABLE = False
        _REASON = f"numba missing ({type(error).__name__}: {error})"
        _PARALLEL_REASON = _REASON
        return
    try:
        jit = numba.njit(cache=True, nogil=True)
        compiled = {name: jit(function) for name, function in (
            ("pair_flags", _pair_flags),
            ("screen_chunk", _screen_chunk),
            ("pack_masks", _pack_masks),
            ("eval_any", _eval_any))}
        pair_flags = compiled["pair_flags"]
        screen_chunk = compiled["screen_chunk"]
        pack_masks = compiled["pack_masks"]
        eval_any = compiled["eval_any"]
        warmup()
    except Exception as error:
        # leave the pure-Python sources bound: never half-compiled
        pair_flags = _pair_flags
        screen_chunk = _screen_chunk
        pack_masks = _pack_masks
        eval_any = _eval_any
        _AVAILABLE = False
        _PARALLEL_AVAILABLE = False
        message = f"{type(error).__name__}: {error}"
        _REASON = f"JIT compile failed: {message[:300]}"
        _PARALLEL_REASON = _REASON
        return
    _AVAILABLE = True
    _REASON = None
    # the prange layer compiles separately: a broken threading layer must
    # not take the serial compiled kernels down with it
    try:
        prange = numba.prange  # resolved at compile time by parallel=True
        pjit = numba.njit(cache=True, nogil=True, parallel=True)
        parallel = {name: pjit(function) for name, function in (
            ("pair_flags_parallel", _pair_flags_parallel),
            ("screen_chunk_parallel", _screen_chunk_parallel),
            ("pack_masks_parallel", _pack_masks_parallel),
            ("eval_any_parallel", _eval_any_parallel))}
        pair_flags_parallel = parallel["pair_flags_parallel"]
        screen_chunk_parallel = parallel["screen_chunk_parallel"]
        pack_masks_parallel = parallel["pack_masks_parallel"]
        eval_any_parallel = parallel["eval_any_parallel"]
        _warm_parallel()
    except Exception as error:
        prange = range
        pair_flags_parallel = _pair_flags_parallel
        screen_chunk_parallel = _screen_chunk_parallel
        pack_masks_parallel = _pack_masks_parallel
        eval_any_parallel = _eval_any_parallel
        _PARALLEL_AVAILABLE = False
        message = f"{type(error).__name__}: {error}"
        _PARALLEL_REASON = f"parallel JIT compile failed: {message[:300]}"
        return
    _PARALLEL_AVAILABLE = True
    _PARALLEL_REASON = None


def availability() -> tuple[bool, str | None]:
    """``(available, reason)`` -- probing (and JIT-warming) on first call.

    ``reason`` is ``None`` when the compiled backend is usable, else a
    precise explanation: ``"numba missing (...)"`` or
    ``"JIT compile failed: ..."``.
    """
    if _AVAILABLE is None:
        with _PROBE_LOCK:
            if _AVAILABLE is None:
                _probe()
    return bool(_AVAILABLE), _REASON


def available() -> bool:
    """True iff the compiled backend imported and JIT-warmed cleanly."""
    return availability()[0]


def unavailable_reason() -> str | None:
    """Why the backend is off (``None`` when it is on)."""
    return availability()[1]


def parallel_availability() -> tuple[bool, str | None]:
    """``(available, reason)`` for the ``prange`` layer.

    Compiled separately from the serial kernels (a broken threading
    layer degrades only the parallel variants); probing is shared with
    :func:`availability`.
    """
    availability()
    return bool(_PARALLEL_AVAILABLE), _PARALLEL_REASON


def parallel_available() -> bool:
    """True iff the compiled ``prange`` variants imported and warmed."""
    return parallel_availability()[0]


def set_thread_count(threads: int) -> int:
    """Bound numba's worker-thread count for the next parallel kernels.

    Returns the count actually applied.  numba caps
    ``set_num_threads`` at the launch-time ``NUMBA_NUM_THREADS``, so
    the request is clamped rather than erroring; without the compiled
    parallel layer this is a no-op returning 1 (the interpreted
    fallback is serial by construction).
    """
    threads = max(1, int(threads))
    if not parallel_available():
        return 1
    import numba

    limit = getattr(numba.config, "NUMBA_NUM_THREADS", 1)
    applied = max(1, min(threads, int(limit)))
    try:
        numba.set_num_threads(applied)
    except Exception:  # pragma: no cover - layer-specific edge cases
        return 1
    return applied
