"""Text parser for p-expressions.

Grammar (mirroring the paper's Section 2.1, with explicit precedence)::

    pexpr   -> pareto
    pareto  -> prio ( ('*' | '⊗') prio )*
    prio    -> atom ( '&' atom )*
    atom    -> NAME | '(' pexpr ')'

``&`` binds tighter than ``*``, so ``P & T * M`` parses as ``(P & T) * M``
-- matching how the paper always writes prioritized chains as tight units.
Attribute names are ``[A-Za-z_][A-Za-z0-9_]*``.  Both ``*`` and the paper's
``⊗`` symbol are accepted for Pareto accumulation.
"""

from __future__ import annotations

import re
from typing import NamedTuple

from .expressions import Att, PExpr, pareto, prioritized

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed p-expression text, with position information."""


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<pareto>[*⊗])"
    r"|(?P<prio>&)"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\)))"
)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.lastgroup is None:
            remainder = text[pos:].lstrip()
            if not remainder:
                break
            raise ParseError(
                f"unexpected character {remainder[0]!r} at position {pos}"
            )
        tokens.append(_Token(match.lastgroup, match.group(match.lastgroup),
                             match.start(match.lastgroup)))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.text!r}")
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.advance()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.text!r} at position "
                f"{token.pos}"
            )
        return token

    def parse(self) -> PExpr:
        expr = self.pareto()
        token = self.peek()
        if token is not None:
            raise ParseError(
                f"trailing input {token.text!r} at position {token.pos}"
            )
        return expr

    def pareto(self) -> PExpr:
        parts = [self.prio()]
        while (token := self.peek()) is not None and token.kind == "pareto":
            self.advance()
            parts.append(self.prio())
        return pareto(*parts)

    def prio(self) -> PExpr:
        parts = [self.atom()]
        while (token := self.peek()) is not None and token.kind == "prio":
            self.advance()
            parts.append(self.atom())
        return prioritized(*parts)

    def atom(self) -> PExpr:
        token = self.advance()
        if token.kind == "name":
            return Att(token.text)
        if token.kind == "lparen":
            inner = self.pareto()
            self.expect("rparen")
            return inner
        raise ParseError(
            f"expected an attribute or '(' but found {token.text!r} at "
            f"position {token.pos}"
        )


def parse(text: str) -> PExpr:
    """Parse ``text`` into a :class:`~repro.core.expressions.PExpr`.

    >>> str(parse("(P & T) * M"))
    '(P & T) * M'
    """
    if not text or not text.strip():
        raise ParseError("empty p-expression")
    return _Parser(text).parse()
