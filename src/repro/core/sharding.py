"""Sharded, MVCC-versioned relations with partition-parallel maintenance.

The paper's partition/merge identity ``M_pi(D) = M_pi(U_i M_pi(D_i))``
(the correctness backbone of OSDC's divide step and of the pool's tree
merge) makes p-skylines embarrassingly partitionable.  This module turns
that identity into a storage architecture:

* :class:`ShardMap` -- a deterministic row-to-shard router, either by a
  platform-independent hash of the rank vector or by range partitioning
  on one column.
* :class:`ShardedPSkylineMaintainer` -- ``k`` independent
  :class:`~repro.algorithms.incremental.PSkylineMaintainer` instances,
  one per shard; inserts and deletes are routed to the owning shard and
  the global answer is the merge of the per-shard skylines.
* :class:`ShardedRelation` -- a mutable, hash- or range-partitioned
  relation.  Each shard materialises as an ordinary immutable
  :class:`~repro.core.relation.Relation` (so every registry algorithm
  consumes it unchanged, and the worker pool can pre-register each
  shard into shared memory once), writes bump a monotonically
  increasing **version**, and readers pin copy-on-write
  :class:`ShardSnapshot` views: a long-running or deadline query reads
  a stable version while writes land concurrently.  A stale snapshot's
  materialisations are reclaimed when its last reader closes.

Serving a query over a tracked p-graph reduces to merging the per-shard
skylines -- exactly the second application of the partition identity --
either serially or through :meth:`WorkerPool.merge_sharded_skylines
<repro.engine.pool.WorkerPool.merge_sharded_skylines>`'s tree of
pairwise merges.
"""

from __future__ import annotations

import threading
import zlib
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .attributes import Attribute, lowest, orders_signature
from .pgraph import PGraph
from .relation import Relation

__all__ = ["ShardMap", "ShardedPSkylineMaintainer", "ShardedRelation",
           "ShardSnapshot", "sharded_pskyline"]


def _row_hash(vector: np.ndarray) -> int:
    """A deterministic, platform-independent hash of one rank vector.

    CRC32 over the float64 bytes: stable across processes (unlike
    ``hash()``, which is salted) and fast enough to sit on the insert
    path.  ``-0.0`` is normalised so bitwise-different equal ranks
    land on the same shard.
    """
    vector = np.ascontiguousarray(vector, dtype=np.float64) + 0.0
    return zlib.crc32(vector.tobytes())


class ShardMap:
    """Deterministic row-to-shard routing.

    Two partitioning schemes:

    * ``ShardMap.hashed(k)`` -- shard ``crc32(row) % k``; balanced in
      expectation and oblivious to the data distribution.
    * ``ShardMap.ranged(k, column, boundaries)`` -- range partitioning
      on one rank column with ``k - 1`` sorted cut points
      (``ShardMap.ranged_from`` derives quantile boundaries from data).
    """

    __slots__ = ("shards", "kind", "column", "boundaries")

    def __init__(self, shards: int, kind: str = "hash", *,
                 column: int = 0,
                 boundaries: Sequence[float] | None = None):
        if shards < 1:
            raise ValueError("a shard map needs at least one shard")
        if kind not in ("hash", "range"):
            raise ValueError(f"unknown partitioning scheme {kind!r}")
        if kind == "range":
            if boundaries is None:
                raise ValueError("range partitioning requires boundaries")
            boundaries = tuple(float(b) for b in boundaries)
            if list(boundaries) != sorted(boundaries):
                raise ValueError("range boundaries must be sorted")
            if len(boundaries) != shards - 1:
                raise ValueError(
                    f"{shards} shards need {shards - 1} boundaries, got "
                    f"{len(boundaries)}")
        self.shards = int(shards)
        self.kind = kind
        self.column = int(column)
        self.boundaries = boundaries if kind == "range" else None

    @classmethod
    def hashed(cls, shards: int) -> "ShardMap":
        return cls(shards, "hash")

    @classmethod
    def ranged(cls, shards: int, column: int,
               boundaries: Sequence[float]) -> "ShardMap":
        return cls(shards, "range", column=column, boundaries=boundaries)

    @classmethod
    def ranged_from(cls, ranks: np.ndarray, shards: int,
                    column: int = 0) -> "ShardMap":
        """Range boundaries at the column's ``k``-quantiles."""
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.ndim != 2 or ranks.shape[0] == 0:
            raise ValueError(
                "quantile boundaries need a non-empty 2-d matrix")
        quantiles = np.linspace(0.0, 1.0, shards + 1)[1:-1]
        boundaries = np.quantile(ranks[:, column], quantiles)
        return cls.ranged(shards, column, boundaries)

    def shard_of(self, vector: np.ndarray) -> int:
        """The owning shard of one rank vector."""
        if self.kind == "hash":
            return _row_hash(vector) % self.shards
        value = float(np.asarray(vector, dtype=np.float64)[self.column])
        return int(np.searchsorted(self.boundaries, value, side="right"))

    def shard_of_block(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of` for an ``(n, d)`` block."""
        ranks = np.ascontiguousarray(ranks, dtype=np.float64)
        if self.kind == "range":
            return np.searchsorted(self.boundaries, ranks[:, self.column],
                                   side="right").astype(np.intp)
        return np.fromiter((_row_hash(row) % self.shards for row in ranks),
                           dtype=np.intp, count=ranks.shape[0])

    def __repr__(self) -> str:
        if self.kind == "hash":
            return f"ShardMap(hash, {self.shards} shards)"
        return (f"ShardMap(range on column {self.column}, "
                f"{self.shards} shards)")


def sharded_pskyline(ranks: np.ndarray, graph: PGraph, *,
                     shards: int = 2,
                     function: Callable | None = None,
                     shard_map: ShardMap | None = None,
                     context=None) -> np.ndarray:
    """Evaluate ``M_pi(ranks)`` by partition and merge, serially.

    Splits the rows with ``shard_map`` (hash by default), evaluates
    ``function`` (OSDC by default) per shard, then once more on the
    union of the per-shard skylines -- the partition identity applied
    directly.  Returns sorted original row indices; the reference
    implementation the pool-backed sharded paths are verified against.
    """
    from ..algorithms.base import get_algorithm

    ranks = np.ascontiguousarray(ranks, dtype=np.float64)
    if function is None:
        function = get_algorithm("osdc")
    shard_map = shard_map if shard_map is not None \
        else ShardMap.hashed(shards)
    assignment = shard_map.shard_of_block(ranks)
    union: list[np.ndarray] = []
    for shard in range(shard_map.shards):
        rows = np.flatnonzero(assignment == shard)
        if rows.size == 0:
            continue
        local = function(np.ascontiguousarray(ranks[rows]), graph)
        union.append(rows[np.asarray(local, dtype=np.intp)])
    if not union:
        return np.empty(0, dtype=np.intp)
    candidates = np.sort(np.concatenate(union))
    local = function(np.ascontiguousarray(ranks[candidates]), graph)
    return np.sort(candidates[np.asarray(local, dtype=np.intp)])


class ShardedPSkylineMaintainer:
    """``M_pi`` maintenance over ``k`` independent shards.

    The public surface mirrors
    :class:`~repro.algorithms.incremental.PSkylineMaintainer`: tuples
    are identified by the id :meth:`insert` returns, and the maintained
    answer always equals ``M_pi`` of the alive tuples.  Internally each
    insert is routed to its owning shard's maintainer (one comparison
    against that shard's -- smaller -- skyline) and the global skyline
    is the merge of the per-shard skylines, cached per write version.
    """

    def __init__(self, graph: PGraph, shards: int | ShardMap = 4, *,
                 context=None, kernel: str = "auto",
                 capacity: int = 1024):
        from ..algorithms.base import ensure_context
        from ..algorithms.incremental import PSkylineMaintainer

        self.graph = graph
        self.shard_map = shards if isinstance(shards, ShardMap) \
            else ShardMap.hashed(shards)
        self.context = ensure_context(context)
        self.kernel = kernel
        self._maintainers = [
            PSkylineMaintainer(graph, capacity=capacity,
                               context=self.context, kernel=kernel)
            for _ in range(self.shard_map.shards)]
        #: global id -> (shard, shard-local id); append-only
        self._shard_of: list[int] = []
        self._slot_of: list[int] = []
        self._version = 0
        self._merged: tuple[int, np.ndarray] | None = None

    @property
    def num_shards(self) -> int:
        return self.shard_map.shards

    @property
    def version(self) -> int:
        """Bumped by every insert and delete."""
        return self._version

    @property
    def num_alive(self) -> int:
        return sum(m.num_alive for m in self._maintainers)

    def __contains__(self, tuple_id: int) -> bool:
        if not 0 <= tuple_id < len(self._shard_of):
            return False
        shard, slot = self._shard_of[tuple_id], self._slot_of[tuple_id]
        return slot in self._maintainers[shard]

    # -- mutation ------------------------------------------------------------
    def insert(self, values) -> int:
        """Insert a rank vector; returns its global tuple id."""
        values = np.asarray(values, dtype=np.float64)
        shard = self.shard_map.shard_of(values)
        slot = self._maintainers[shard].insert(values)
        tuple_id = len(self._shard_of)
        self._shard_of.append(shard)
        self._slot_of.append(slot)
        self._version += 1
        self._merged = None
        return tuple_id

    def bulk_load(self, block) -> np.ndarray:
        """Insert a block of rows in one routed pass; returns their ids."""
        block = np.ascontiguousarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self.graph.d:
            raise ValueError(
                f"expected an (n, {self.graph.d}) rank matrix")
        ids = np.arange(len(self._shard_of),
                        len(self._shard_of) + block.shape[0],
                        dtype=np.intp)
        if block.shape[0] == 0:
            return ids
        assignment = self.shard_map.shard_of_block(block)
        slots = np.empty(block.shape[0], dtype=np.intp)
        for shard in range(self.num_shards):
            rows = np.flatnonzero(assignment == shard)
            if rows.size:
                slots[rows] = self._maintainers[shard].bulk_load(
                    block[rows])
        self._shard_of.extend(int(s) for s in assignment)
        self._slot_of.extend(int(s) for s in slots)
        self._version += 1
        self._merged = None
        return ids

    def delete(self, tuple_id: int) -> None:
        """Delete a tuple by its global id (promotion stays shard-local)."""
        if not 0 <= tuple_id < len(self._shard_of):
            raise KeyError(f"tuple {tuple_id} is not alive")
        shard, slot = self._shard_of[tuple_id], self._slot_of[tuple_id]
        self._maintainers[shard].delete(slot)  # raises if not alive
        self._version += 1
        self._merged = None

    # -- views ---------------------------------------------------------------
    def shard_skyline_sizes(self) -> list[int]:
        return [int(m.skyline_ids().size) for m in self._maintainers]

    def skyline_ids(self) -> np.ndarray:
        """The global p-skyline as sorted global ids (merged, cached)."""
        if self._merged is not None and self._merged[0] == self._version:
            return self._merged[1]
        from ..algorithms.osdc import osdc

        slot_to_global: list[np.ndarray] = []
        offset = 0
        pieces_ranks: list[np.ndarray] = []
        pieces_ids: list[np.ndarray] = []
        globals_by_shard = self._globals_by_shard()
        for shard, maintainer in enumerate(self._maintainers):
            slots = maintainer.skyline_ids()
            if slots.size == 0:
                continue
            pieces_ranks.append(maintainer.ranks_of(slots))
            pieces_ids.append(globals_by_shard[shard][slots])
        if not pieces_ids:
            merged = np.empty(0, dtype=np.intp)
        else:
            union_ids = np.concatenate(pieces_ids)
            union_ranks = np.ascontiguousarray(np.vstack(pieces_ranks))
            local = osdc(union_ranks, self.graph, context=self.context,
                         kernel=self.kernel)
            merged = np.sort(union_ids[local])
        self._merged = (self._version, merged)
        return merged

    def skyline_ranks(self) -> np.ndarray:
        return self.ranks_of(self.skyline_ids())

    def ranks_of(self, ids) -> np.ndarray:
        """Rank vectors for the given global ids (in the given order)."""
        ids = np.asarray(ids, dtype=np.intp)
        out = np.empty((ids.size, self.graph.d), dtype=np.float64)
        for position, tuple_id in enumerate(ids):
            shard = self._shard_of[tuple_id]
            slot = self._slot_of[tuple_id]
            out[position] = self._maintainers[shard].ranks_of([slot])[0]
        return out

    def _globals_by_shard(self) -> list[np.ndarray]:
        """Per shard, the global id of each shard-local slot."""
        by_shard: list[list[int]] = [[] for _ in self._maintainers]
        for tuple_id, shard in enumerate(self._shard_of):
            by_shard[shard].append(tuple_id)
        return [np.asarray(ids, dtype=np.intp) for ids in by_shard]


# -- the sharded relation ----------------------------------------------------


class _Shard:
    """Mutable storage of one shard: growable buffers plus a per-shard
    version and a copy-on-write :class:`Relation` materialisation cache
    (unchanged shards keep handing out the same immutable object, so
    the pool's shared-memory registration cache keeps hitting)."""

    __slots__ = ("ranks", "values", "gids", "alive", "size", "version",
                 "_cache")

    def __init__(self, arity: int, store_values: bool,
                 capacity: int = 64):
        self.ranks = np.empty((capacity, arity), dtype=np.float64)
        self.values = np.empty((capacity, arity), dtype=object) \
            if store_values else None
        self.gids = np.empty(capacity, dtype=np.intp)
        self.alive = np.zeros(capacity, dtype=bool)
        self.size = 0
        self.version = 0
        self._cache: tuple[int, Relation, np.ndarray, np.ndarray] | None \
            = None

    def _reserve(self, extra: int) -> None:
        needed = self.size + extra
        capacity = self.ranks.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity)
        grown = np.empty((new_capacity, self.ranks.shape[1]))
        grown[: self.size] = self.ranks[: self.size]
        self.ranks = grown
        if self.values is not None:
            grown_values = np.empty((new_capacity, self.values.shape[1]),
                                    dtype=object)
            grown_values[: self.size] = self.values[: self.size]
            self.values = grown_values
        self.gids = np.concatenate(
            [self.gids, np.empty(new_capacity - capacity, dtype=np.intp)])
        self.alive = np.concatenate(
            [self.alive, np.zeros(new_capacity - capacity, dtype=bool)])

    def append_block(self, ranks: np.ndarray, gids: np.ndarray,
                     values: np.ndarray | None) -> np.ndarray:
        count = ranks.shape[0]
        self._reserve(count)
        slots = np.arange(self.size, self.size + count, dtype=np.intp)
        self.ranks[slots] = ranks
        if self.values is not None:
            self.values[slots] = values if values is not None else None
        self.gids[slots] = gids
        self.alive[slots] = True
        self.size += count
        self.version += 1
        return slots

    def kill(self, slot: int) -> None:
        self.alive[slot] = False
        self.version += 1

    def materialize(self, schema: tuple[Attribute, ...]
                    ) -> tuple[Relation, np.ndarray, np.ndarray]:
        """``(relation, gids, slots)`` of the alive rows, slot order.

        Copy-on-write: cached per shard version, so an unchanged shard
        returns the identical immutable objects on every call.
        """
        if self._cache is not None and self._cache[0] == self.version:
            return self._cache[1], self._cache[2], self._cache[3]
        slots = np.flatnonzero(self.alive[: self.size])
        values = self.values[slots] if self.values is not None else None
        relation = Relation(schema, self.ranks[slots], values)
        gids = self.gids[slots].copy()
        gids.setflags(write=False)
        slots.setflags(write=False)
        self._cache = (self.version, relation, gids, slots)
        return relation, gids, slots


class ShardSnapshot:
    """An immutable, versioned view of a :class:`ShardedRelation`.

    Holds one materialised :class:`Relation` per shard (shared with
    every other snapshot of the same shard version), the global id of
    each row, and the relation version the snapshot pinned.  Closing
    the snapshot (idempotent; also via ``with``) releases the reader
    reference -- once a version's last reader closes, its shard
    materialisations become unreachable and are reclaimed.
    """

    __slots__ = ("version", "shards", "gids", "slots", "_owner",
                 "_relation", "_offsets")

    def __init__(self, owner: "ShardedRelation", version: int,
                 shards: tuple[Relation, ...],
                 gids: tuple[np.ndarray, ...],
                 slots: tuple[np.ndarray, ...]):
        self.version = version
        self.shards = shards
        self.gids = gids
        self.slots = slots
        self._owner = owner
        self._relation: Relation | None = None
        self._offsets: np.ndarray | None = None

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def closed(self) -> bool:
        return self._owner is None

    @property
    def offsets(self) -> np.ndarray:
        """Row offset of each shard in :attr:`relation` (length k+1)."""
        if self._offsets is None:
            self._offsets = np.concatenate(
                [[0], np.cumsum([len(s) for s in self.shards])]
            ).astype(np.intp)
        return self._offsets

    @property
    def relation(self) -> Relation:
        """The full snapshot as one relation (shards concatenated;
        materialised lazily and cached on the snapshot)."""
        if self._relation is None:
            self._relation = Relation.concat(self.shards) \
                if self.shards else Relation((), np.empty((0, 0)))
        return self._relation

    @property
    def global_ids(self) -> np.ndarray:
        """The global id of each :attr:`relation` row."""
        if not self.gids:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(self.gids)

    def take_gids(self, gids) -> Relation:
        """The snapshot rows with the given global ids, in id order."""
        wanted = np.sort(np.asarray(gids, dtype=np.intp))
        pieces: list[Relation] = []
        piece_gids: list[np.ndarray] = []
        for shard, shard_gids in zip(self.shards, self.gids):
            positions = np.searchsorted(shard_gids, wanted)
            positions = positions[positions < shard_gids.size]
            hits = positions[np.isin(shard_gids[positions], wanted)]
            hits = np.unique(hits)
            if hits.size:
                pieces.append(shard.take(hits))
                piece_gids.append(shard_gids[hits])
        if not pieces:
            return self.relation.take(np.empty(0, dtype=np.intp))
        found = np.concatenate(piece_gids)
        if found.size != wanted.size:
            missing = sorted(set(wanted.tolist()) - set(found.tolist()))
            raise KeyError(
                f"global id(s) not in snapshot version {self.version}: "
                f"{missing[:8]}")
        combined = Relation.concat(pieces)
        return combined.take(np.argsort(found, kind="stable"))

    def close(self) -> None:
        """Release the reader reference (idempotent)."""
        owner, self._owner = self._owner, None
        if owner is not None:
            owner._release(self.version)

    def __enter__(self) -> "ShardSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"ShardSnapshot(version={self.version}, "
                f"{len(self)} tuples over {self.num_shards} shards, "
                f"{state})")


class _TrackedGraph:
    """Per-shard incremental maintenance of one tracked p-graph.

    The shard-local maintainers are fed in storage slot order, so a
    maintainer tuple id *is* the shard storage slot -- deletes route by
    slot with no extra translation.
    """

    __slots__ = ("graph", "columns", "maintainers")

    def __init__(self, graph: PGraph, columns: list[int],
                 maintainers: list) -> None:
        self.graph = graph
        self.columns = columns
        self.maintainers = maintainers


class ShardedRelation:
    """A mutable, partitioned, MVCC-versioned relation.

    Rows are routed to one of ``k`` shards by a :class:`ShardMap` and
    identified by the monotonically increasing global id that
    :meth:`insert` returns.  Every write bumps :attr:`version`;
    :meth:`snapshot` pins an immutable :class:`ShardSnapshot` of the
    current version, so queries run on stable data while writes land
    concurrently (writers never block readers).  :meth:`track` attaches
    per-shard incremental maintainers for a p-graph, after which
    :meth:`p_skyline` serves that query by merging the per-shard
    skylines instead of recomputing from scratch.

    All mutating and snapshot-taking methods are thread-safe behind one
    reentrant lock; snapshots themselves are immutable and may be read
    from any thread.
    """

    def __init__(self, schema: Sequence[Attribute], *,
                 shards: int | ShardMap = 4, partition: str = "hash",
                 column: str | None = None,
                 boundaries: Sequence[float] | None = None,
                 store_values: bool = False,
                 context=None, kernel: str = "auto"):
        from ..algorithms.base import ensure_context

        self.schema = tuple(schema)
        names = [attribute.name for attribute in self.schema]
        if len(set(names)) != len(names):
            raise ValueError("schema contains duplicate attribute names")
        if isinstance(shards, ShardMap):
            self.shard_map = shards
        elif partition == "hash":
            self.shard_map = ShardMap.hashed(shards)
        elif partition == "range":
            if column is None or boundaries is None:
                raise ValueError(
                    "range partitioning requires column and boundaries")
            self.shard_map = ShardMap.ranged(
                shards, names.index(column), boundaries)
        else:
            raise ValueError(f"unknown partitioning scheme {partition!r}")
        self.context = ensure_context(context)
        self.kernel = kernel
        arity = len(self.schema)
        self._shards = [_Shard(arity, store_values)
                        for _ in range(self.shard_map.shards)]
        #: global id -> (shard, slot); append-only
        self._gid_shard: list[int] = []
        self._gid_slot: list[int] = []
        self._version = 0
        self._tracked: dict[tuple, _TrackedGraph] = {}
        self._readers: dict[int, int] = {}
        self._lock = threading.RLock()
        self._write_listeners: list = []

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation, *,
                      shards: int | ShardMap = 4,
                      partition: str = "hash",
                      column: str | None = None,
                      context=None, kernel: str = "auto"
                      ) -> "ShardedRelation":
        """Partition an existing relation (global ids = its row order).

        With ``partition="range"`` and no explicit boundaries, the cut
        points are the ``column`` quantiles of the given data.
        """
        boundaries = None
        if partition == "range" and not isinstance(shards, ShardMap):
            if column is None:
                raise ValueError("range partitioning requires a column")
            names = list(relation.names)
            boundaries = tuple(
                float(b) for b in np.quantile(
                    relation.ranks[:, names.index(column)],
                    np.linspace(0.0, 1.0, int(shards) + 1)[1:-1]))
        sharded = cls(relation.schema, shards=shards, partition=partition,
                      column=column, boundaries=boundaries,
                      store_values=relation._values is not None,
                      context=context, kernel=kernel)
        sharded._bulk_insert(relation.ranks, relation._values)
        return sharded

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]
                                            | Sequence[Any]],
                     schema: Sequence[Attribute], **kwargs
                     ) -> "ShardedRelation":
        return cls.from_relation(Relation.from_records(records, schema),
                                 **kwargs)

    @classmethod
    def from_array(cls, array: np.ndarray,
                   names: Sequence[str] | None = None,
                   schema: Sequence[Attribute] | None = None,
                   **kwargs) -> "ShardedRelation":
        return cls.from_relation(
            Relation.from_array(array, names=names, schema=schema),
            **kwargs)

    # -- relation interface --------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.schema)

    @property
    def arity(self) -> int:
        return len(self.schema)

    @property
    def num_shards(self) -> int:
        return self.shard_map.shards

    @property
    def version(self) -> int:
        """The current write version (bumped by every insert/delete)."""
        return self._version

    def __len__(self) -> int:
        with self._lock:
            return sum(int(shard.alive[: shard.size].sum())
                       for shard in self._shards)

    def __contains__(self, gid: int) -> bool:
        with self._lock:
            if not 0 <= gid < len(self._gid_shard):
                return False
            shard = self._shards[self._gid_shard[gid]]
            return bool(shard.alive[self._gid_slot[gid]])

    def shard_sizes(self) -> list[int]:
        """Alive rows per shard."""
        with self._lock:
            return [int(shard.alive[: shard.size].sum())
                    for shard in self._shards]

    def to_records(self) -> list[dict[str, Any]]:
        with self.snapshot() as snap:
            order = np.argsort(snap.global_ids, kind="stable")
            return snap.relation.take(order).to_records()

    # -- write listeners -----------------------------------------------------
    def add_write_listener(self, listener) -> None:
        """Register ``listener(relation, version)`` to run after every
        committed write (version bump).

        Listeners fire *outside* the relation lock -- by the time one
        runs, :attr:`version` may already have advanced further, so
        they are suited to invalidation-style hooks (e.g. the server's
        result cache), not to observing individual writes.
        """
        with self._lock:
            self._write_listeners.append(listener)

    def remove_write_listener(self, listener) -> None:
        """Unregister a listener added by :meth:`add_write_listener`
        (a no-op if it is not registered)."""
        with self._lock:
            try:
                self._write_listeners.remove(listener)
            except ValueError:
                pass

    def _notify_write(self) -> None:
        with self._lock:
            listeners = list(self._write_listeners)
            version = self._version
        for listener in listeners:
            listener(self, version)

    # -- mutation ------------------------------------------------------------
    def insert(self, record: Mapping[str, Any] | Sequence[Any]) -> int:
        """Insert one record (dict or schema-ordered sequence); returns
        its global id."""
        if isinstance(record, Mapping):
            row = []
            for attribute in self.schema:
                if attribute.name not in record:
                    raise ValueError(
                        f"record is missing attribute {attribute.name!r}")
                row.append(record[attribute.name])
        else:
            row = list(record)
            if len(row) != self.arity:
                raise ValueError(
                    f"record of arity {len(row)} does not match the "
                    f"schema arity {self.arity}")
        ranks = np.array([attribute.encode([value])[0]
                          for attribute, value in zip(self.schema, row)],
                         dtype=np.float64)
        values = np.empty(self.arity, dtype=object)
        values[:] = row
        return self.insert_ranks(ranks, values)

    def insert_ranks(self, vector, values: np.ndarray | None = None
                     ) -> int:
        """Insert one pre-encoded rank vector; returns its global id."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.arity,):
            raise ValueError(
                f"expected a rank vector of length {self.arity}")
        if not np.isfinite(vector).all():
            raise ValueError("rank vector contains non-finite values")
        with self._lock:
            shard_index = self.shard_map.shard_of(vector)
            shard = self._shards[shard_index]
            gid = len(self._gid_shard)
            slot = int(shard.append_block(
                vector[None, :], np.asarray([gid], dtype=np.intp),
                values[None, :] if values is not None else None)[0])
            self._gid_shard.append(shard_index)
            self._gid_slot.append(slot)
            for tracked in self._tracked.values():
                maintainer_slot = tracked.maintainers[shard_index].insert(
                    vector[tracked.columns])
                assert maintainer_slot == slot
            self._version += 1
        self._notify_write()
        return gid

    def delete(self, gid: int) -> None:
        """Delete a row by global id."""
        with self._lock:
            if gid not in self:
                raise KeyError(f"tuple {gid} is not alive")
            shard_index = self._gid_shard[gid]
            slot = self._gid_slot[gid]
            for tracked in self._tracked.values():
                tracked.maintainers[shard_index].delete(slot)
            self._shards[shard_index].kill(slot)
            self._version += 1
        self._notify_write()

    def _bulk_insert(self, ranks: np.ndarray,
                     values: np.ndarray | None) -> np.ndarray:
        ranks = np.ascontiguousarray(ranks, dtype=np.float64)
        with self._lock:
            base = len(self._gid_shard)
            gids = np.arange(base, base + ranks.shape[0], dtype=np.intp)
            if ranks.shape[0] == 0:
                return gids
            assignment = self.shard_map.shard_of_block(ranks)
            slot_of = np.empty(ranks.shape[0], dtype=np.intp)
            for shard_index in range(self.num_shards):
                rows = np.flatnonzero(assignment == shard_index)
                if rows.size == 0:
                    continue
                slots = self._shards[shard_index].append_block(
                    ranks[rows], gids[rows],
                    values[rows] if values is not None else None)
                slot_of[rows] = slots
                for tracked in self._tracked.values():
                    self._tracked_bulk_load(tracked, shard_index,
                                            ranks[rows])
            self._gid_shard.extend(int(s) for s in assignment)
            self._gid_slot.extend(int(s) for s in slot_of)
            self._version += 1
        self._notify_write()
        return gids

    @staticmethod
    def _tracked_bulk_load(tracked: _TrackedGraph, shard_index: int,
                           ranks: np.ndarray) -> None:
        tracked.maintainers[shard_index].bulk_load(
            ranks[:, tracked.columns])

    # -- tracked maintenance -------------------------------------------------
    def track(self, expression) -> PGraph:
        """Attach per-shard incremental maintainers for a p-expression
        (or p-graph); existing rows are bulk-loaded.  Returns the
        normalised p-graph, usable as a key for :meth:`skyline_gids`."""
        from ..algorithms.incremental import PSkylineMaintainer

        graph, columns = self._resolve(expression)
        key = self._graph_key(graph)
        with self._lock:
            if key in self._tracked:
                return self._tracked[key].graph
            maintainers = []
            for shard in self._shards:
                maintainer = PSkylineMaintainer(
                    graph, capacity=max(64, shard.size),
                    context=self.context, kernel=self.kernel)
                # replay the shard in slot order so maintainer ids align
                # with storage slots, dead rows included
                if shard.size:
                    maintainer.bulk_load(
                        shard.ranks[: shard.size][:, columns])
                    for slot in np.flatnonzero(
                            ~shard.alive[: shard.size]):
                        maintainer.delete(int(slot))
                maintainers.append(maintainer)
            self._tracked[key] = _TrackedGraph(graph, columns, maintainers)
            return graph

    def tracked(self) -> list[PGraph]:
        with self._lock:
            return [tracked.graph for tracked in self._tracked.values()]

    def skyline_gids(self, expression) -> np.ndarray:
        """The maintained ``M_pi`` of a tracked p-graph, as sorted
        global ids (merged from the per-shard skylines)."""
        from ..algorithms.osdc import osdc

        graph, _columns = self._resolve(expression)
        with self._lock:
            tracked = self._tracked.get(self._graph_key(graph))
            if tracked is None:
                raise KeyError(
                    f"p-graph over {graph.names} is not tracked; call "
                    "track() first")
            pieces = self._shard_skylines(tracked)
        if not pieces:
            return np.empty(0, dtype=np.intp)
        union_gids = np.concatenate([gids for _i, _r, gids in pieces])
        union_ranks = np.ascontiguousarray(
            np.vstack([ranks for _i, ranks, _g in pieces]))
        local = osdc(union_ranks, graph, context=self.context,
                     kernel=self.kernel)
        return np.sort(union_gids[local])

    def _shard_skylines(self, tracked: _TrackedGraph
                        ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Per-shard skyline as ``(shard index, projected ranks, global
        ids)`` triples, empty shards skipped; caller holds the lock."""
        pieces: list[tuple[int, np.ndarray, np.ndarray]] = []
        for index, (shard, maintainer) in enumerate(
                zip(self._shards, tracked.maintainers)):
            slots = maintainer.skyline_ids()
            if slots.size == 0:
                continue
            pieces.append((index, maintainer.ranks_of(slots),
                           shard.gids[slots].copy()))
        return pieces

    # -- MVCC snapshots ------------------------------------------------------
    def snapshot(self) -> ShardSnapshot:
        """Pin an immutable view of the current version.

        Copy-on-write: shards untouched since the last snapshot hand
        out the same materialised :class:`Relation` objects, so
        repeated snapshots are cheap and the pool's shared-memory
        registrations stay valid per unchanged shard.
        """
        with self._lock:
            shards = []
            gids = []
            slots = []
            for shard in self._shards:
                relation, shard_gids, shard_slots = \
                    shard.materialize(self.schema)
                shards.append(relation)
                gids.append(shard_gids)
                slots.append(shard_slots)
            self._readers[self._version] = \
                self._readers.get(self._version, 0) + 1
            return ShardSnapshot(self, self._version, tuple(shards),
                                 tuple(gids), tuple(slots))

    def _release(self, version: int) -> None:
        with self._lock:
            remaining = self._readers.get(version, 0) - 1
            if remaining > 0:
                self._readers[version] = remaining
            else:
                # last reader gone: the version's materialisations are
                # now unreferenced and reclaimed by the collector
                self._readers.pop(version, None)

    def live_versions(self) -> tuple[int, ...]:
        """Versions still pinned by open snapshots (introspection)."""
        with self._lock:
            return tuple(sorted(self._readers))

    # -- queries -------------------------------------------------------------
    def p_skyline(self, expression, *, algorithm: str = "auto",
                  stats=None, context=None, timeout: float | None = None,
                  snapshot: ShardSnapshot | None = None,
                  pool=None, planner=None, **options) -> Relation:
        """Evaluate ``M_pi`` over a pinned snapshot; returns a
        :class:`Relation` of the maximal tuples in global-id order.

        Reads run on the snapshot (the one given, or a fresh pin), so
        concurrent writes never shift the answer mid-query.  Tracked
        p-graphs are served by merging the per-shard skylines --
        through the worker pool's tree merge when one is available --
        and untracked queries go through the planner's shard-aware rule
        (scatter/gather over pre-registered shards, single-shard, or
        serial).  An explicit ``algorithm`` runs that registry
        algorithm over the materialised snapshot unchanged.
        """
        from ..algorithms.base import ensure_context
        from ..engine.context import ExecutionContext

        graph, columns = self._resolve(expression)
        if timeout is not None:
            if context is not None:
                raise ValueError(
                    "pass either timeout or context, not both")
            context = ExecutionContext.create(stats=stats,
                                              timeout=timeout)
        context = ensure_context(context, stats)
        owned = snapshot is None
        with self._lock:
            snap = self.snapshot() if owned else snapshot
            tracked = self._tracked.get(self._graph_key(graph)) \
                if algorithm in ("auto", "maintained") else None
            serve = None
            if tracked is not None and snap.version == self._version:
                serve = self._shard_skylines(tracked)
        try:
            if serve is not None:
                return self._serve_tracked(snap, graph, columns, serve,
                                           pool, context)
            return self._query_snapshot(snap, graph, columns, algorithm,
                                        pool, planner, context, options)
        finally:
            if owned:
                snap.close()

    def _serve_tracked(self, snap: ShardSnapshot, graph: PGraph,
                       columns: list[int], serve, pool,
                       context) -> Relation:
        """Merge per-shard skylines (the second half of the partition
        identity), on the pool when available."""
        from ..algorithms.osdc import osdc
        from ..engine.pool import pool_available

        self._annotate(context, snap, "maintained",
                       [int(gids.size) for _i, _r, gids in serve])
        if not serve:
            return snap.relation.take(np.empty(0, dtype=np.intp))
        union = int(sum(gids.size for _i, _r, gids in serve))
        if pool is None and pool_available() and union >= 2048:
            from ..engine.pool import get_default_pool
            pool = get_default_pool()
        if pool is not None and len(serve) > 1:
            gids = self._pool_merge(snap, graph, columns, serve, pool,
                                    context)
        else:
            union_gids = np.concatenate([gids for _i, _r, gids in serve])
            union_ranks = np.ascontiguousarray(
                np.vstack([ranks for _i, ranks, _g in serve]))
            local = osdc(union_ranks, graph, context=context,
                         kernel=self.kernel)
            gids = np.sort(union_gids[local])
        return snap.take_gids(gids)

    def _pool_merge(self, snap: ShardSnapshot, graph: PGraph,
                    columns: list[int], serve, pool,
                    context) -> np.ndarray:
        """Tree-merge the per-shard skylines on the worker pool against
        the per-shard shared-memory registrations."""
        nonempty = [index for index, shard in enumerate(snap.shards)
                    if len(shard)]
        position_of = {index: position
                       for position, index in enumerate(nonempty)}
        arrays = [snap.shards[index].ranks for index in nonempty]
        offsets = np.concatenate(
            [[0], np.cumsum([a.shape[0] for a in arrays])]).astype(np.intp)
        parts = []
        for index, _ranks, gids in serve:
            # gids are strictly increasing within a shard (appends only
            # ever grow them), so the skyline's snapshot rows fall out
            # of one searchsorted
            shard_gids = snap.gids[index]
            rows = np.searchsorted(shard_gids, gids)
            parts.append(offsets[position_of[index]] + rows)
        virtual_gids = np.concatenate(
            [snap.gids[index] for index in nonempty])
        merged = pool.merge_sharded_skylines(
            arrays, graph, parts, columns=columns, context=context)
        return np.sort(virtual_gids[merged])

    def _query_snapshot(self, snap: ShardSnapshot, graph: PGraph,
                        columns: list[int], algorithm: str, pool,
                        planner, context, options) -> Relation:
        """Untracked path: planner-chosen scatter/gather, single-shard
        or serial evaluation over the snapshot."""
        from ..algorithms.base import get_algorithm
        from ..engine.pool import get_default_pool, pool_available

        if algorithm not in ("auto", "maintained"):
            # any registry algorithm consumes the materialised snapshot
            # relation unchanged
            self._annotate(context, snap, algorithm, None)
            function = get_algorithm(algorithm)
            ranks = snap.relation.ranks[:, columns]
            local = function(ranks, graph, context=context, **options)
            return self._finish(snap, np.asarray(local, dtype=np.intp))
        if planner is None:
            from ..planner import DEFAULT_PLANNER
            planner = DEFAULT_PLANNER
        plan = planner.plan_sharded(snap, graph, context,
                                    columns=columns)
        plan.record(context)
        self._annotate(context, snap, plan.algorithm, None)
        if plan.algorithm == "sharded-scatter-gather" \
                and (pool is not None or pool_available()):
            if pool is None:
                pool = get_default_pool()
            nonempty = [index for index, shard in enumerate(snap.shards)
                        if len(shard)]
            arrays = [snap.shards[index].ranks for index in nonempty]
            indices = pool.run_sharded(arrays, graph, columns=columns,
                                       context=context)
            virtual_gids = np.concatenate(
                [snap.gids[index] for index in nonempty])
            return snap.take_gids(np.sort(virtual_gids[indices]))
        if plan.algorithm == "single-shard":
            index = plan.options["shard"]
            shard = snap.shards[index]
            local = planner.execute(
                np.ascontiguousarray(shard.ranks[:, columns]), graph,
                context=context)
            return snap.take_gids(
                np.sort(snap.gids[index][np.asarray(local,
                                                    dtype=np.intp)]))
        local = planner.execute(snap.relation.ranks[:, columns], graph,
                                context=context)
        return self._finish(snap, np.asarray(local, dtype=np.intp))

    @staticmethod
    def _finish(snap: ShardSnapshot, positions: np.ndarray) -> Relation:
        """Snapshot row positions -> result relation in global-id order."""
        gids = snap.global_ids[positions]
        order = np.argsort(gids, kind="stable")
        return snap.relation.take(positions[order])

    def _annotate(self, context, snap: ShardSnapshot, mode: str,
                  skylines: list[int] | None) -> None:
        info = {
            "count": self.num_shards,
            "partition": self.shard_map.kind,
            "version": snap.version,
            "rows": [len(shard) for shard in snap.shards],
            "mode": mode,
        }
        if skylines is not None:
            info["skylines"] = skylines
        if context.stats is not None:
            context.stats.extra["shards"] = info
            context.stats.extra["relation_version"] = snap.version
        context.event("shard-query", mode=mode, shards=self.num_shards,
                      version=snap.version)

    # -- helpers -------------------------------------------------------------
    def _resolve(self, expression) -> tuple[PGraph, list[int]]:
        """Normalise an expression/graph exactly like
        :func:`repro.core.query.p_skyline` does for relations, so a
        tracked graph and a queried graph compare equal."""
        from .expressions import PExpr
        from .parser import parse

        names = self.names
        if isinstance(expression, PGraph):
            missing = [name for name in expression.names
                       if name not in names]
            if missing:
                raise KeyError(
                    f"p-graph uses attributes not in the relation: "
                    f"{missing}")
            columns = [names.index(name) for name in expression.names]
            graph = expression
            if graph.orders is None:
                graph = graph.with_orders(orders_signature(
                    [self.schema[c] for c in columns]))
            return graph, columns
        if isinstance(expression, str):
            expression = parse(expression)
        if not isinstance(expression, PExpr):
            raise TypeError(
                f"expected a p-expression, its textual form or a "
                f"p-graph, got {type(expression)}")
        used = expression.attributes()
        missing = [name for name in used if name not in names]
        if missing:
            raise KeyError(
                f"expression uses attributes not in the relation: "
                f"{missing}")
        columns = [names.index(name) for name in used]
        graph = PGraph.from_expression(expression, names=used) \
            .with_orders(orders_signature(
                [self.schema[c] for c in columns]))
        return graph, columns

    @staticmethod
    def _graph_key(graph: PGraph) -> tuple:
        return (graph.names, graph.closure, graph.orders)

    def __repr__(self) -> str:
        return (f"ShardedRelation({len(self)} tuples over "
                f"[{', '.join(self.names)}], {self.num_shards} shards, "
                f"version {self.version})")
