"""Small helpers for attribute sets represented as integer bitmasks.

Throughout the library, sets of attributes (subsets of ``Var(pi)``) are
integer bitmasks: bit ``i`` set means attribute ``i`` (by column position) is
in the set.  The paper never needs more than ``d = 20`` attributes; we allow
up to 64 so the masks also fit NumPy's ``uint64`` in vectorised kernels.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = [
    "MAX_ATTRIBUTES",
    "iter_bits",
    "mask_of",
    "indices_of",
    "lowest_bit",
]

MAX_ATTRIBUTES = 64


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of set bits in ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(indices: Iterable[int]) -> int:
    """Build a bitmask with the given bit positions set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def indices_of(mask: int) -> list[int]:
    """Return the set-bit positions of ``mask`` as a sorted list."""
    return list(iter_bits(mask))


def lowest_bit(mask: int) -> int:
    """Return the position of the lowest set bit (mask must be nonzero)."""
    if not mask:
        raise ValueError("empty bitmask has no lowest bit")
    return (mask & -mask).bit_length() - 1
