"""Cross-query fusion for batches of correlated p-skyline queries.

The north-star workload is *many similar queries over one relation*:
preference elicitation (Mindolin & Chomicki) produces thousands of
p-expressions that share attribute subsets, priority-chain fragments
and often whole graphs.  This module turns such a batch into a
:class:`FusionPlan` that evaluates shared work once:

1. **Canonicalisation** -- each query's columns are sorted and its
   p-graph permuted consistently.  Dominance is invariant under a joint
   column/graph permutation, so two expressions over the same attribute
   set in different spelling order land on the same canonical form.
2. **Deduplication** -- canonical queries are grouped by the compiled
   cache identity ``(names, closure, orders)`` plus the column
   signature; duplicates are evaluated once (``dedup_hits``).
3. **Shared-base screening** (Proposition 2) -- distinct queries over
   the same column signature are grouped, and the *edge intersection*
   of their p-graphs forms a common base graph contained (in the sense
   of :meth:`~repro.core.pgraph.PGraph.contains`) in every member.
   ``Desc`` is monotone in the edge set, so base-dominance implies
   member-dominance: every member's skyline is a subset of the base
   skyline, and equals the member-skyline *of* the base skyline.  The
   plan evaluates the base once and refines each member by
   self-screening the base survivors -- through
   :func:`~repro.core.dominance.screen_block_multi`, which packs each
   ``Better``-mask block once and replays it for every member graph
   (the exact ``mask_hits`` / ``mask_misses`` counters).  The base is
   shared only when it is itself one of the member preferences, so its
   evaluation is work the batch needed anyway; when the intersection is
   strictly weaker than every member (e.g. the Pareto weakening of a
   set of cheap priority chains), the group fuses by deduplication
   alone rather than paying for an extra, more expensive query.

The plan is evaluation-agnostic: callers supply ``evaluate(graph, key)``
(a full skyline of the relation under ``graph`` restricted to the
columns described by ``key``) and ``candidates(indices, key)`` (the rank
rows of those result indices), so the same plan drives the serial path,
the worker pool's shared-memory path, sharded snapshots and the SQL
executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bitsets import iter_bits
from .dominance import screen_block_multi
from .pgraph import PGraph

__all__ = ["FusionPlan", "FusionGroup", "FusedEntry",
           "permute_preference", "MAX_SHARED_CANDIDATES"]

#: Above this many base-skyline survivors the per-member refinement
#: falls back to independent evaluation: self-screening is quadratic in
#: the candidate count, while the output-sensitive algorithms are not.
MAX_SHARED_CANDIDATES = 8192


def permute_preference(graph: PGraph, sigma) -> PGraph:
    """The same preference with columns reordered by ``sigma``.

    New column ``j`` holds old column ``sigma[j]``; names, closure masks
    and order signatures are permuted consistently, so the permuted
    graph over the permuted columns induces exactly the original
    dominance relation.
    """
    sigma = list(sigma)
    inverse = [0] * len(sigma)
    for new, old in enumerate(sigma):
        inverse[old] = new
    names = tuple(graph.names[old] for old in sigma)
    closure = []
    for old in sigma:
        mask = 0
        for k in iter_bits(graph.closure[old]):
            mask |= 1 << inverse[k]
        closure.append(mask)
    orders = None
    if graph.orders is not None:
        orders = tuple(graph.orders[old] for old in sigma)
    return PGraph(names, closure, orders)


@dataclass
class FusedEntry:
    """One distinct canonical preference and the batch slots it serves."""

    graph: PGraph
    positions: list = field(default_factory=list)


@dataclass
class FusionGroup:
    """Distinct preferences sharing one column signature (and orders)."""

    key: tuple
    entries: list = field(default_factory=list)
    base: PGraph | None = None


class FusionPlan:
    """A fused evaluation plan for a batch of p-skyline queries."""

    __slots__ = ("count", "groups", "distinct", "dedup_hits")

    def __init__(self, count: int, groups: list):
        self.count = count
        self.groups = groups
        self.distinct = sum(len(group.entries) for group in groups)
        self.dedup_hits = count - self.distinct

    @classmethod
    def build(cls, queries) -> "FusionPlan":
        """Plan a batch of ``(graph, items)`` pairs.

        ``items`` is the per-attribute data signature -- a tuple of
        hashable, mutually comparable entries (column indices for the
        rank-matrix paths, ``(column, encoding)`` pairs for the SQL
        path) aligned with ``graph.names``.  Two queries fuse exactly
        when their canonicalised signatures and graphs agree.
        """
        queries = list(queries)
        entries: dict = {}
        ordered: list = []
        for position, (graph, items) in enumerate(queries):
            items = tuple(items)
            if len(items) != graph.d:
                raise ValueError(
                    f"query {position}: {len(items)} signature items for "
                    f"{graph.d} attributes")
            sigma = sorted(range(len(items)), key=items.__getitem__)
            if sigma == list(range(len(items))):
                canonical = graph
            else:
                canonical = permute_preference(graph, sigma)
                items = tuple(items[j] for j in sigma)
            dedup_key = (items, canonical.names, canonical.closure,
                         canonical.orders)
            entry = entries.get(dedup_key)
            if entry is None:
                entry = FusedEntry(graph=canonical)
                entries[dedup_key] = entry
                ordered.append((dedup_key, entry))
            entry.positions.append(position)
        groups: dict = {}
        group_list: list = []
        for (items, names, _closure, orders), entry in ordered:
            group_key = (items, names, orders)
            group = groups.get(group_key)
            if group is None:
                group = FusionGroup(key=items)
                groups[group_key] = group
                group_list.append(group)
            group.entries.append(entry)
        for group in group_list:
            group.base = _common_base(group.entries)
        return cls(len(queries), group_list)

    def execute(self, *, evaluate, candidates, context=None,
                chunk: int = 256,
                max_candidates: int = MAX_SHARED_CANDIDATES,
                counters: dict | None = None,
                threads: int | None = None) -> list:
        """Run the plan; one sorted index array per original query.

        ``evaluate(graph, key)`` must return the sorted row indices of
        the skyline under ``graph`` over the columns described by
        ``key``; ``candidates(indices, key)`` the corresponding rank
        rows.  Counters land in ``counters`` (if given) and in
        ``context.stats.extra["fusion"]``.  ``threads`` forwards to
        :func:`~repro.core.dominance.screen_block_multi` (``None``
        resolves through the engine thread policy); the applied budget
        comes back under ``counters["threads"]``.
        """
        results = [None] * self.count
        if counters is None:
            counters = {}
        counters.update({
            "queries": self.count, "distinct": self.distinct,
            "groups": len(self.groups), "dedup_hits": self.dedup_hits,
            "base_evaluations": 0, "screened": 0, "fallbacks": 0,
            "mask_hits": 0, "mask_misses": 0,
            # which backend served the fused groups; filled by
            # screen_block_multi, None when nothing was screened
            "kernel": None})
        check = context.check if context is not None else None
        for group in self.groups:
            base = group.base
            if not any(entry.graph.closure == base.closure
                       for entry in group.entries):
                # No member *is* the intersection, so a shared base
                # would be an extra query on top of the members -- and
                # typically a far more expensive one (the Pareto
                # weakening of a set of cheap priority chains).  Fuse
                # by deduplication alone.
                counters["base_evaluations"] += len(group.entries)
                for entry in group.entries:
                    _assign(results, entry,
                            _as_indices(evaluate(entry.graph, group.key)))
                continue
            members = []
            base_indices = None
            for entry in group.entries:
                if entry.graph.closure == base.closure:
                    if base_indices is None:
                        base_indices = _as_indices(
                            evaluate(entry.graph, group.key))
                        counters["base_evaluations"] += 1
                    _assign(results, entry, base_indices)
                else:
                    members.append(entry)
            if not members:
                continue
            if base_indices.size > max_candidates:
                # quadratic refinement would not pay off; run each
                # member through the output-sensitive path instead
                counters["fallbacks"] += len(members)
                for entry in members:
                    _assign(results, entry,
                            _as_indices(evaluate(entry.graph, group.key)))
                continue
            rows = candidates(base_indices, group.key)
            dominances = [_oracle(entry.graph, context)
                          for entry in members]
            masks = screen_block_multi(dominances, rows, chunk=chunk,
                                       check=check, counters=counters,
                                       threads=threads)
            counters["screened"] += len(members)
            for entry, mask in zip(members, masks):
                _assign(results, entry, base_indices[mask])
        if context is not None and context.stats is not None:
            context.stats.extra["fusion"] = dict(counters)
        return results


def _as_indices(indices) -> np.ndarray:
    return np.asarray(indices, dtype=np.intp)


def _assign(results: list, entry: FusedEntry, indices: np.ndarray) -> None:
    for position in entry.positions:
        results[position] = indices


def _oracle(graph: PGraph, context):
    if context is not None:
        return context.compiled(graph).dominance
    from ..engine.compiled import compile_preference
    return compile_preference(graph).dominance


def _common_base(entries: list) -> PGraph:
    """The shared base graph of a group (edge intersection).

    The per-attribute AND of transitively-closed descendant masks is
    itself transitively closed and acyclic, and is contained in every
    member (Proposition 2), so base-dominance implies member-dominance.
    The base must additionally be a *valid* p-skyline preference for the
    evaluation algorithms (an SPO, Theorem 4's envelope property); when
    the intersection is not, the empty graph -- plain Pareto, contained
    in everything -- is the base.
    """
    first = entries[0].graph
    if len(entries) == 1:
        return first
    closure = list(first.closure)
    for entry in entries[1:]:
        for i, mask in enumerate(entry.graph.closure):
            closure[i] &= mask
    try:
        base = PGraph(first.names, closure, first.orders)
        if not base.satisfies_envelope():
            raise ValueError("intersection violates the envelope property")
    except ValueError:
        base = PGraph(first.names, (0,) * first.d, first.orders)
    return base
