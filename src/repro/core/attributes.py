"""Attribute specifications and single-attribute preferences.

A single-attribute preference is a total order over the attribute's domain
(Section 2.1 of the paper).  Internally the library encodes every column into
a *rank* representation where **smaller values are better**; all algorithms
then only ever compare ranks with ``<``.  Three kinds of orders are supported:

* ``lowest``  -- natural order, small values preferred (the paper's default);
* ``highest`` -- reversed order, large values preferred;
* ``ranked``  -- an explicit total order over a discrete domain, best first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = ["Direction", "Attribute", "lowest", "highest", "ranked",
           "orders_signature"]


class Direction(enum.Enum):
    """Which end of the natural order is preferred."""

    MIN = "min"
    MAX = "max"
    RANKED = "ranked"


@dataclass(frozen=True)
class Attribute:
    """A named attribute together with its single-attribute preference.

    Parameters
    ----------
    name:
        Attribute name; must be a valid identifier-like, non-empty string.
    direction:
        Whether small values, large values, or an explicit ranking are
        preferred.
    order:
        For ``Direction.RANKED`` only: the domain values listed from the most
        preferred to the least preferred.  Every value occurring in the data
        must appear exactly once.
    """

    name: str
    direction: Direction = Direction.MIN
    order: tuple[Any, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("attribute name must be a non-empty string")
        if self.direction is Direction.RANKED:
            if not self.order:
                raise ValueError(
                    f"attribute {self.name!r}: ranked preference requires an "
                    "explicit order"
                )
            if len(set(self.order)) != len(self.order):
                raise ValueError(
                    f"attribute {self.name!r}: ranked order contains "
                    "duplicate values"
                )
        elif self.order:
            raise ValueError(
                f"attribute {self.name!r}: order is only meaningful for "
                "ranked preferences"
            )

    def encode(self, values: Sequence[Any]) -> np.ndarray:
        """Encode raw column values into ranks where smaller is better.

        Returns a ``float64`` array.  Raises :class:`ValueError` on NaNs or,
        for ranked attributes, on values outside the declared domain.
        """
        if self.direction is Direction.RANKED:
            rank_of = {value: i for i, value in enumerate(self.order)}
            try:
                ranks = np.array([rank_of[v] for v in values], dtype=np.float64)
            except KeyError as exc:
                raise ValueError(
                    f"attribute {self.name!r}: value {exc.args[0]!r} is not "
                    "in the declared ranked order"
                ) from None
            return ranks
        column = np.asarray(values, dtype=np.float64)
        if column.ndim != 1:
            raise ValueError(
                f"attribute {self.name!r}: expected a one-dimensional column"
            )
        if np.isnan(column).any():
            raise ValueError(
                f"attribute {self.name!r}: NaN values are not allowed"
            )
        if self.direction is Direction.MAX:
            return -column
        return column

    def decode(self, ranks: np.ndarray) -> np.ndarray | list[Any]:
        """Invert :meth:`encode` (used when materialising query results)."""
        if self.direction is Direction.RANKED:
            return [self.order[int(r)] for r in ranks]
        if self.direction is Direction.MAX:
            return -np.asarray(ranks)
        return np.asarray(ranks)

    def order_token(self) -> object:
        """A hashable token identifying this attribute's total order.

        ``"min"`` / ``"max"`` for directional preferences,
        ``("ranked", values)`` for explicit rankings.  Used as the
        per-attribute component of a p-graph's order signature so the
        compiled-preference cache distinguishes isomorphic p-graphs
        over differently ordered attributes.
        """
        if self.direction is Direction.RANKED:
            return ("ranked", self.order)
        return self.direction.value

    def __str__(self) -> str:
        if self.direction is Direction.RANKED:
            ordered = ", ".join(repr(v) for v in self.order)
            return f"ranked({self.name}: {ordered})"
        return f"{self.direction.value}({self.name})"


def lowest(name: str) -> Attribute:
    """Prefer small values of ``name`` (the paper's default convention)."""
    return Attribute(name, Direction.MIN)


def highest(name: str) -> Attribute:
    """Prefer large values of ``name``."""
    return Attribute(name, Direction.MAX)


def ranked(name: str, order: Sequence[Any]) -> Attribute:
    """Prefer values of ``name`` following ``order`` (best value first)."""
    return Attribute(name, Direction.RANKED, tuple(order))


def orders_signature(attributes: Sequence[Attribute]) -> tuple:
    """The order signature of a schema slice, one token per attribute."""
    return tuple(attribute.order_token() for attribute in attributes)
