"""Dominance tests for p-skyline preferences (Proposition 1).

Given two tuples ``t'`` and ``t`` over ranks where *smaller is better*,
Proposition 1 states that ``t' ≻_pi t`` holds iff the tuples are
distinguishable and

.. math::  Desc(Better(t', t)) \\supseteq Better(t, t')

Two kernel families implement this:

* **scalar** kernels represent attribute sets as Python-int bitmasks --
  ``(b1 | b2) != 0 and b2 & ~desc_union(b1) == 0`` -- and serve the
  structural algorithms and tests;
* **bulk** kernels recast the subset condition as a *coverage* test --
  an attribute won by ``t`` must have an ancestor won by ``t'`` -- which
  turns into one small GEMM per comparison block
  (``covered = better_flags @ descendant_matrix``), the fastest
  formulation NumPy offers for many-vs-many dominance.

All kernels operate on *rank* matrices produced by
:class:`~repro.core.relation.Relation`.
"""

from __future__ import annotations

import numpy as np

from .bitsets import iter_bits
from .pgraph import PGraph

__all__ = ["Dominance"]


class Dominance:
    """Dominance oracle for a fixed p-graph over ``d`` rank columns."""

    __slots__ = ("graph", "desc", "_desc_matrix", "_ones")

    def __init__(self, graph: PGraph):
        self.graph = graph
        # desc[i] = strict descendants of attribute i, as python int mask.
        self.desc = graph.closure
        d = graph.d
        # _desc_matrix[i, j] = 1 iff j is a strict descendant of i; used by
        # the coverage GEMM:  (lt @ M)[j] > 0  <=>  some won ancestor of j.
        matrix = np.zeros((d, d), dtype=np.float32)
        for i in range(d):
            for j in iter_bits(self.desc[i]):
                matrix[i, j] = 1.0
        self._desc_matrix = matrix
        self._ones = np.ones((d, 1), dtype=np.float32)

    # -- scalar kernels ------------------------------------------------------
    def better_masks(self, u: np.ndarray, v: np.ndarray) -> tuple[int, int]:
        """Return ``(Better(u, v), Better(v, u))`` as bitmasks."""
        b_uv = 0
        b_vu = 0
        for i in range(self.graph.d):
            if u[i] < v[i]:
                b_uv |= 1 << i
            elif v[i] < u[i]:
                b_vu |= 1 << i
        return b_uv, b_vu

    def dominates(self, u: np.ndarray, v: np.ndarray) -> bool:
        """True iff ``u ≻_pi v`` (u preferred to v)."""
        b_uv, b_vu = self.better_masks(u, v)
        if not (b_uv | b_vu):
            return False  # indistinguishable
        return (b_vu & ~self._desc_union(b_uv)) == 0

    def indistinguishable(self, u: np.ndarray, v: np.ndarray) -> bool:
        """True iff ``u ≈_pi v`` (equal on every relevant attribute)."""
        b_uv, b_vu = self.better_masks(u, v)
        return not (b_uv | b_vu)

    def compare(self, u: np.ndarray, v: np.ndarray) -> str:
        """Classify the pair: ``'>'``, ``'<'``, ``'~'`` or ``'='``.

        ``'>'`` means ``u ≻ v``, ``'<'`` means ``v ≻ u``, ``'='`` means
        indistinguishable and ``'~'`` means incomparable (indifferent but
        distinguishable).
        """
        b_uv, b_vu = self.better_masks(u, v)
        if not (b_uv | b_vu):
            return "="
        u_wins = (b_vu & ~self._desc_union(b_uv)) == 0
        v_wins = (b_uv & ~self._desc_union(b_vu)) == 0
        if u_wins and v_wins:  # pragma: no cover - impossible for valid graphs
            raise AssertionError("dominance in both directions")
        if u_wins:
            return ">"
        if v_wins:
            return "<"
        return "~"

    def top_mask(self, u: np.ndarray, v: np.ndarray) -> int:
        """``Top(u, v)``: topmost attributes where the tuples disagree.

        An attribute is *topmost* when none of its ancestors disagrees.
        """
        b_uv, b_vu = self.better_masks(u, v)
        diff = b_uv | b_vu
        top = 0
        for i in iter_bits(diff):
            if not (self.graph.ancestors_mask[i] & diff):
                top |= 1 << i
        return top

    def _desc_union(self, mask: int) -> int:
        union = 0
        for i in iter_bits(mask):
            union |= self.desc[i]
        return union

    # -- bulk kernels ----------------------------------------------------------
    def _dominated_flags(self, lt: np.ndarray, gt: np.ndarray) -> np.ndarray:
        """Pairwise dominance from comparison flags.

        ``lt``/``gt`` are ``(..., d)`` booleans: the *dominator candidate*
        is better / worse on each attribute.  Returns a boolean array of
        the leading shape: candidate dominates.
        """
        shape = lt.shape[:-1]
        d = lt.shape[-1]
        lt_flat = lt.reshape(-1, d).astype(np.float32)
        gt_flat = gt.reshape(-1, d).astype(np.float32)
        covered = lt_flat @ self._desc_matrix
        # a win of the dominated side is fatal unless an ancestor covers it
        fatal = gt_flat * (1.0 - np.minimum(covered, 1.0))
        fatal_any = (fatal @ self._ones)[:, 0] > 0
        distinguishable = ((lt_flat + gt_flat) @ self._ones)[:, 0] > 0
        return (distinguishable & ~fatal_any).reshape(shape)

    def dominators_mask(self, candidates: np.ndarray,
                        target: np.ndarray) -> np.ndarray:
        """Boolean vector: ``candidates[i] ≻_pi target`` for each row.

        ``candidates`` is an ``(m, d)`` rank matrix, ``target`` a length-``d``
        vector.
        """
        lt = candidates < target  # candidate better
        gt = candidates > target  # target better
        return self._dominated_flags(lt, gt)

    def dominated_mask(self, candidates: np.ndarray,
                       target: np.ndarray) -> np.ndarray:
        """Boolean vector: ``target ≻_pi candidates[i]`` for each row."""
        lt = candidates < target
        gt = candidates > target
        return self._dominated_flags(gt, lt)

    def any_dominator(self, candidates: np.ndarray,
                      target: np.ndarray) -> bool:
        """True iff some row of ``candidates`` dominates ``target``."""
        return bool(self.dominators_mask(candidates, target).any())

    def screen_block(self, block: np.ndarray, against: np.ndarray,
                     chunk: int = 256, check=None) -> np.ndarray:
        """Boolean survivors mask: rows of ``block`` not dominated by any
        row of ``against``.

        Quadratic but fully vectorised; used as the oracle, as the dense
        base case of recursive screening, and by the scan-based algorithms.
        ``chunk`` bounds the temporary ``(chunk, m, d)`` comparison tensors.
        ``check`` (e.g. ``ExecutionContext.check``) is invoked once per
        chunk so deadlines and cancellations interrupt long screenings.
        """
        n = block.shape[0]
        m = against.shape[0]
        survivors = np.ones(n, dtype=bool)
        if n == 0 or m == 0:
            return survivors
        # chunk both sides: the temporaries stay (chunk, against_chunk, d)
        # regardless of m, and deadline checks fire between inner blocks
        against_chunk = 4096
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            sub = block[start:stop]  # (c, d)
            dominated = np.zeros(stop - start, dtype=bool)
            for a_start in range(0, m, against_chunk):
                if check is not None:
                    check("screen-block")
                part = against[a_start:a_start + against_chunk]
                lt = part[None, :, :] < sub[:, None, :]  # against better
                gt = part[None, :, :] > sub[:, None, :]  # block better
                dominated |= self._dominated_flags(lt, gt).any(axis=1)
                if dominated.all():
                    break
            survivors[start:stop] = ~dominated
        return survivors
