"""Dominance tests for p-skyline preferences (Proposition 1).

Given two tuples ``t'`` and ``t`` over ranks where *smaller is better*,
Proposition 1 states that ``t' ≻_pi t`` holds iff the tuples are
distinguishable and

.. math::  Desc(Better(t', t)) \\supseteq Better(t, t')

Four kernel families implement this:

* **scalar** kernels represent attribute sets as Python-int bitmasks --
  ``(b1 | b2) != 0 and b2 & ~desc_union(b1) == 0`` -- and serve the
  structural algorithms and tests;
* **gemm** kernels recast the subset condition as a *coverage* test --
  an attribute won by ``t`` must have an ancestor won by ``t'`` -- which
  turns into one small float32 GEMM per comparison block
  (``covered = better_flags @ descendant_matrix``);
* **bitmask** kernels pack the ``Better`` sets of whole comparison
  blocks into unsigned-integer mask matrices (one bit per attribute,
  narrowest dtype that fits) and evaluate Proposition 1 as pure integer
  vector ops.  For ``d <= DENSE_TABLE_LIMIT`` the descendant union is a
  single gather from a precomputed dense ``desc_union[mask]`` table of
  ``2^d`` entries; above that it is an OR-reduction over the set-bit
  columns.  All temporaries live in a per-thread workspace arena, so
  steady-state screening performs no allocation;
* **native** kernels (:mod:`repro.core.native`, optional) compile the
  same packed Proposition 1 screen with numba
  (``@njit(cache=True, nogil=True)``) into per-pair machine loops with
  a per-row early exit, operating in place on the workspace arena --
  the zero-allocation ceiling the bitmask family still pays ufunc
  dispatch against.  When numba is missing or compilation fails, any
  ``"native"`` request degrades gracefully to ``"bitmask"`` (callers
  surface the reason; see :func:`repro.algorithms.base.resolve_kernel`).

The per-call kernel is picked by :func:`select_kernel` (``"auto"``
resolves by dimensionality and block size); :func:`forced_kernel` is a
context manager that overrides every selection on the current thread,
which the verification harness uses to cross-check kernels without
touching algorithm signatures.

Screening additionally carries an *intra-worker thread layer* under the
same seam: when the budget resolved through
:mod:`repro.engine.threads` exceeds 1, :meth:`Dominance.screen_block`
runs the compiled ``prange`` kernels (native family) or dispatches
contiguous row tiles onto a shared thread pool (bitmask family; the
kernels release the GIL in their hot sections).  Rows are screened
independently, so every budget produces bit-identical survivors, and
``check`` fires between tiles/chunks so deadline/cancel semantics are
unchanged.  Workspace arenas are *leased* per kernel entry from
per-thread free lists (:func:`_lease_workspace`), so concurrent tiles
-- and screens nested inside a tile or ``check`` callback -- never
share scratch buffers.

All kernels operate on *rank* matrices produced by
:class:`~repro.core.relation.Relation`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from . import native as _native
from .bitsets import iter_bits
from .pgraph import PGraph

__all__ = ["Dominance", "KERNELS", "DENSE_TABLE_LIMIT",
           "BITMASK_WIDTH_LIMIT", "THREAD_MIN_ROWS", "select_kernel",
           "forced_kernel", "current_forced_kernel", "native_available",
           "screen_block_multi"]

#: The concrete kernel families (``"auto"`` additionally resolves to one
#: of these through :func:`select_kernel`).  ``"native"`` is only served
#: when its compiled backend is importable (see
#: :func:`repro.core.native.availability`); selections degrade to
#: ``"bitmask"`` otherwise.
KERNELS = ("native", "bitmask", "gemm", "scalar")

#: Largest dimensionality for which the bitmask family materialises the
#: dense ``desc_union[mask]`` lookup table (``2^d`` entries).
DENSE_TABLE_LIMIT = 16

#: Largest dimensionality the bitmask family supports at all (one bit
#: per attribute in a uint64 lane).
BITMASK_WIDTH_LIMIT = 64

#: Below this many pairwise comparisons ``auto`` stays on the GEMM
#: kernel: the bitmask family's per-call packing loop (a few ufunc
#: launches per attribute) only amortises on real blocks.
SMALL_BLOCK_PAIRS = 256

#: Rows of ``against`` processed per inner screening block; bounds the
#: workspace footprint at ``chunk x AGAINST_CHUNK`` masks.
AGAINST_CHUNK = 4096

#: Smallest ``block`` the *auto* thread policy tiles across screen
#: threads; below it the tile dispatch overhead dominates.  An explicit
#: budget (``threads=`` argument or
#: :func:`repro.engine.threads.thread_budget` scope) engages the tiled
#: path regardless of size -- the verification harness relies on that
#: to tile tiny fuzz cases.
THREAD_MIN_ROWS = 2048


def _thread_policy():
    """Lazy accessor for :mod:`repro.engine.threads` (imported on first
    use -- the engine package imports this module at load time)."""
    from ..engine import threads

    return threads


def _resolve_screen_threads(threads: int | None,
                            d: int) -> tuple[int, bool]:
    """``(budget, forced)`` for one screening call.

    ``forced`` is True when the budget came from an explicit request
    (argument or thread-local scope), which bypasses
    :data:`THREAD_MIN_ROWS`.
    """
    if getattr(_TILE_STATE, "active", False):
        # a screen nested inside a running tile never re-tiles: tiles
        # would submit to the executor they occupy (deadlock risk) and
        # the outer screen already owns the budget
        return 1, False
    if threads is not None:
        return max(1, int(threads)), True
    policy = _thread_policy()
    override = policy.current_override()
    if override is not None:
        return override, True
    return policy.effective_budget(d), False


_TILE_STATE = threading.local()
_TILE_POOL = None
_TILE_POOL_SIZE = 0
_TILE_POOL_LOCK = threading.Lock()


def _tile_executor(threads: int):
    """The shared screen-tile thread pool, grown on demand.

    One process-wide :class:`~concurrent.futures.ThreadPoolExecutor`
    serves every tiled screen (tiles are short-lived and the budget
    policy bounds concurrent demand); it is recreated larger when a
    bigger budget arrives.
    """
    global _TILE_POOL, _TILE_POOL_SIZE
    from concurrent.futures import ThreadPoolExecutor

    with _TILE_POOL_LOCK:
        if _TILE_POOL is None or _TILE_POOL_SIZE < threads:
            if _TILE_POOL is not None:
                _TILE_POOL.shutdown(wait=False)
            _TILE_POOL_SIZE = max(threads, _TILE_POOL_SIZE, 4)
            _TILE_POOL = ThreadPoolExecutor(
                max_workers=_TILE_POOL_SIZE,
                thread_name_prefix="repro-screen-tile")
        return _TILE_POOL


def _tile_bounds(n: int, tiles: int) -> list[tuple[int, int]]:
    """Balanced contiguous row tiles (never empty, at most ``tiles``)."""
    tiles = max(1, min(tiles, n))
    edges = [round(i * n / tiles) for i in range(tiles + 1)]
    return [(edges[i], edges[i + 1]) for i in range(tiles)
            if edges[i + 1] > edges[i]]


def _mask_dtype_for(d: int) -> np.dtype:
    """The narrowest unsigned dtype holding ``d`` attribute bits."""
    if d <= 8:
        return np.dtype(np.uint8)
    if d <= 16:
        return np.dtype(np.uint16)
    if d <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


# -- kernel selection --------------------------------------------------------

def native_available() -> bool:
    """True iff the compiled ``native`` backend is usable (probes and
    JIT-warms :mod:`repro.core.native` on first call)."""
    return _native.available()


_FORCED = threading.local()


def current_forced_kernel() -> str | None:
    """The kernel forced on this thread, or ``None``."""
    return getattr(_FORCED, "kernel", None)


@contextmanager
def forced_kernel(name: str):
    """Force every kernel selection on this thread to ``name``.

    Wins over both ``"auto"`` resolution and explicit per-call kernel
    arguments, so a caller can cross-check any algorithm on any kernel
    without plumbing options through its signature.  Nestable; restores
    the previous force on exit.
    """
    if name not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {KERNELS}")
    previous = current_forced_kernel()
    _FORCED.kernel = name
    try:
        yield
    finally:
        _FORCED.kernel = previous


def select_kernel(kernel: str | None = None, *, d: int,
                  pairs: int | None = None) -> str:
    """Resolve a kernel request to a concrete kernel name.

    ``kernel`` may be ``None`` / ``"auto"`` (pick by ``d`` and the
    expected number of ``pairs`` per block) or a concrete name.  A
    :func:`forced_kernel` override on the current thread wins over
    everything.

    ``"auto"`` prefers ``"native"`` whenever its compiled backend is
    importable and ``d`` fits the packed width; an explicit or forced
    ``"native"`` request degrades gracefully to ``"bitmask"`` when the
    backend is unavailable (the reason is queryable through
    :func:`repro.core.native.availability` -- callers with a context
    record it as a ``kernel-fallback`` trace event).
    """
    forced = current_forced_kernel()
    if forced is not None:
        kernel = forced
    if kernel is None or kernel == "auto":
        if d > BITMASK_WIDTH_LIMIT:
            return "gemm"
        if pairs is not None and pairs < SMALL_BLOCK_PAIRS:
            return "gemm"
        return "native" if native_available() else "bitmask"
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {KERNELS} or 'auto'")
    if kernel in ("bitmask", "native") and d > BITMASK_WIDTH_LIMIT:
        raise ValueError(
            f"{kernel} kernels support at most {BITMASK_WIDTH_LIMIT} "
            f"attributes, got {d}")
    if kernel == "native" and not native_available():
        return "bitmask"
    return kernel


# -- workspace arena ---------------------------------------------------------

class _Workspace:
    """A per-thread arena of reusable flat arrays.

    ``get`` returns a contiguous view of the named backing array,
    reshaped to the requested shape, growing the backing only when a
    request exceeds its capacity.  Views from one kernel invocation are
    invalidated by the next -- public methods returning workspace-backed
    results must copy.
    """

    __slots__ = ("_arrays",)

    def __init__(self) -> None:
        self._arrays: dict[tuple, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...],
            dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        size = 1
        for extent in shape:
            size *= int(extent)
        key = (name, dtype)
        backing = self._arrays.get(key)
        if backing is None or backing.size < size:
            capacity = max(size, 1024)
            if backing is not None:
                capacity = max(capacity, 2 * backing.size)
            backing = np.empty(capacity, dtype=dtype)
            self._arrays[key] = backing
        return backing[:size].reshape(shape)


#: Per-thread free lists of workspace arenas.  Thread tiles each see
#: their own list (so tiles never share scratch buffers), and *leasing*
#: -- rather than handing every caller the one arena of its thread --
#: keeps nested kernel entries safe: a tile that re-enters
#: ``screen_block`` mid-loop (e.g. a fusion replay inside a tile, or a
#: ``check`` callback that runs another screen) pops a *distinct* arena
#: because the outer entry still holds its lease.
_WORKSPACES = threading.local()


def _workspace_pool() -> list:
    pool = getattr(_WORKSPACES, "pool", None)
    if pool is None:
        pool = []
        _WORKSPACES.pool = pool
    return pool


@contextmanager
def _lease_workspace():
    """Lease an arena for the duration of one kernel entry point.

    LIFO per thread: the steady state re-leases the same warm arena
    (zero allocation), while nested entries get a fresh one.  Views
    handed out under a lease follow the usual contract -- valid until
    the next kernel call on this thread after the lease is released.
    """
    pool = _workspace_pool()
    arena = pool.pop() if pool else _Workspace()
    try:
        yield arena
    finally:
        pool.append(arena)


def _pack_better_masks(block: np.ndarray, against: np.ndarray,
                       mdtype: np.dtype,
                       arena: _Workspace) -> tuple[np.ndarray, np.ndarray]:
    """Pack the pairwise ``Better`` sets of a comparison block.

    Returns workspace-backed ``(buv, bvu)`` mask matrices of shape
    ``(b, a)``: ``buv[i, j] = Better(against[j], block[i])`` and
    ``bvu[i, j] = Better(block[i], against[j])`` as packed attribute
    bitmasks.  The packing depends only on the rank columns, never on a
    p-graph, so one packed pair serves every graph over the same columns
    (see :func:`screen_block_multi`).  The views stay valid across
    :meth:`Dominance._eval_packed` calls (evaluation reads but never
    writes them) and are invalidated by the next packing on this thread.
    """
    d = block.shape[1]
    b = block.shape[0]
    a = against.shape[0]
    buv = arena.get("buv", (b, a), mdtype)      # Better(against, block)
    bvu = arena.get("bvu", (b, a), mdtype)      # Better(block, against)
    utmp = arena.get("utmp", (b, a), mdtype)
    bool_tmp = arena.get("btmp", (b, a), np.bool_)
    buv[...] = 0
    bvu[...] = 0
    # column-wise packing: per attribute, two comparisons against the
    # broadcast column, weighted by the attribute's bit -- no (b, a, d)
    # tensor is ever materialised
    for i in range(d):
        bit = mdtype.type(1 << i)
        block_col = block[:, i:i + 1]           # (b, 1)
        against_col = against[None, :, i]       # (1, a)
        np.greater(block_col, against_col, out=bool_tmp)
        np.multiply(bool_tmp, bit, out=utmp, casting="unsafe")
        np.bitwise_or(buv, utmp, out=buv)
        np.less(block_col, against_col, out=bool_tmp)
        np.multiply(bool_tmp, bit, out=utmp, casting="unsafe")
        np.bitwise_or(bvu, utmp, out=bvu)
    return buv, bvu


class Dominance:
    """Dominance oracle for a fixed p-graph over ``d`` rank columns."""

    __slots__ = ("graph", "desc", "_desc_matrix", "_ones", "_mask_dtype",
                 "_powers64", "_closure_masks", "_table", "_closures64",
                 "_table64")

    def __init__(self, graph: PGraph):
        self.graph = graph
        # desc[i] = strict descendants of attribute i, as python int mask.
        self.desc = graph.closure
        d = graph.d
        # _desc_matrix[i, j] = 1 iff j is a strict descendant of i; used by
        # the coverage GEMM:  (lt @ M)[j] > 0  <=>  some won ancestor of j.
        matrix = np.zeros((d, d), dtype=np.float32)
        for i in range(d):
            for j in iter_bits(self.desc[i]):
                matrix[i, j] = 1.0
        self._desc_matrix = matrix
        self._ones = np.ones((d, 1), dtype=np.float32)
        if d <= BITMASK_WIDTH_LIMIT:
            self._mask_dtype = _mask_dtype_for(d)
            self._powers64 = np.left_shift(
                np.uint64(1), np.arange(d, dtype=np.uint64))
            self._closure_masks = np.array(
                [self.desc[i] for i in range(d)],
                dtype=self._mask_dtype) if d else \
                np.zeros(0, dtype=self._mask_dtype)
        else:  # masks no longer fit a machine word: bitmask family off
            self._mask_dtype = None
            self._powers64 = None
            self._closure_masks = None
        self._table = None  # dense desc_union table, built lazily
        self._closures64 = None  # uint64 views for the native backend
        self._table64 = None

    def prepare(self) -> "Dominance":
        """Eagerly build the lazy bitmask tables (idempotent).

        :class:`~repro.engine.compiled.CompiledPreference` calls this at
        compile time so cached preferences never pay the table build on
        the query path.  When the compiled native backend is importable
        its uint64 operand views are built here too.
        """
        self._dense_table()
        if self._mask_dtype is not None and native_available():
            self._native_tables()
        return self

    def _native_tables(self) -> tuple[np.ndarray, np.ndarray, bool]:
        """``(closures, table, use_table)`` as the uint64 operands the
        native kernels are compiled for (built once, cached)."""
        closures = self._closures64
        if closures is None:
            closures = np.ascontiguousarray(self._closure_masks,
                                            dtype=np.uint64)
            self._closures64 = closures
        table = self._dense_table()
        if table is None:
            return closures, _native.EMPTY_TABLE, False
        table64 = self._table64
        if table64 is None:
            table64 = np.ascontiguousarray(table, dtype=np.uint64)
            table64.setflags(write=False)
            self._table64 = table64
        return closures, table64, True

    def _dense_table(self) -> np.ndarray | None:
        """The ``desc_union[mask]`` table, or ``None`` when ``d`` exceeds
        :data:`DENSE_TABLE_LIMIT`."""
        d = self.graph.d
        if d > DENSE_TABLE_LIMIT:
            return None
        table = self._table
        if table is None:
            # doubling build: entries [2^i, 2^{i+1}) equal the lower half
            # with attribute i's descendants OR-ed in
            table = np.zeros(1 << d, dtype=self._mask_dtype)
            for i in range(d):
                size = 1 << i
                table[size:2 * size] = table[:size] | \
                    self._mask_dtype.type(self.desc[i])
            table.setflags(write=False)
            self._table = table
        return table

    # -- scalar kernels ------------------------------------------------------
    def better_masks(self, u: np.ndarray, v: np.ndarray) -> tuple[int, int]:
        """Return ``(Better(u, v), Better(v, u))`` as bitmasks."""
        powers = self._powers64
        if powers is None:  # d > 64: python-int masks stay exact
            b_uv = 0
            b_vu = 0
            for i in range(self.graph.d):
                if u[i] < v[i]:
                    b_uv |= 1 << i
                elif v[i] < u[i]:
                    b_vu |= 1 << i
            return b_uv, b_vu
        u = np.asarray(u)
        v = np.asarray(v)
        b_uv = int(powers[np.less(u, v)].sum(dtype=np.uint64))
        b_vu = int(powers[np.less(v, u)].sum(dtype=np.uint64))
        return b_uv, b_vu

    def dominates(self, u: np.ndarray, v: np.ndarray) -> bool:
        """True iff ``u ≻_pi v`` (u preferred to v)."""
        b_uv, b_vu = self.better_masks(u, v)
        if not (b_uv | b_vu):
            return False  # indistinguishable
        return (b_vu & ~self._desc_union(b_uv)) == 0

    def indistinguishable(self, u: np.ndarray, v: np.ndarray) -> bool:
        """True iff ``u ≈_pi v`` (equal on every relevant attribute)."""
        b_uv, b_vu = self.better_masks(u, v)
        return not (b_uv | b_vu)

    def compare(self, u: np.ndarray, v: np.ndarray) -> str:
        """Classify the pair: ``'>'``, ``'<'``, ``'~'`` or ``'='``.

        ``'>'`` means ``u ≻ v``, ``'<'`` means ``v ≻ u``, ``'='`` means
        indistinguishable and ``'~'`` means incomparable (indifferent but
        distinguishable).
        """
        b_uv, b_vu = self.better_masks(u, v)
        if not (b_uv | b_vu):
            return "="
        u_wins = (b_vu & ~self._desc_union(b_uv)) == 0
        v_wins = (b_uv & ~self._desc_union(b_vu)) == 0
        if u_wins and v_wins:  # pragma: no cover - impossible for valid graphs
            raise AssertionError("dominance in both directions")
        if u_wins:
            return ">"
        if v_wins:
            return "<"
        return "~"

    def top_mask(self, u: np.ndarray, v: np.ndarray) -> int:
        """``Top(u, v)``: topmost attributes where the tuples disagree.

        An attribute is *topmost* when none of its ancestors disagrees.
        """
        b_uv, b_vu = self.better_masks(u, v)
        diff = b_uv | b_vu
        top = 0
        for i in iter_bits(diff):
            if not (self.graph.ancestors_mask[i] & diff):
                top |= 1 << i
        return top

    def _desc_union(self, mask: int) -> int:
        table = self._dense_table()
        if table is not None:
            return int(table[mask])
        union = 0
        for i in iter_bits(mask):
            union |= self.desc[i]
        return union

    # -- bulk kernels ----------------------------------------------------------
    def _dominated_flags(self, lt: np.ndarray, gt: np.ndarray) -> np.ndarray:
        """Pairwise dominance from comparison flags (the GEMM kernel).

        ``lt``/``gt`` are ``(..., d)`` booleans: the *dominator candidate*
        is better / worse on each attribute.  Returns a boolean array of
        the leading shape: candidate dominates.
        """
        shape = lt.shape[:-1]
        d = lt.shape[-1]
        lt_flat = lt.reshape(-1, d).astype(np.float32)
        gt_flat = gt.reshape(-1, d).astype(np.float32)
        covered = lt_flat @ self._desc_matrix
        # a win of the dominated side is fatal unless an ancestor covers it
        fatal = gt_flat * (1.0 - np.minimum(covered, 1.0))
        fatal_any = (fatal @ self._ones)[:, 0] > 0
        distinguishable = ((lt_flat + gt_flat) @ self._ones)[:, 0] > 0
        return (distinguishable & ~fatal_any).reshape(shape)

    def _bitmask_flags(self, block: np.ndarray, against: np.ndarray,
                       arena: _Workspace) -> np.ndarray:
        """``(b, a)`` booleans: ``against[j] ≻_pi block[i]``.

        The returned array is backed by ``arena``: it is only valid
        until the next kernel call on that arena, so callers either
        consume it immediately or copy.
        """
        buv, bvu = _pack_better_masks(block, against, self._mask_dtype,
                                      arena)
        return self._eval_packed(buv, bvu, arena)

    def _eval_packed(self, buv: np.ndarray, bvu: np.ndarray,
                     arena: _Workspace) -> np.ndarray:
        """Evaluate Proposition 1 on pre-packed ``Better`` masks.

        ``buv``/``bvu`` come from :func:`_pack_better_masks` (possibly
        packed for a *different* graph over the same columns: the masks
        depend only on the ranks).  Reads the packed masks but never
        writes them, so a single packing can be replayed against many
        p-graphs.  The returned boolean array is workspace-backed.
        """
        d = self.graph.d
        mdtype = self._mask_dtype
        b, a = buv.shape
        utmp = arena.get("utmp", (b, a), mdtype)
        union = arena.get("union", (b, a), mdtype)
        bool_tmp = arena.get("btmp", (b, a), np.bool_)
        out = arena.get("out", (b, a), np.bool_)
        table = self._dense_table()
        if table is not None:
            indices = arena.get("idx", (b, a), np.intp)
            np.copyto(indices, buv, casting="unsafe")
            np.take(table, indices, out=union)
        else:
            # OR-reduce the descendant masks of buv's set bits
            union[...] = 0
            closures = self._closure_masks
            for i in range(d):
                np.bitwise_and(buv, mdtype.type(1 << i), out=utmp)
                np.not_equal(utmp, 0, out=bool_tmp)
                np.multiply(bool_tmp, closures[i], out=utmp,
                            casting="unsafe")
                np.bitwise_or(union, utmp, out=union)
        np.bitwise_not(union, out=union)
        np.bitwise_and(bvu, union, out=union)       # uncovered block wins
        np.equal(union, 0, out=out)                 # coverage holds
        np.bitwise_or(buv, bvu, out=utmp)
        np.not_equal(utmp, 0, out=bool_tmp)         # distinguishable
        np.logical_and(out, bool_tmp, out=out)
        return out

    def _native_flags(self, block: np.ndarray, against: np.ndarray,
                      arena: _Workspace) -> np.ndarray:
        """``(b, a)`` booleans via the compiled backend (arena-backed,
        same contract as :meth:`_bitmask_flags`)."""
        block = np.ascontiguousarray(block, dtype=np.float64)
        against = np.ascontiguousarray(against, dtype=np.float64)
        closures, table, use_table = self._native_tables()
        out = arena.get("out", (block.shape[0], against.shape[0]),
                        np.bool_)
        _native.pair_flags(block, against, closures, table, use_table,
                           out)
        return out

    def _scalar_flags(self, block: np.ndarray,
                      against: np.ndarray) -> np.ndarray:
        """``(b, a)`` booleans via per-pair scalar tests (reference)."""
        out = np.empty((block.shape[0], against.shape[0]), dtype=bool)
        for i in range(block.shape[0]):
            u = block[i]
            for j in range(against.shape[0]):
                out[i, j] = self.dominates(against[j], u)
        return out

    def _pair_flags(self, block: np.ndarray, against: np.ndarray,
                    kernel: str,
                    arena: _Workspace | None = None) -> np.ndarray:
        """Dispatch ``(b, a)`` pairwise flags to a concrete kernel.

        ``kernel`` must already be concrete (see :func:`select_kernel`).
        The result may be arena-backed (bitmask/native families): loops
        pass their leased ``arena`` down; one-shot callers may leave it
        ``None`` to lease per call.
        """
        if kernel in ("native", "bitmask"):
            if arena is None:
                with _lease_workspace() as arena:
                    return (self._native_flags(block, against, arena)
                            if kernel == "native"
                            else self._bitmask_flags(block, against,
                                                     arena))
            return (self._native_flags(block, against, arena)
                    if kernel == "native"
                    else self._bitmask_flags(block, against, arena))
        if kernel == "scalar":
            return self._scalar_flags(block, against)
        lt = against[None, :, :] < block[:, None, :]  # against better
        gt = against[None, :, :] > block[:, None, :]  # block better
        return self._dominated_flags(lt, gt)

    def dominators_mask(self, candidates: np.ndarray, target: np.ndarray,
                        kernel: str | None = None) -> np.ndarray:
        """Boolean vector: ``candidates[i] ≻_pi target`` for each row.

        ``candidates`` is an ``(m, d)`` rank matrix, ``target`` a length-``d``
        vector.
        """
        kernel = select_kernel(kernel, d=self.graph.d,
                               pairs=candidates.shape[0])
        target = np.asarray(target)
        flags = self._pair_flags(target.reshape(1, -1), candidates, kernel)
        result = flags[0]
        # workspace-backed results must not outlive the next kernel call
        return result.copy() if kernel in ("bitmask", "native") else result

    def dominated_mask(self, candidates: np.ndarray, target: np.ndarray,
                       kernel: str | None = None) -> np.ndarray:
        """Boolean vector: ``target ≻_pi candidates[i]`` for each row."""
        kernel = select_kernel(kernel, d=self.graph.d,
                               pairs=candidates.shape[0])
        target = np.asarray(target)
        flags = self._pair_flags(candidates, target.reshape(1, -1), kernel)
        result = flags[:, 0]
        return result.copy() if kernel in ("bitmask", "native") else result

    def any_dominator(self, candidates: np.ndarray, target: np.ndarray,
                      kernel: str | None = None) -> bool:
        """True iff some row of ``candidates`` dominates ``target``."""
        return bool(self.dominators_mask(candidates, target,
                                         kernel=kernel).any())

    def screen_block(self, block: np.ndarray, against: np.ndarray,
                     chunk: int = 256, check=None,
                     kernel: str | None = None,
                     threads: int | None = None) -> np.ndarray:
        """Boolean survivors mask: rows of ``block`` not dominated by any
        row of ``against``.

        Quadratic but fully vectorised; used as the oracle, as the dense
        base case of recursive screening, and by the scan-based algorithms.
        ``chunk`` bounds the per-block workspace (``chunk x AGAINST_CHUNK``
        mask matrices).  ``check`` (e.g. ``ExecutionContext.check``) is
        invoked once per outer chunk and between inner ``against`` blocks,
        so deadlines and cancellations interrupt long screenings even when
        the early exit below keeps firing on the first inner block.

        ``threads`` overrides the screen thread budget for this call
        (``None`` resolves through :mod:`repro.engine.threads`).  A
        budget above 1 engages the intra-worker parallel layer for the
        native/bitmask families: the compiled ``prange`` screen when
        available, otherwise contiguous row tiles dispatched onto a
        shared thread pool (the kernels release the GIL in their hot
        sections, so tiles genuinely overlap).  Both layers produce
        bit-identical survivors -- rows are screened independently --
        and fire ``check`` between tiles/chunks so deadline/cancel
        semantics are unchanged.
        """
        n = block.shape[0]
        m = against.shape[0]
        survivors = np.ones(n, dtype=bool)
        if n == 0 or m == 0:
            return survivors
        kernel = select_kernel(kernel, d=self.graph.d,
                               pairs=min(chunk, n) * min(AGAINST_CHUNK, m))
        budget, forced = _resolve_screen_threads(threads, self.graph.d)
        budget = min(budget, n)
        threaded = (budget > 1 and kernel in ("native", "bitmask")
                    and (forced or n >= THREAD_MIN_ROWS))
        if kernel == "native":
            block = np.ascontiguousarray(block, dtype=np.float64)
            against = np.ascontiguousarray(against, dtype=np.float64)
            if threaded and _native.parallel_available():
                return self._native_screen_parallel(
                    block, against, survivors, chunk=chunk, check=check,
                    threads=budget)
        if threaded:
            return self._screen_tiled(block, against, survivors,
                                      chunk=chunk, check=check,
                                      kernel=kernel, threads=budget)
        self._screen_span(block, against, survivors, 0, n, chunk=chunk,
                          check=check, kernel=kernel)
        return survivors

    def _screen_span(self, block: np.ndarray, against: np.ndarray,
                     survivors: np.ndarray, lo: int, hi: int, *,
                     chunk: int, check, kernel: str) -> None:
        """Screen rows ``[lo, hi)`` of ``block`` into ``survivors``.

        The single-threaded screening loop shared by the serial path
        (``lo=0, hi=n``) and each thread tile.  Holds one workspace
        lease for its whole run (:func:`_lease_workspace`), so
        concurrent tiles -- and screens nested inside a ``check``
        callback -- each operate on distinct scratch buffers.  For the
        native family, packing and Proposition 1 are fused per pair
        inside :func:`repro.core.native.screen_chunk` with a per-row
        early exit; the only per-chunk temporary is the arena-backed
        ``dominated`` vector, so the steady-state loop performs zero
        Python-level allocations.
        """
        m = against.shape[0]
        use_native = kernel == "native"
        if use_native:
            closures, table, use_table = self._native_tables()
        with _lease_workspace() as arena:
            for start in range(lo, hi, chunk):
                if check is not None:
                    check("screen-block")
                stop = min(start + chunk, hi)
                sub = block[start:stop]  # (c, d)
                if use_native:
                    dominated = arena.get("dom", (stop - start,),
                                          np.bool_)
                    dominated[...] = False
                else:
                    dominated = np.zeros(stop - start, dtype=bool)
                for a_start in range(0, m, AGAINST_CHUNK):
                    if a_start and check is not None:
                        check("screen-block")
                    part = against[a_start:a_start + AGAINST_CHUNK]
                    if use_native:
                        _native.screen_chunk(sub, part, closures, table,
                                             use_table, dominated)
                    else:
                        flags = self._pair_flags(sub, part, kernel,
                                                 arena)
                        dominated |= flags.any(axis=1)
                    if dominated.all():
                        break
                survivors[start:stop] = ~dominated

    def _native_screen_parallel(self, block: np.ndarray,
                                against: np.ndarray,
                                survivors: np.ndarray, *, chunk: int,
                                check, threads: int) -> np.ndarray:
        """The compiled ``prange`` screening loop behind
        :meth:`screen_block`.

        Outer blocks grow to ``chunk * threads`` rows so every runtime
        thread owns a ``chunk``-sized row slice of the ``prange`` loop;
        rows are independent (each writes only ``dominated[i]`` and
        keeps its own early exit), so the result is bit-identical to
        the serial kernel.  ``check`` still fires between outer blocks
        and inner ``against`` chunks.
        """
        n = block.shape[0]
        m = against.shape[0]
        applied = _native.set_thread_count(threads)
        step = max(chunk, chunk * applied)
        closures, table, use_table = self._native_tables()
        with _lease_workspace() as arena:
            for start in range(0, n, step):
                if check is not None:
                    check("screen-block")
                stop = min(start + step, n)
                sub = block[start:stop]
                dominated = arena.get("dom", (stop - start,), np.bool_)
                dominated[...] = False
                for a_start in range(0, m, AGAINST_CHUNK):
                    if a_start and check is not None:
                        check("screen-block")
                    part = against[a_start:a_start + AGAINST_CHUNK]
                    _native.screen_chunk_parallel(sub, part, closures,
                                                  table, use_table,
                                                  dominated)
                    if dominated.all():
                        break
                survivors[start:stop] = ~dominated
        return survivors

    def _screen_tiled(self, block: np.ndarray, against: np.ndarray,
                      survivors: np.ndarray, *, chunk: int, check,
                      kernel: str, threads: int) -> np.ndarray:
        """Thread-tiled screening: contiguous row tiles on the shared
        executor.

        Each tile runs :meth:`_screen_span` under its own workspace
        lease (per-thread arena pools), writes a disjoint ``survivors``
        slice, and fires ``check`` between its chunks -- a deadline or
        cancellation raised inside any tile propagates here after all
        tiles settle.  Screens nested inside a tile never re-tile (see
        :func:`_resolve_screen_threads`).
        """
        n = block.shape[0]
        spans = _tile_bounds(n, threads)
        if len(spans) <= 1:
            self._screen_span(block, against, survivors, 0, n,
                              chunk=chunk, check=check, kernel=kernel)
            return survivors

        def run_tile(lo: int, hi: int) -> None:
            _TILE_STATE.active = True
            try:
                self._screen_span(block, against, survivors, lo, hi,
                                  chunk=chunk, check=check,
                                  kernel=kernel)
            finally:
                _TILE_STATE.active = False

        executor = _tile_executor(len(spans))
        futures = [executor.submit(run_tile, lo, hi)
                   for lo, hi in spans]
        error = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:  # deadline/cancel from a tile
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return survivors


def screen_block_multi(dominances, rows: np.ndarray, *, chunk: int = 256,
                       check=None, counters=None,
                       threads: int | None = None) -> list:
    """Self-screen ``rows`` under many p-graphs, packing each block once.

    ``dominances`` is a sequence of :class:`Dominance` oracles whose
    graphs all span the same ``rows`` columns.  Returns one boolean
    survivors mask per oracle -- ``masks[k][i]`` is True iff no row of
    ``rows`` dominates ``rows[i]`` under graph ``k`` -- exactly
    ``[dom.screen_block(rows, rows) for dom in dominances]`` but with
    the packed ``Better``-mask matrices shared: each
    ``(block, against)`` pair is packed once (a *mask miss*) and then
    replayed through :meth:`Dominance._eval_packed` for every graph
    that still has undominated rows in the block (each replay after the
    first is a *mask hit*).

    ``counters`` (a mutable mapping) accumulates exact ``"mask_hits"``
    and ``"mask_misses"`` counts and records the concrete replay backend
    under ``"kernel"`` (``"native"`` when the compiled backend serves
    the fused group, ``"bitmask"`` otherwise) plus the applied
    ``"threads"`` budget, so batch-bench artifacts show which backend
    did the work.  Falls back to independent
    :meth:`~Dominance.screen_block` calls when the dimensionality
    exceeds :data:`BITMASK_WIDTH_LIMIT` (no packed representation
    exists there).

    ``threads`` above 1 (or an unforced budget resolved through
    :mod:`repro.engine.threads`) switches the native replay onto the
    ``prange`` pack/eval kernels when the compiled parallel layer is
    up.  The chunk structure -- and therefore the exact mask hit/miss
    counts -- is identical at every budget; only the row loops inside
    the compiled kernels fan out.
    """
    dominances = list(dominances)
    n = rows.shape[0]
    k = len(dominances)
    if k == 0:
        return []
    d = rows.shape[1]
    if d > BITMASK_WIDTH_LIMIT or n == 0:
        if counters is not None:
            counters["kernel"] = select_kernel(
                None, d=d, pairs=n * n if n else None)
            counters["threads"] = 1
        return [dom.screen_block(rows, rows, chunk=chunk, check=check,
                                 threads=threads)
                for dom in dominances]
    # the packed replay runs natively when the compiled backend is up
    # and no interpreted kernel is forced on this thread; a forced
    # "native" without the backend degrades to the bitmask replay
    forced = current_forced_kernel()
    use_native = forced in (None, "native") and native_available()
    budget, _ = _resolve_screen_threads(threads, d)
    budget = max(1, min(budget, n))
    parallel_native = (use_native and budget > 1
                       and _native.parallel_available())
    if parallel_native:
        budget = _native.set_thread_count(budget)
        parallel_native = budget > 1
    if counters is not None:
        counters["kernel"] = "native" if use_native else "bitmask"
        counters["threads"] = budget if parallel_native else 1
    mdtype = _mask_dtype_for(d)
    if use_native:
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        tables = [dom._native_tables() for dom in dominances]
        pack = (_native.pack_masks_parallel if parallel_native
                else _native.pack_masks)
        eval_any = (_native.eval_any_parallel if parallel_native
                    else _native.eval_any)
    else:
        for dom in dominances:
            dom._dense_table()  # build outside the hot loop
    dominated = [np.zeros(n, dtype=bool) for _ in range(k)]
    with _lease_workspace() as arena:
        for start in range(0, n, chunk):
            if check is not None:
                check("screen-multi")
            stop = min(start + chunk, n)
            block = rows[start:stop]
            for a_start in range(0, n, AGAINST_CHUNK):
                if a_start and check is not None:
                    check("screen-multi")
                active = [idx for idx in range(k)
                          if not dominated[idx][start:stop].all()]
                if not active:
                    break
                part = rows[a_start:a_start + AGAINST_CHUNK]
                if use_native:
                    buv = arena.get("nbuv",
                                    (block.shape[0], part.shape[0]),
                                    np.uint64)
                    bvu = arena.get("nbvu",
                                    (block.shape[0], part.shape[0]),
                                    np.uint64)
                    pack(block, part, buv, bvu)
                else:
                    buv, bvu = _pack_better_masks(block, part, mdtype,
                                                  arena)
                if counters is not None:
                    counters["mask_misses"] = \
                        counters.get("mask_misses", 0) + 1
                    counters["mask_hits"] = \
                        counters.get("mask_hits", 0) + len(active) - 1
                for idx in active:
                    if use_native:
                        closures, table, use_table = tables[idx]
                        eval_any(buv, bvu, closures, table, use_table,
                                 dominated[idx][start:stop])
                    else:
                        flags = dominances[idx]._eval_packed(buv, bvu,
                                                             arena)
                        dominated[idx][start:stop] |= flags.any(axis=1)
    return [~mask for mask in dominated]
