"""Explanations of dominance outcomes, in terms of Proposition 1.

Preference results can surprise users ("why did my favourite car drop
out?").  These helpers turn the bitmask machinery into readable
explanations:

* :func:`explain_pair` -- why one tuple does (or does not) dominate
  another: the topmost disagreeing attributes and who wins them;
* :func:`explain_not_maximal` -- for a non-answer tuple, one witness
  dominator and the pair explanation against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitsets import indices_of
from .dominance import Dominance
from .pgraph import PGraph

__all__ = ["PairExplanation", "explain_pair", "explain_not_maximal"]


@dataclass(frozen=True)
class PairExplanation:
    """The Proposition 1 view of one ordered tuple pair."""

    outcome: str                      # '>', '<', '~' or '='
    first_wins: tuple[str, ...]       # Better(first, second)
    second_wins: tuple[str, ...]      # Better(second, first)
    topmost: tuple[str, ...]          # Top: topmost disagreeing attrs
    uncovered: tuple[str, ...]        # topmost attrs won by the loser

    def describe(self) -> str:
        """A one-paragraph plain-English rendering."""
        if self.outcome == "=":
            return ("the tuples are indistinguishable: they agree on "
                    "every relevant attribute")
        top = ", ".join(self.topmost)
        if self.outcome == ">":
            return (f"the first tuple dominates: it wins every topmost "
                    f"disagreement ({top}); everything the second tuple "
                    f"wins is outranked by one of them")
        if self.outcome == "<":
            return (f"the second tuple dominates: it wins every topmost "
                    f"disagreement ({top})")
        blockers = ", ".join(self.uncovered)
        return (f"neither dominates: the topmost disagreements ({top}) "
                f"are split -- {blockers} go(es) to the other side and "
                f"no higher-priority attribute overrides it")


def explain_pair(ranks: np.ndarray, graph: PGraph, first: int,
                 second: int) -> PairExplanation:
    """Explain the preference between rows ``first`` and ``second``."""
    dominance = Dominance(graph)
    u = ranks[first]
    v = ranks[second]
    outcome = dominance.compare(u, v)
    b_uv, b_vu = dominance.better_masks(u, v)
    top = dominance.top_mask(u, v)

    def names(mask: int) -> tuple[str, ...]:
        return tuple(graph.names[i] for i in indices_of(mask))

    if outcome == "~":
        # incomparable: topmost attributes won by each side block the other
        uncovered = top & (b_uv | b_vu)
    else:
        uncovered = 0  # one side wins every topmost disagreement
    return PairExplanation(
        outcome=outcome,
        first_wins=names(b_uv),
        second_wins=names(b_vu),
        topmost=names(top),
        uncovered=names(uncovered),
    )


def explain_not_maximal(ranks: np.ndarray, graph: PGraph,
                        row: int) -> tuple[int, PairExplanation] | None:
    """A witness dominator of ``row`` and its explanation, or ``None`` if
    the tuple is maximal."""
    dominance = Dominance(graph)
    dominators = dominance.dominators_mask(ranks, ranks[row])
    if not dominators.any():
        return None
    witness = int(np.flatnonzero(dominators)[0])
    return witness, explain_pair(ranks, graph, witness, row)
