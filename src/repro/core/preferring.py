"""A Preference-SQL-flavoured ``PREFERRING`` clause (Kießling & Köstler).

The paper notes that Pareto and prioritized accumulation have been added
to SQL as *Preference SQL*; this module provides a small textual clause in
that spirit, so preferences over raw (un-encoded) relations can be stated
inline::

    PREFERRING lowest(price) & (lowest(mileage) * highest(horsepower))

Grammar (``&`` binds tighter than ``*``, as in the p-expression parser)::

    clause -> pareto
    pareto -> prio ( '*' prio )*
    prio   -> atom ( '&' atom )*
    atom   -> term | '(' clause ')'
    term   -> NAME | 'lowest' '(' NAME ')' | 'highest' '(' NAME ')'

A bare ``NAME`` means ``lowest(NAME)`` (the paper's default convention).
:func:`evaluate_preferring` re-encodes the referenced columns according to
the clause's directions, so the same relation can be queried with
different orientations without rebuilding it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..algorithms.base import Stats, ensure_context, get_algorithm
from ..engine.context import ExecutionContext
from .attributes import Attribute, Direction
from .expressions import Att, PExpr, pareto, prioritized
from .parser import ParseError
from .pgraph import PGraph
from .relation import Relation

__all__ = ["PreferringClause", "parse_preferring", "evaluate_preferring",
           "resolve_preferring", "encode_columns"]


@dataclass(frozen=True)
class PreferringClause:
    """A parsed clause: the p-expression plus per-attribute directions."""

    expression: PExpr
    directions: dict[str, Direction]

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.expression.attributes()


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<keyword>lowest|highest)\s*\("
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>[*⊗&()])"
    r")",
    re.IGNORECASE,
)


class _ClauseParser:
    def __init__(self, text: str):
        self.tokens = self._tokenize(text)
        self.position = 0
        self.directions: dict[str, Direction] = {}

    @staticmethod
    def _tokenize(text: str) -> list[tuple[str, str]]:
        tokens: list[tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise ParseError(
                    f"unexpected input {remainder[:10]!r} in PREFERRING "
                    "clause"
                )
            if match.group("keyword"):
                tokens.append(("keyword", match.group("keyword").lower()))
            elif match.group("name"):
                tokens.append(("name", match.group("name")))
            else:
                tokens.append(("op", match.group("op")))
            position = match.end()
        return tokens

    def peek(self) -> tuple[str, str] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of PREFERRING clause")
        self.position += 1
        return token

    def parse(self) -> PreferringClause:
        expr = self.pareto()
        if self.peek() is not None:
            raise ParseError(
                f"trailing input {self.peek()[1]!r} in PREFERRING clause"
            )
        return PreferringClause(expr, dict(self.directions))

    def pareto(self) -> PExpr:
        parts = [self.prio()]
        while (token := self.peek()) is not None and token == ("op", "*"):
            self.advance()
            parts.append(self.prio())
        return pareto(*parts)

    def prio(self) -> PExpr:
        parts = [self.atom()]
        while (token := self.peek()) is not None and token == ("op", "&"):
            self.advance()
            parts.append(self.atom())
        return prioritized(*parts)

    def atom(self) -> PExpr:
        kind, text = self.advance()
        if kind == "keyword":
            direction = (Direction.MIN if text == "lowest"
                         else Direction.MAX)
            kind, name = self.advance()
            if kind != "name":
                raise ParseError(f"{text}(...) needs an attribute name")
            closing = self.advance()
            if closing != ("op", ")"):
                raise ParseError(f"missing ')' after {text}({name}")
            self._record(name, direction)
            return Att(name)
        if kind == "name":
            self._record(text, Direction.MIN)
            return Att(text)
        if (kind, text) == ("op", "("):
            inner = self.pareto()
            if self.advance() != ("op", ")"):
                raise ParseError("unbalanced parentheses in PREFERRING")
            return inner
        raise ParseError(f"unexpected token {text!r} in PREFERRING clause")

    def _record(self, name: str, direction: Direction) -> None:
        if self.directions.get(name, direction) is not direction:
            raise ParseError(
                f"attribute {name!r} used with conflicting directions"
            )
        self.directions[name] = direction


def parse_preferring(text: str) -> PreferringClause:
    """Parse a ``PREFERRING`` clause body (without the keyword itself)."""
    text = text.strip()
    if text.upper().startswith("PREFERRING"):
        text = text[len("PREFERRING"):]
    if not text.strip():
        raise ParseError("empty PREFERRING clause")
    return _ClauseParser(text).parse()


def resolve_preferring(relation: Relation,
                       clause: PreferringClause | str
                       ) -> tuple[PGraph, tuple]:
    """Resolve a clause to ``(graph, items)`` without touching rows.

    ``graph`` carries the order signature the clause induces; ``items``
    is the per-attribute *encoding signature* -- one
    ``(column_index, code)`` pair per attribute, where ``code`` is
    ``"+"`` (schema direction kept), ``"-"`` (column negated) or
    ``"ranked"``.  Two clauses whose items agree read identical encoded
    columns, which is what the batch fusion layer keys on; feed the
    items to :func:`encode_columns` to materialise the matrix.
    """
    if isinstance(clause, str):
        clause = parse_preferring(clause)
    names = clause.attributes
    items = []
    orders = []
    for name in names:
        if name not in relation.names:
            raise KeyError(f"unknown attribute {name!r} in PREFERRING")
        index = relation.names.index(name)
        attribute: Attribute = relation.schema[index]
        wanted = clause.directions[name]
        if attribute.direction is Direction.RANKED:
            if wanted is Direction.MAX:
                raise ParseError(
                    f"highest({name}) is not allowed on a ranked attribute"
                )
            items.append((index, "ranked"))
            orders.append(attribute.order_token())
        elif wanted is attribute.direction:
            items.append((index, "+"))
            orders.append(wanted.value)
        else:
            items.append((index, "-"))
            orders.append(wanted.value)
    graph = PGraph.from_expression(clause.expression, names=names) \
        .with_orders(orders)
    return graph, tuple(items)


def encode_columns(relation: Relation, items) -> np.ndarray:
    """The encoded rank matrix for a :func:`resolve_preferring`
    signature (one column per item, negated where the clause flips the
    schema direction)."""
    columns = []
    for index, code in items:
        ranks = relation.ranks[:, index]
        columns.append(-ranks if code == "-" else ranks)
    if not columns:
        return np.empty((len(relation), 0))
    return np.ascontiguousarray(np.column_stack(columns))


def evaluate_preferring(relation: Relation, clause: PreferringClause | str,
                        *, algorithm: str = "osdc",
                        stats: Stats | None = None,
                        context: ExecutionContext | None = None
                        ) -> Relation:
    """Evaluate a ``PREFERRING`` clause against a relation.

    Directions in the clause override the relation's schema: a column
    declared ``lowest`` in the schema can be queried with ``highest(...)``
    (ranked attributes reject ``highest``, as reversing an explicit
    ranking is more likely a mistake than an intent).
    """
    graph, items = resolve_preferring(relation, clause)
    matrix = encode_columns(relation, items)
    function = get_algorithm(algorithm)
    context = ensure_context(context, stats)
    indices = function(matrix, graph, context=context)
    return relation.take(indices)
