"""P-graphs: the priority structure induced by a p-expression.

A p-graph :math:`\\Gamma_\\pi` (Definition 2) has one vertex per attribute in
``Var(pi)`` and an edge ``A -> B`` whenever the preference on ``A`` is more
important than the one on ``B``.  P-graphs are transitive and acyclic by
construction.  This module stores the *transitive closure* as per-vertex
descendant bitmasks and derives the transitive reduction
:math:`\\Gamma^r_\\pi`, roots, depths, and the set operators
(``Succ``/``Pre``/``Desc``/``Anc``) used by the algorithms.

Theorem 4 (Mindolin & Chomicki) characterises which graphs are p-graphs:
exactly the transitive, irreflexive graphs satisfying the *envelope
property*.  :meth:`PGraph.satisfies_envelope` and :meth:`PGraph.is_valid`
implement that check and are the basis of the sampling framework.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .bitsets import MAX_ATTRIBUTES, indices_of, iter_bits
from .expressions import PExpr

__all__ = ["PGraph", "CyclicPriorityError"]


class CyclicPriorityError(ValueError):
    """Raised when a declared priority edge set contains a cycle."""


class PGraph:
    """The priority DAG over the attributes of a p-expression.

    Attributes are identified by their column position ``0..d-1``; ``names``
    maps positions to attribute names.  ``closure[i]`` is the bitmask of all
    *strict descendants* of attribute ``i`` in the transitive closure.
    Instances are immutable.
    """

    __slots__ = (
        "names",
        "closure",
        "orders",
        "ancestors_mask",
        "_reduction",
        "_depths",
        "_roots",
    )

    def __init__(self, names: Sequence[str], closure: Sequence[int],
                 orders: Sequence[object] | None = None):
        if len(names) != len(set(names)):
            raise ValueError("attribute names must be distinct")
        if len(names) > MAX_ATTRIBUTES:
            raise ValueError(
                f"at most {MAX_ATTRIBUTES} attributes are supported"
            )
        if len(closure) != len(names):
            raise ValueError("closure must have one mask per attribute")
        if orders is not None and len(orders) != len(names):
            raise ValueError("orders must have one entry per attribute")
        self.names = tuple(names)
        self.closure = tuple(int(m) for m in closure)
        #: Optional per-attribute total-order signature (``"min"``,
        #: ``"max"`` or ``("ranked", values)``), attached by callers that
        #: re-encode raw columns.  It never affects the priority
        #: structure -- algorithms only see ranks -- but it is part of
        #: the identity of the preference, so the compiled-preference
        #: cache keys on it (two isomorphic p-graphs over differently
        #: directed attributes must not share a cache entry).
        self.orders = tuple(orders) if orders is not None else None
        d = len(self.names)
        for i, mask in enumerate(self.closure):
            if mask >> d:
                raise ValueError(f"descendant mask of {names[i]} out of range")
            if mask & (1 << i):
                raise ValueError(f"attribute {names[i]} cannot dominate itself")
        self._check_transitive_acyclic()
        anc = [0] * d
        for i in range(d):
            for j in iter_bits(self.closure[i]):
                anc[j] |= 1 << i
        self.ancestors_mask = tuple(anc)
        self._reduction: tuple[int, ...] | None = None
        self._depths: tuple[int, ...] | None = None
        self._roots: int | None = None

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_expression(cls, expr: PExpr,
                        names: Sequence[str] | None = None) -> "PGraph":
        """Build the p-graph of ``expr`` (Definition 2).

        ``names`` fixes the column order; it defaults to the order of first
        appearance in the expression and must contain exactly ``Var(expr)``.
        """
        attrs = expr.attributes()
        if names is None:
            names = attrs
        if set(names) != set(attrs) or len(names) != len(attrs):
            raise ValueError(
                "names must be a permutation of the expression's attributes"
            )
        index = {name: i for i, name in enumerate(names)}
        closure = [0] * len(names)
        for upper, lower in expr.edges():
            closure[index[upper]] |= 1 << index[lower]
        return cls(names, closure)

    @classmethod
    def from_edges(cls, names: Sequence[str],
                   edges: Iterable[tuple[str, str]]) -> "PGraph":
        """Build a p-graph from explicit priority edges, closing transitively.

        Raises :class:`CyclicPriorityError` if the edges contain a cycle.
        The result is **not** guaranteed to satisfy the envelope property;
        call :meth:`is_valid` to check whether a p-expression realises it.
        """
        index = {name: i for i, name in enumerate(names)}
        d = len(names)
        direct = [0] * d
        for upper, lower in edges:
            if upper not in index or lower not in index:
                missing = upper if upper not in index else lower
                raise ValueError(f"unknown attribute {missing!r} in edge list")
            if upper == lower:
                raise CyclicPriorityError(
                    f"self-loop on attribute {upper!r}"
                )
            direct[index[upper]] |= 1 << index[lower]
        closure = _transitive_closure(direct)
        for i in range(d):
            if closure[i] & (1 << i):
                raise CyclicPriorityError(
                    f"priority edges contain a cycle through {names[i]!r}"
                )
        return cls(names, closure)

    @classmethod
    def empty(cls, names: Sequence[str]) -> "PGraph":
        """The edgeless p-graph: the plain skyline preference (Section 2.2)."""
        return cls(names, [0] * len(names))

    # -- basic structure -------------------------------------------------------
    @property
    def d(self) -> int:
        """Number of attributes, the paper's ``d``."""
        return len(self.names)

    @property
    def all_mask(self) -> int:
        return (1 << self.d) - 1 if self.d else 0

    def descendants(self, i: int) -> int:
        """``Desc(A_i)``: strict descendants of attribute ``i``, as a mask."""
        return self.closure[i]

    def ancestors(self, i: int) -> int:
        """``Anc(A_i)``: strict ancestors of attribute ``i``, as a mask."""
        return self.ancestors_mask[i]

    def desc_of_set(self, mask: int) -> int:
        """Union of ``Desc`` over all attributes in ``mask``."""
        result = 0
        for i in iter_bits(mask):
            result |= self.closure[i]
        return result

    @property
    def reduction(self) -> tuple[int, ...]:
        """Adjacency (successor masks) of the transitive reduction."""
        if self._reduction is None:
            self._reduction = tuple(self._reduce())
        return self._reduction

    def _reduce(self) -> list[int]:
        # In a transitively closed DAG, (i, j) is a reduction edge iff no
        # intermediate k has i -> k -> j.
        reduced = []
        for i in range(self.d):
            mask = self.closure[i]
            keep = mask
            for k in iter_bits(mask):
                keep &= ~self.closure[k]
            reduced.append(keep)
        return reduced

    def successors(self, i: int) -> int:
        """``Succ(A_i)``: immediate successors in the transitive reduction."""
        return self.reduction[i]

    def predecessors(self, i: int) -> int:
        """``Pre(A_i)``: immediate predecessors in the transitive reduction."""
        mask = 0
        for j in range(self.d):
            if self.reduction[j] & (1 << i):
                mask |= 1 << j
        return mask

    @property
    def roots(self) -> int:
        """``Roots``: attributes with no ancestors, as a mask."""
        if self._roots is None:
            mask = 0
            for i in range(self.d):
                if not self.ancestors_mask[i]:
                    mask |= 1 << i
            self._roots = mask
        return self._roots

    @property
    def num_roots(self) -> int:
        return self.roots.bit_count()

    @property
    def num_edges(self) -> int:
        """Number of edges of the (transitively closed) p-graph."""
        return sum(mask.bit_count() for mask in self.closure)

    @property
    def depths(self) -> tuple[int, ...]:
        """Depth of each attribute: longest path from any root (roots = 0)."""
        if self._depths is None:
            depths = [0] * self.d
            order = self.topological_order()
            for i in order:
                for j in iter_bits(self.reduction[i]):
                    depths[j] = max(depths[j], depths[i] + 1)
            self._depths = tuple(depths)
        return self._depths

    def topological_order(self) -> list[int]:
        """A topological order of the priority DAG (ancestors first)."""
        indegree = [self.ancestors_mask[i].bit_count() for i in range(self.d)]
        # Kahn's algorithm over the closure (counts shrink consistently
        # because the closure of a DAG is itself a DAG).
        ready = [i for i in range(self.d) if indegree[i] == 0]
        order: list[int] = []
        remaining = list(indegree)
        while ready:
            i = ready.pop()
            order.append(i)
            for j in iter_bits(self.closure[i]):
                remaining[j] -= 1
                if remaining[j] == 0:
                    ready.append(j)
        if len(order) != self.d:
            raise CyclicPriorityError("priority graph contains a cycle")
        return order

    def edges(self) -> set[tuple[str, str]]:
        """All edges of the transitive closure, by attribute name."""
        result = set()
        for i in range(self.d):
            for j in iter_bits(self.closure[i]):
                result.add((self.names[i], self.names[j]))
        return result

    def reduction_edges(self) -> set[tuple[str, str]]:
        """Edges of the transitive reduction, by attribute name."""
        result = set()
        for i in range(self.d):
            for j in iter_bits(self.reduction[i]):
                result.add((self.names[i], self.names[j]))
        return result

    # -- semantics-level relations (Proposition 2) ----------------------------
    def contains(self, other: "PGraph") -> bool:
        """True iff ``other``'s preference is contained in this one.

        Proposition 2: for equal attribute sets, edge containment of the
        p-graphs coincides with containment of the preference relations.
        """
        if self.names != other.names:
            raise ValueError("containment requires identical attribute order")
        return all(
            (other.closure[i] & ~self.closure[i]) == 0 for i in range(self.d)
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PGraph)
            and self.names == other.names
            and self.closure == other.closure
            and self.orders == other.orders
        )

    def __hash__(self) -> int:
        return hash((self.names, self.closure, self.orders))

    def with_orders(self, orders: Sequence[object] | None) -> "PGraph":
        """A copy of this p-graph carrying the given order signature."""
        return PGraph(self.names, self.closure, orders)

    # -- validity (Theorem 4) --------------------------------------------------
    def _check_transitive_acyclic(self) -> None:
        for i in range(self.d):
            mask = self.closure[i]
            for k in iter_bits(mask):
                if self.closure[k] & ~mask:
                    raise ValueError(
                        "descendant masks are not transitively closed"
                    )
                if self.closure[k] & (1 << i):
                    raise CyclicPriorityError(
                        f"cycle between {self.names[i]} and {self.names[k]}"
                    )

    def satisfies_envelope(self) -> bool:
        """Check the envelope property of Theorem 4.

        For all distinct ``A1, A2, A3, A4``: if ``A1->A2``, ``A3->A4`` and
        ``A3->A2`` are edges, then at least one of ``A3->A1``, ``A1->A4`` or
        ``A4->A2`` must be an edge.
        """
        d = self.d
        has = self.closure
        for a3 in range(d):
            desc3 = has[a3]
            for a2 in iter_bits(desc3):
                for a1 in range(d):
                    if a1 == a2 or a1 == a3:
                        continue
                    if not has[a1] & (1 << a2):
                        continue
                    if has[a3] & (1 << a1):
                        continue
                    for a4 in iter_bits(desc3):
                        if a4 in (a1, a2):
                            continue
                        if has[a1] & (1 << a4):
                            continue
                        if not has[a4] & (1 << a2):
                            return False
        return True

    def is_weak_order(self) -> bool:
        """True iff the priority order is a weak order (rankable layers)."""
        # A strict partial order is a weak order iff incomparability is
        # transitive, i.e. attributes with equal (ancestors, descendants)
        # signatures partition into totally ordered layers.
        for i in range(self.d):
            for j in range(self.d):
                if i == j:
                    continue
                comparable = bool(
                    self.closure[i] & (1 << j) or self.closure[j] & (1 << i)
                )
                if not comparable:
                    if (self.closure[i] != self.closure[j]
                            or self.ancestors_mask[i] != self.ancestors_mask[j]):
                        return False
        return True

    def is_valid(self) -> bool:
        """True iff some p-expression realises this graph (Theorem 4)."""
        return self.satisfies_envelope()

    def restrict(self, mask: int) -> "PGraph":
        """Induced sub-p-graph on the attributes in ``mask``.

        Column positions are compacted; the relative order of the surviving
        attributes is preserved.
        """
        keep = indices_of(mask)
        position = {old: new for new, old in enumerate(keep)}
        names = [self.names[i] for i in keep]
        closure = []
        for i in keep:
            sub = 0
            for j in iter_bits(self.closure[i] & mask):
                sub |= 1 << position[j]
            closure.append(sub)
        orders = None if self.orders is None else \
            [self.orders[i] for i in keep]
        return PGraph(names, closure, orders)

    def __str__(self) -> str:
        if not self.num_edges:
            return f"PGraph({', '.join(self.names)}; no edges)"
        edges = ", ".join(
            f"{a}->{b}" for a, b in sorted(self.reduction_edges())
        )
        return f"PGraph({', '.join(self.names)}; {edges})"

    def __repr__(self) -> str:
        return str(self)


def _transitive_closure(direct: list[int]) -> list[int]:
    """Close an adjacency-mask list transitively (iterative squaring)."""
    closure = list(direct)
    changed = True
    while changed:
        changed = False
        for i in range(len(closure)):
            mask = closure[i]
            extended = mask
            for j in iter_bits(mask):
                extended |= closure[j]
            if extended != mask:
                closure[i] = extended
                changed = True
    return closure
