"""The weak-order extension ``≻ext`` of a p-skyline preference (Section 6).

Theorem 3: sort tuples by the lexicographic composition of the per-depth
rank sums,

.. math::  ≻_{ext} = ≻_{sum_0} \\& ≻_{sum_1} \\& \\dots \\& ≻_{sum_{d-1}}

where ``sum_i(t)`` adds the ranks of all attributes whose depth in the
transitive reduction is ``i``.  Sorting the input by ``≻ext`` guarantees
that no tuple is ``≻_pi``-dominated by a tuple that follows it, which is
exactly the presorting property SFS and LESS require.
"""

from __future__ import annotations

import numpy as np

from .pgraph import PGraph

__all__ = ["ExtensionOrder"]


class ExtensionOrder:
    """Materialises ``≻ext`` keys and presorted permutations for a p-graph."""

    __slots__ = ("graph", "levels", "_level_masks")

    def __init__(self, graph: PGraph):
        self.graph = graph
        depths = graph.depths
        num_levels = (max(depths) + 1) if depths else 0
        # _level_masks[i] is a boolean column selector for depth-i attributes.
        self._level_masks = [
            np.array([depth == level for depth in depths], dtype=bool)
            for level in range(num_levels)
        ]
        self.levels = num_levels

    def keys(self, ranks: np.ndarray) -> np.ndarray:
        """Per-depth sums: an ``(n, levels)`` matrix, level 0 first.

        Row-wise lexicographic comparison of the key matrix realises
        ``≻ext`` (smaller key = more preferred).
        """
        n = ranks.shape[0]
        keys = np.empty((n, self.levels), dtype=np.float64)
        for level, mask in enumerate(self._level_masks):
            keys[:, level] = ranks[:, mask].sum(axis=1)
        return keys

    def argsort(self, ranks: np.ndarray) -> np.ndarray:
        """Permutation sorting rows best-first according to ``≻ext``.

        The sort is stable, so ties (tuples that are ``≻ext``-equivalent)
        keep their input order.
        """
        keys = self.keys(ranks)
        if keys.shape[1] == 0:
            return np.arange(ranks.shape[0])
        # np.lexsort uses the *last* key as primary; depth 0 must dominate.
        return np.lexsort(tuple(keys[:, level]
                                for level in range(self.levels - 1, -1, -1)))

    def strictly_precedes(self, u: np.ndarray, v: np.ndarray) -> bool:
        """Scalar test ``u ≻ext v`` on two rank vectors (for verification)."""
        for mask in self._level_masks:
            su = float(u[mask].sum())
            sv = float(v[mask].sum())
            if su < sv:
                return True
            if su > sv:
                return False
        return False
