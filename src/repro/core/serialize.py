"""JSON serialisation for p-expressions / p-graphs, and relation storage.

Enables persisting elicited preferences next to the data they apply to:

* :func:`expression_to_json` / :func:`expression_from_json` -- a stable
  nested-dict encoding of the AST;
* :func:`pgraph_to_json` / :func:`pgraph_from_json` -- names plus the
  transitive-closure edge list;
* :func:`save_relation` / :func:`load_relation` -- an ``.npz`` file with
  the rank matrix and a JSON-encoded schema (ranked attribute orders
  included).  Original raw values are reconstructed by decoding, so
  ``MIN``/``MAX``/``RANKED`` round-trip exactly.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from .attributes import Attribute, Direction
from .expressions import Att, Pareto, PExpr, Prioritized, pareto, prioritized
from .pgraph import PGraph
from .relation import Relation

__all__ = [
    "expression_to_json",
    "expression_from_json",
    "pgraph_to_json",
    "pgraph_from_json",
    "save_relation",
    "load_relation",
]


def expression_to_json(expression: PExpr) -> dict[str, Any]:
    """Encode a p-expression as nested dicts (stable, versioned)."""
    if isinstance(expression, Att):
        return {"op": "att", "name": expression.name}
    operator = "pareto" if isinstance(expression, Pareto) else "prioritized"
    return {
        "op": operator,
        "children": [expression_to_json(child)
                     for child in expression.children],
    }


def expression_from_json(payload: dict[str, Any]) -> PExpr:
    """Inverse of :func:`expression_to_json`."""
    operator = payload.get("op")
    if operator == "att":
        return Att(payload["name"])
    children = [expression_from_json(child)
                for child in payload.get("children", [])]
    if operator == "pareto":
        return pareto(*children)
    if operator == "prioritized":
        return prioritized(*children)
    raise ValueError(f"unknown p-expression operator {operator!r}")


def pgraph_to_json(graph: PGraph) -> dict[str, Any]:
    """Encode a p-graph as names + closure edges (+ order signature)."""
    payload: dict[str, Any] = {
        "names": list(graph.names),
        "edges": sorted(graph.edges()),
    }
    if graph.orders is not None:
        payload["orders"] = [list(token) if isinstance(token, tuple)
                             else token for token in graph.orders]
    return payload


def _order_token_from_json(token: Any) -> Any:
    if isinstance(token, list):  # ("ranked", (values...)) round-trip
        return tuple(_order_token_from_json(part) for part in token)
    return token


def pgraph_from_json(payload: dict[str, Any]) -> PGraph:
    """Inverse of :func:`pgraph_to_json`."""
    graph = PGraph.from_edges(payload["names"],
                              [tuple(edge) for edge in payload["edges"]])
    orders = payload.get("orders")
    if orders is not None:
        graph = graph.with_orders(
            [_order_token_from_json(token) for token in orders])
    return graph


def _schema_to_json(schema) -> str:
    return json.dumps([
        {
            "name": attribute.name,
            "direction": attribute.direction.value,
            "order": list(attribute.order),
        }
        for attribute in schema
    ])


def _schema_from_json(text: str):
    schema = []
    for item in json.loads(text):
        direction = Direction(item["direction"])
        schema.append(Attribute(item["name"], direction,
                                tuple(item["order"])))
    return schema


def save_relation(relation: Relation, path: str) -> None:
    """Persist a relation as ``.npz`` (ranks + JSON schema)."""
    np.savez_compressed(
        path,
        ranks=relation.ranks,
        schema=np.array(_schema_to_json(relation.schema)),
    )


def load_relation(path: str) -> Relation:
    """Load a relation previously written by :func:`save_relation`."""
    with np.load(path, allow_pickle=False) as payload:
        schema = _schema_from_json(str(payload["schema"]))
        ranks = payload["ranks"]
    return Relation(schema, ranks.copy())
