"""The high-level p-skyline query API.

:func:`p_skyline` evaluates ``M_pi(D)`` for a relation (or bare rank
matrix) and a p-expression (or its textual form), dispatching to any
registered algorithm.  This is the entry point a library user should
reach for first::

    from repro import Relation, lowest, highest, p_skyline

    cars = Relation.from_records(records,
                                 [lowest("price"), lowest("mileage"),
                                  highest("horsepower")])
    best = p_skyline(cars, "(price & horsepower) * mileage")
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..algorithms.base import Stats, ensure_context, get_algorithm
from ..engine.context import ExecutionContext
from .attributes import orders_signature
from .expressions import PExpr
from .parser import parse
from .pgraph import PGraph
from .relation import Relation

__all__ = ["p_skyline", "p_skyline_batch", "skyline"]


def _resolve_expression(expression: PExpr | str) -> PExpr:
    if isinstance(expression, str):
        return parse(expression)
    if isinstance(expression, PExpr):
        return expression
    raise TypeError(
        f"expected a PExpr or its textual form, got {type(expression)}"
    )


def p_skyline(data: Relation | np.ndarray, expression: PExpr | str, *,
              algorithm: str = "osdc", stats: Stats | None = None,
              context: ExecutionContext | None = None,
              timeout: float | None = None,
              **options: Any) -> Relation | np.ndarray:
    """Evaluate the p-skyline query ``M_pi(data)``.

    Parameters
    ----------
    data:
        A :class:`Relation`, or a raw ``(n, d)`` matrix in which smaller
        values are better and columns are named ``A0..A{d-1}``.
    expression:
        A p-expression AST or its textual form (see
        :mod:`repro.core.parser`).  Attributes the expression does not
        mention are ignored (they are irrelevant for ``≻_pi``).
    algorithm:
        A registry name (``osdc`` by default; see
        :data:`repro.algorithms.REGISTRY`).
    stats:
        Optional :class:`~repro.algorithms.base.Stats` to fill with work
        counters.
    context:
        Optional :class:`~repro.engine.ExecutionContext` carrying a
        deadline, cancellation token, memory budget, trace buffer and
        compiled-preference cache.  Created on the fly when absent.
    timeout:
        Shorthand for ``context`` with only a deadline: the query raises
        :class:`~repro.engine.QueryTimeout` after this many seconds.
    options:
        Forwarded to the algorithm (e.g. ``filter_size`` for LESS).

    Returns
    -------
    A :class:`Relation` of the maximal tuples (when given a relation) or
    the sorted row-index array (when given a matrix).
    """
    from .sharding import ShardedRelation

    if isinstance(data, ShardedRelation):
        # sharded relations pin a snapshot and plan per shard
        return data.p_skyline(expression, algorithm=algorithm,
                              stats=stats, context=context,
                              timeout=timeout, **options)
    expr = _resolve_expression(expression)
    names = expr.attributes()
    if timeout is not None:
        if context is not None:
            raise ValueError("pass either timeout or context, not both")
        context = ExecutionContext.create(stats=stats, timeout=timeout)
    context = ensure_context(context, stats)
    if algorithm == "auto":
        from ..planner import DEFAULT_PLANNER

        def function(ranks, graph, stats=None, context=None, **opts):
            return DEFAULT_PLANNER.execute(ranks, graph, stats=stats,
                                           context=context)
    else:
        function = get_algorithm(algorithm)
    if getattr(context, "threads", None) is not None:
        # an explicit per-query budget scopes the whole evaluation: every
        # screen below resolves to it (see repro.engine.threads)
        from ..engine.threads import thread_budget

        inner, budget = function, context.threads

        def function(ranks, graph, inner=inner, budget=budget, **kwargs):
            with thread_budget(budget):
                return inner(ranks, graph, **kwargs)
    if isinstance(data, Relation):
        missing = [name for name in names if name not in data.names]
        if missing:
            raise KeyError(
                f"expression uses attributes not in the relation: {missing}"
            )
        columns = [data.names.index(name) for name in names]
        ranks = data.ranks[:, columns]
        graph = PGraph.from_expression(expr, names=names).with_orders(
            orders_signature([data.schema[c] for c in columns]))
        indices = function(ranks, graph, stats=stats, context=context,
                           **options)
        return data.take(indices)
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-d matrix")
    default_names = [f"A{j}" for j in range(matrix.shape[1])]
    missing = [name for name in names if name not in default_names]
    if missing:
        raise KeyError(
            f"expression uses attributes not in the matrix: {missing} "
            f"(matrix columns are named A0..A{matrix.shape[1] - 1})"
        )
    columns = [default_names.index(name) for name in names]
    graph = PGraph.from_expression(expr, names=names)
    return function(matrix[:, columns], graph, stats=stats,
                    context=context, **options)


def p_skyline_batch(data: Relation | np.ndarray,
                    expressions, *,
                    algorithm: str = "osdc",
                    stats: Stats | None = None,
                    context: ExecutionContext | None = None,
                    timeout: float | None = None,
                    processes: int | None = None,
                    min_chunk: int = 4096,
                    **options: Any) -> list:
    """Evaluate many p-skyline queries against **one** data set.

    The "many users, one data set" shape of a loaded service: the rank
    matrix is registered into the worker pool's shared memory once and
    each p-expression ships only descriptors
    (:meth:`repro.engine.pool.WorkerPool.map_queries`), so a batch of
    ``k`` queries costs one registration instead of ``k`` cold
    registrations and pool start-ups.  ``algorithm`` names the
    *per-chunk* evaluator (``osdc`` by default).  Stats from every
    worker of every query are merged into ``stats``/``context.stats``.

    Every batch is first planned by
    :class:`~repro.core.fusion.FusionPlan`: duplicate preferences are
    evaluated once, and distinct preferences over a shared column
    signature are refined from their common base skyline with shared
    packed ``Better`` masks (``stats.extra["fusion"]`` reports the
    exact hit/miss counters).  ``algorithm="auto"`` resolves the
    execution strategy once per fused group through the planner --
    large auto batches reach the pool's shared-memory path instead of
    degrading to one-by-one sequential evaluation.  Sharded relations
    pin ONE snapshot for the whole batch and serve the fused plan
    through the pool's per-shard registrations
    (:meth:`~repro.engine.pool.WorkerPool.run_sharded`) -- no stable
    sorted copy of the snapshot is ever materialised.

    Returns one result per expression, in order: a :class:`Relation`
    when ``data`` is a relation, else a sorted index array.
    """
    from ..engine.pool import get_default_pool, pool_available
    from .sharding import ShardedRelation

    expressions = list(expressions)
    if timeout is not None:
        if context is not None:
            raise ValueError("pass either timeout or context, not both")
        context = ExecutionContext.create(stats=stats, timeout=timeout)
    context = ensure_context(context, stats)
    if min_chunk < 1:
        raise ValueError("min_chunk must be at least 1")
    if isinstance(data, ShardedRelation):
        return _sharded_batch(data, expressions, algorithm=algorithm,
                              context=context, min_chunk=min_chunk,
                              options=options)
    n = len(data) if isinstance(data, Relation) else \
        np.asarray(data).shape[0]
    if pool_available() and n >= 2 * min_chunk and algorithm != "auto":
        pool = get_default_pool()
        chunks = None if processes is None else \
            max(1, min(processes, n // min_chunk))
        indices = pool.map_queries(data, expressions,
                                   algorithm=algorithm, chunks=chunks,
                                   min_chunk=min_chunk, options=options,
                                   context=context)
    else:
        indices = _serial_fused_batch(data, expressions,
                                      algorithm=algorithm,
                                      context=context, options=options)
    if isinstance(data, Relation):
        return [data.take(index) for index in indices]
    return indices


def _batch_function(algorithm: str, options: dict):
    """The per-evaluation callable for a fused batch.

    ``"auto"`` goes through the planner *per fused group*, so one batch
    resolves its strategy once per distinct base preference -- the
    planner's parallel rule can still send a large group to the pool.
    """
    if algorithm == "auto":
        from ..planner import DEFAULT_PLANNER

        def function(ranks, graph, *, context=None, **opts):
            return DEFAULT_PLANNER.execute(ranks, graph, context=context)

        return function
    concrete = get_algorithm(algorithm)

    def function(ranks, graph, *, context=None, **opts):
        return concrete(ranks, graph, context=context, **options)

    return function


def _column_matrix(ranks: np.ndarray, key: tuple) -> np.ndarray:
    if tuple(key) == tuple(range(ranks.shape[1])):
        return ranks
    return np.ascontiguousarray(ranks[:, list(key)])


def _serial_fused_batch(data, expressions, *, algorithm: str,
                        context: ExecutionContext, options: dict) -> list:
    """Fused evaluation without the pool dispatcher (small inputs,
    daemonic processes, or planner-driven ``auto`` batches)."""
    from ..engine.pool import _resolve_batch
    from .fusion import FusionPlan

    ranks, resolved = _resolve_batch(data, expressions)
    plan = FusionPlan.build(
        (graph, tuple(columns) if columns is not None
         else tuple(range(graph.d)))
        for graph, columns in resolved)
    function = _batch_function(algorithm, options)

    def evaluate(graph, key):
        return function(_column_matrix(ranks, key), graph,
                        context=context)

    def candidates(indices, key):
        return ranks[np.ix_(indices, list(key))]

    return plan.execute(evaluate=evaluate, candidates=candidates,
                        context=context)


def _sharded_batch(data, expressions, *, algorithm: str,
                   context: ExecutionContext, min_chunk: int,
                   options: dict) -> list:
    """One pinned snapshot, fused plan, per-shard pool registrations.

    Pool evaluation goes through
    :meth:`~repro.engine.pool.WorkerPool.run_sharded` against the
    snapshot's shard arrays -- the virtual concatenated coordinate
    space coincides with the snapshot's row order because empty shards
    contribute no rows to either -- and results map back to rows via
    global ids, so no sorted copy of the snapshot is materialised.
    """
    from ..engine.pool import get_default_pool, pool_available
    from .fusion import FusionPlan

    with data.snapshot() as snap:
        resolved = [data._resolve(expression)
                    for expression in expressions]
        plan = FusionPlan.build((graph, tuple(columns))
                                for graph, columns in resolved)
        n = len(snap)
        use_pool = pool_available() and n >= 2 * min_chunk \
            and algorithm != "auto"
        if use_pool:
            pool = get_default_pool()
            arrays = [shard.ranks for shard in snap.shards
                      if len(shard)]

            def evaluate(graph, key):
                return pool.run_sharded(arrays, graph,
                                        algorithm=algorithm,
                                        columns=list(key),
                                        options=options,
                                        context=context)
        else:
            function = _batch_function(algorithm, options)

            def evaluate(graph, key):
                return function(_column_matrix(snap.relation.ranks, key),
                                graph, context=context)

        def candidates(indices, key):
            # lazy: the concatenated snapshot relation materialises only
            # when a group actually needs screening rows
            return snap.relation.ranks[np.ix_(indices, list(key))]

        indices_list = plan.execute(evaluate=evaluate,
                                    candidates=candidates,
                                    context=context)
        gids = snap.global_ids
        return [snap.take_gids(gids[indices])
                for indices in indices_list]


def skyline(data: Relation | np.ndarray, *, algorithm: str = "osdc",
            stats: Stats | None = None,
            context: ExecutionContext | None = None,
            timeout: float | None = None, **options: Any
            ) -> Relation | np.ndarray:
    """The plain skyline ``M_sky(data)`` over *all* attributes
    (Section 2.2: the Pareto accumulation of every column)."""
    if hasattr(data, "names"):  # Relation and ShardedRelation alike
        names = data.names
    else:
        matrix = np.asarray(data)
        names = tuple(f"A{j}" for j in range(matrix.shape[1]))
    from .expressions import sky
    return p_skyline(data, sky(names), algorithm=algorithm, stats=stats,
                     context=context, timeout=timeout, **options)
