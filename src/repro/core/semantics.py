"""Semantic-level utilities on p-expressions (Proposition 2).

Two syntactically different p-expressions can induce the same preference
relation; by Proposition 2 this happens exactly when their p-graphs have
equal edge sets.  This module offers:

* :func:`equivalent` / :func:`refines` -- semantic equality and
  containment of p-expressions;
* :func:`normal_form` -- the canonical p-expression of a preference,
  obtained by rebuilding the expression from the p-graph via the
  series-parallel decomposition and sorting Pareto operands;
* :func:`to_dot` -- Graphviz rendering of a p-graph's transitive
  reduction (Figure 1 style).
"""

from __future__ import annotations

from ..sampling.decompose import decompose
from .bitsets import iter_bits
from .expressions import PExpr
from .parser import parse
from .pgraph import PGraph

__all__ = ["equivalent", "refines", "normal_form", "to_dot"]


def _graph_of(expression: PExpr | str,
              names: tuple[str, ...] | None = None) -> PGraph:
    if isinstance(expression, str):
        expression = parse(expression)
    return PGraph.from_expression(expression, names=names)


def equivalent(left: PExpr | str, right: PExpr | str) -> bool:
    """True iff the two p-expressions denote the same preference.

    Proposition 2: for equal attribute sets, ``≻_left = ≻_right`` iff the
    p-graphs have identical edge sets.  Expressions over different
    attribute sets are never equivalent.
    """
    left_graph = _graph_of(left)
    if isinstance(right, str):
        right = parse(right)
    if set(left_graph.names) != set(right.attributes()):
        return False
    right_graph = _graph_of(right, names=left_graph.names)
    return left_graph == right_graph


def refines(stronger: PExpr | str, weaker: PExpr | str) -> bool:
    """True iff ``≻_weaker ⊆ ≻_stronger`` (every preference the weaker
    expression asserts, the stronger one asserts too).

    Attribute sets must coincide (Proposition 2's precondition).
    """
    weaker_graph = _graph_of(weaker)
    if isinstance(stronger, str):
        stronger = parse(stronger)
    if set(weaker_graph.names) != set(stronger.attributes()):
        raise ValueError(
            "refinement is only defined over equal attribute sets"
        )
    stronger_graph = _graph_of(stronger, names=weaker_graph.names)
    return stronger_graph.contains(weaker_graph)


def normal_form(expression: PExpr | str) -> PExpr:
    """The canonical representative of the expression's preference.

    Built by decomposing the p-graph (series-parallel) and sorting Pareto
    operands; two expressions are :func:`equivalent` iff their normal
    forms are equal.
    """
    graph = _graph_of(expression)
    return decompose(graph).canonical()


def to_dot(graph: PGraph | PExpr | str, *, name: str = "pgraph") -> str:
    """Render the transitive reduction as a Graphviz digraph (Figure 1b).

    Accepts a p-graph, a p-expression, or its textual form.
    """
    if not isinstance(graph, PGraph):
        graph = _graph_of(graph)
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             "  node [shape=circle];"]
    for index, label in enumerate(graph.names):
        lines.append(f'  n{index} [label="{label}"];')
    for i in range(graph.d):
        for j in iter_bits(graph.reduction[i]):
            lines.append(f"  n{i} -> n{j};")
    lines.append("}")
    return "\n".join(lines)
