"""Simulated block storage with I/O accounting (external-memory substrate)."""

from .blocks import IOCounter, PagedFile, StorageManager

__all__ = ["IOCounter", "PagedFile", "StorageManager"]
