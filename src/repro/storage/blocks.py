"""Simulated external memory: paged files with I/O accounting.

Section 6 motivates scan-based p-skyline algorithms by their suitability
for external-memory execution.  This module provides the substrate used by
:mod:`repro.algorithms.external`: relations are stored as fixed-size pages
of tuples, every page transfer is counted, and the buffer budget of an
operator is expressed in pages.  Pages live in RAM (this is a simulator),
but algorithms only touch them through :class:`PagedFile`, so the I/O
counts are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["IOCounter", "PagedFile", "StorageManager"]


@dataclass
class IOCounter:
    """Page transfer counters shared by all files of a storage manager."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class PagedFile:
    """An append-only sequence of fixed-capacity pages of tuples."""

    def __init__(self, name: str, page_size: int, counter: IOCounter,
                 arity: int):
        if page_size < 1:
            raise ValueError("page size must be positive")
        self.name = name
        self.page_size = page_size
        self.arity = arity
        self._counter = counter
        self._pages: list[np.ndarray] = []
        self._tail: list[np.ndarray] = []  # buffered rows, < page_size

    # -- writing -------------------------------------------------------------
    def append_rows(self, rows: np.ndarray) -> None:
        """Append rows, spilling full pages (each spill is one write I/O)."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        if rows.shape[1] != self.arity:
            raise ValueError(
                f"file {self.name!r} stores arity {self.arity}, got "
                f"{rows.shape[1]}"
            )
        position = 0
        while position < rows.shape[0]:
            buffered = sum(part.shape[0] for part in self._tail)
            take = min(self.page_size - buffered, rows.shape[0] - position)
            self._tail.append(rows[position:position + take])
            position += take
            if buffered + take == self.page_size:
                self._flush_tail()

    def _flush_tail(self) -> None:
        if not self._tail:
            return
        page = np.vstack(self._tail)
        self._tail = []
        self._pages.append(page)
        self._counter.writes += 1

    def close_writes(self) -> None:
        """Flush the partial last page (counts as one write if non-empty)."""
        self._flush_tail()

    # -- reading -------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        if self._tail:
            raise RuntimeError("close_writes() before reading")
        return len(self._pages)

    @property
    def num_rows(self) -> int:
        return (sum(page.shape[0] for page in self._pages)
                + sum(part.shape[0] for part in self._tail))

    def read_page(self, index: int) -> np.ndarray:
        """Read one page (one read I/O)."""
        self._counter.reads += 1
        return self._pages[index]

    def scan(self) -> Iterator[np.ndarray]:
        """Iterate over all pages, counting one read each."""
        for index in range(self.num_pages):
            yield self.read_page(index)


class StorageManager:
    """Creates paged files sharing one I/O counter and page size."""

    def __init__(self, page_size: int = 256):
        self.page_size = page_size
        self.counter = IOCounter()
        self._sequence = 0

    def create(self, arity: int, name: str | None = None) -> PagedFile:
        if name is None:
            name = f"tmp{self._sequence}"
            self._sequence += 1
        return PagedFile(name, self.page_size, self.counter, arity)

    def from_matrix(self, matrix: np.ndarray,
                    name: str = "input") -> PagedFile:
        """Materialise a rank matrix as a paged file (counts the writes)."""
        handle = self.create(matrix.shape[1], name)
        handle.append_rows(matrix)
        handle.close_writes()
        return handle
