"""Measurement core for cross-query batch fusion.

Two measurements, shared by the ``BENCH_8.json`` perf gate
(:mod:`repro.bench.perf_gate`) and the ``repro-skyline batch-bench``
CLI subcommand:

* :func:`measure_fused_batch` -- one pinned *correlated* workload
  (elicitation-derived statements from
  :func:`repro.server.loadgen.correlated_statements`, the same
  generator the load-gen CLI uses) answered by
  :meth:`~repro.sql.PreferenceSQL.execute_batch` twice: once with
  ``fuse=False`` (the pre-fusion sequential path) and once fused.  The
  sequential answers are the correctness oracle for the fused ones, and
  the ``stats.extra["fusion"]`` counters (dedup hits, groups, base
  evaluations, shared-mask hits/misses) land in the record exactly --
  the gate pins them byte for byte against the committed baseline.
* :func:`replay_fused_batch_corpus` -- every committed regression-
  corpus entry replayed through the ``fused-batch`` metamorphic axis of
  :mod:`repro.verify.metamorphic` (evaluate inside a fused batch next
  to containment-related companion queries; the result must be
  unchanged).  The gate requires zero mismatches.

The workload is pinned by seed, so the fusion counters are exactly
reproducible across runs and machines; only the wall-clock fields vary.
"""

from __future__ import annotations

import time

import numpy as np

from ..algorithms.base import Stats

__all__ = ["pinned_correlated_statements", "measure_fused_batch",
           "replay_fused_batch_corpus"]

#: Correlation parameter of the pinned data set (matches the pool and
#: shard gates: positively correlated attributes, small skylines).
DEFAULT_ALPHA = 0.2


def pinned_correlated_statements(names, count: int, *, seed: int = 2015,
                                 intents: int = 6,
                                 pareto_fraction: float = 0.2
                                 ) -> list[str]:
    """The deterministic correlated statement workload: ``count``
    ``PREFERRING``-only statements over ``names``, drawn from
    ``intents`` hidden priority chains (no ``WHERE``/``TOP``, so every
    statement is fusable).  A ``pareto_fraction`` of the statements ask
    the unrefined Pareto of their intent, giving each group a contained
    base member for the shared-mask screening path."""
    from ..server.loadgen import correlated_statements

    return correlated_statements(names, count, table="data", seed=seed,
                                 intents=intents, where_fraction=0.0,
                                 top_fraction=0.0,
                                 pareto_fraction=pareto_fraction)


def measure_fused_batch(rows: int, dims: int, *, queries: int = 64,
                        intents: int = 6, algorithm: str = "osdc",
                        seed: int = 2015) -> dict:
    """Fused vs sequential ``execute_batch`` on one pinned correlated
    workload; the sequential answers are the oracle."""
    from ..core.relation import Relation
    from ..data.gaussian import equicorrelated_gaussian
    from ..sql import PreferenceSQL

    nrng = np.random.default_rng(seed + dims)
    ranks = np.ascontiguousarray(
        equicorrelated_gaussian(rows, dims, DEFAULT_ALPHA, nrng))
    relation = Relation.from_array(ranks)
    statements = pinned_correlated_statements(
        relation.names, queries, seed=seed, intents=intents)
    engine = PreferenceSQL()
    engine.register("data", relation)

    # absorb one-off costs (parse cache, numpy warmup) before timing
    engine.execute_batch(statements[:4], algorithm=algorithm, fuse=False)

    start = time.perf_counter()
    unfused = engine.execute_batch(statements, algorithm=algorithm,
                                   fuse=False)
    unfused_seconds = time.perf_counter() - start

    stats = Stats()
    start = time.perf_counter()
    fused = engine.execute_batch(statements, algorithm=algorithm,
                                 stats=stats)
    fused_seconds = time.perf_counter() - start

    for index, (got, want) in enumerate(zip(fused, unfused)):
        if not np.array_equal(got.ranks, want.ranks):
            raise AssertionError(
                f"fused statement {index} disagrees with the "
                "sequential answer")
    fusion = stats.extra["fusion"]
    return {
        "name": f"fused-q{queries}-n{rows}-d{dims}",
        "rows": int(rows),
        "d": int(dims),
        "alpha": float(DEFAULT_ALPHA),
        "queries": int(fusion["queries"]),
        "intents": int(intents),
        "algorithm": algorithm,
        "distinct": int(fusion["distinct"]),
        "groups": int(fusion["groups"]),
        "dedup_hits": int(fusion["dedup_hits"]),
        "base_evaluations": int(fusion["base_evaluations"]),
        "screened": int(fusion["screened"]),
        "fallbacks": int(fusion["fallbacks"]),
        "mask_hits": int(fusion["mask_hits"]),
        "mask_misses": int(fusion["mask_misses"]),
        "kernel": fusion["kernel"],
        "output_sizes": [len(result) for result in fused],
        "unfused_seconds": unfused_seconds,
        "fused_seconds": fused_seconds,
        "speedup_fused_over_unfused": unfused_seconds / fused_seconds,
    }


def replay_fused_batch_corpus(directory: str) -> dict:
    """Replay every corpus entry through the ``fused-batch``
    metamorphic axis; returns ``{"cases": n, "mismatches": [...]}``."""
    from ..algorithms.base import REGISTRY
    from ..verify.corpus import iter_corpus
    from ..verify.fuzzer import case_rng
    from ..verify.metamorphic import TRANSFORMS, run_transform

    transform = TRANSFORMS["fused-batch"]
    cases = 0
    mismatches: list[str] = []
    for path, entry in iter_corpus(directory):
        function = REGISTRY.get(entry["algorithm"])
        if function is None:
            continue
        rng = case_rng(entry.get("seed") or 0,
                       entry.get("case_index") or 0)
        found = run_transform(transform, entry["ranks"], entry["graph"],
                              function, rng,
                              algorithm=entry["algorithm"])
        cases += 1
        mismatches.extend(f"{path}: {mismatch}" for mismatch in found)
    return {"cases": cases, "mismatches": mismatches}
