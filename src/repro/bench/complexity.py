"""Empirical verification of the complexity claims (Theorems 1 and 2).

Wall-clock measurements are noisy; the structural work counters are not.
This module sweeps workloads while holding one parameter fixed and
regresses the measured work against the theoretical shape:

* :func:`sweep_input_size` -- grow ``n`` at (approximately) constant
  ``v``: OSDC's dominance tests must grow ``O(n)``-like (Theorem 1 with
  ``v`` fixed);
* :func:`sweep_output_size` -- grow ``v`` at constant ``n`` (by mixing a
  controlled number of incomparable "staircase" tuples into a dominated
  bulk): the per-tuple work may only grow polylogarithmically in ``v``;
* :func:`growth_exponent` -- the least-squares slope of
  ``log(work) ~ log(parameter)``, the standard empirical-order estimate.

Used by ``tests/test_complexity.py`` and the A5 scaling benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.base import Stats, get_algorithm
from ..core.pgraph import PGraph

__all__ = ["sweep_input_size", "sweep_output_size", "growth_exponent",
           "staircase_dataset"]


def growth_exponent(xs, ys) -> float:
    """Slope of ``log ys ~ log xs``: ~1 linear, ~2 quadratic, etc."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("growth estimation needs positive measurements")
    slope, _ = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(slope)


def staircase_dataset(n: int, v: int, d: int,
                      rng: np.random.Generator) -> np.ndarray:
    """``n`` tuples whose *skyline* (Pareto preference) has size ``v``.

    ``v`` mutually sky-incomparable "staircase" tuples (one good
    coordinate each, rotating, with a tiny ramp) sit in front; the
    remaining ``n - v`` tuples are strictly worse than every staircase
    tuple on every attribute, hence dominated under *any* p-expression
    over the columns.  Pair with the plain-sky p-graph to pin ``v``
    exactly.
    """
    if not 1 <= v <= n:
        raise ValueError("need 1 <= v <= n")
    if d < 2:
        raise ValueError("need at least two dimensions")
    stairs = np.ones((v, d))
    positions = np.arange(v)
    # coordinate k of stair i: small iff k == i mod d, plus a tiny ramp
    # making the stairs mutually incomparable on every pair of columns
    for k in range(d):
        stairs[:, k] = 1.0 + (positions % d != k) * 100.0 + \
            ((positions // d) * ((positions % d == k) * 2 - 1)) * 0.001
    # every bulk coordinate exceeds every stair coordinate (<= ~101):
    # the bulk is dominated by each stair under any preference
    bulk = 200.0 + rng.random((n - v, d)) * 100.0
    return np.vstack([stairs, bulk])


def sweep_input_size(algorithm: str, graph: PGraph,
                     sizes, v: int, rng: np.random.Generator
                     ) -> list[tuple[int, int]]:
    """Measured ``(n, dominance_tests)`` at constant output size."""
    function = get_algorithm(algorithm)
    results = []
    for n in sizes:
        data = staircase_dataset(int(n), v, graph.d, rng)
        stats = Stats()
        function(data, graph, stats=stats)
        results.append((int(n), stats.dominance_tests))
    return results


def sweep_output_size(algorithm: str, graph: PGraph,
                      n: int, v_values, rng: np.random.Generator
                      ) -> list[tuple[int, int]]:
    """Measured ``(v, dominance_tests)`` at constant input size."""
    function = get_algorithm(algorithm)
    results = []
    for v in v_values:
        data = staircase_dataset(n, int(v), graph.d, rng)
        stats = Stats()
        result = function(data, graph, stats=stats)
        results.append((int(result.size), stats.dominance_tests))
    return results
