"""Workload definitions for every experiment of the paper's Section 7.

Each ``*_tasks`` function returns a list of ``(ranks, graph, metadata)``
tasks ready for :func:`repro.bench.harness.run_pool`.  The :class:`Scale`
dataclass fixes every size knob; three presets are provided:

* ``QUICK``   -- seconds-scale, used by the pytest benchmarks;
* ``DEFAULT`` -- minutes-scale, used to produce EXPERIMENTS.md;
* ``FULL``    -- the paper's sizes (1M Gaussian rows, d up to 20, full
  CoverType).  Expect hours in pure Python.

Random p-expressions are drawn uniformly over p-graphs with the
Section 7.1 sampler (exact for small d, SampleSAT with ``f = 0.5``
otherwise); attribute subsets are chosen at random from the dataset's
columns, mirroring the paper's protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..core.pgraph import PGraph
from ..data.correlation import mean_pairwise_correlation
from ..data.covertype import COVERTYPE_ATTRIBUTES, covertype_dataset
from ..data.gaussian import alpha_for_correlation
from ..data.nba import NBA_ATTRIBUTES, nba_dataset
from ..sampling.random_pexpr import PExpressionSampler
from ..verify.datasets import correlated_gaussian

__all__ = ["Scale", "QUICK", "DEFAULT", "FULL", "Task",
           "gaussian_tasks", "nba_tasks", "covertype_tasks",
           "scaling_tasks", "PAPER_ALGORITHMS"]

#: The three algorithms the paper benchmarks against each other.
PAPER_ALGORITHMS = ("osdc", "less", "bnl")

Task = tuple[np.ndarray, PGraph, dict]


@dataclass(frozen=True)
class Scale:
    """Every size knob of the benchmark workloads."""

    name: str
    gaussian_rows: int
    gaussian_columns: int
    gaussian_dims: tuple[int, int]        # inclusive range of expression d
    gaussian_expressions: int             # per correlation level
    correlation_targets: tuple[float, ...]
    nba_rows: int
    nba_dims: tuple[int, int]
    nba_expressions: int
    covertype_rows: int
    covertype_dims: tuple[int, int]
    covertype_expressions: int
    repeats: int
    round_decimals: int = 2


QUICK = Scale(
    name="quick",
    gaussian_rows=3_000,
    gaussian_columns=8,
    gaussian_dims=(4, 8),
    gaussian_expressions=4,
    correlation_targets=(-0.10, 0.0, 0.6),
    nba_rows=4_000,
    nba_dims=(7, 12),
    nba_expressions=6,
    covertype_rows=5_000,
    covertype_dims=(5, 10),
    covertype_expressions=6,
    repeats=1,
)

DEFAULT = Scale(
    name="default",
    gaussian_rows=20_000,
    gaussian_columns=12,
    gaussian_dims=(5, 12),
    gaussian_expressions=12,
    correlation_targets=(-0.08, -0.04, 0.0, 0.2, 0.5, 0.8),
    nba_rows=21_959,
    nba_dims=(7, 14),
    nba_expressions=40,
    covertype_rows=58_101,
    covertype_dims=(5, 10),
    covertype_expressions=30,
    repeats=1,
)

FULL = Scale(
    name="full",
    gaussian_rows=1_000_000,
    gaussian_columns=20,
    gaussian_dims=(5, 20),
    gaussian_expressions=34,   # ~200 expressions over six alpha levels
    correlation_targets=(-0.05, -0.02, 0.0, 0.2, 0.5, 0.8),
    nba_rows=21_959,
    nba_dims=(7, 14),
    nba_expressions=8_000,
    covertype_rows=581_012,
    covertype_dims=(5, 10),
    covertype_expressions=6_000,
    repeats=1,
    round_decimals=4,
)


def _expression_pool(dims: tuple[int, int], count: int, columns: int,
                     rng: random.Random) -> list[tuple[PGraph, list[int]]]:
    """Sample ``count`` p-graphs with d drawn uniformly from ``dims`` and
    attach a random column subset of the dataset to each."""
    low, high = dims
    high = min(high, columns)
    samplers: dict[int, PExpressionSampler] = {}
    pool: list[tuple[PGraph, list[int]]] = []
    for _ in range(count):
        d = rng.randint(low, high)
        if d not in samplers:
            names = [f"A{i}" for i in range(d)]
            samplers[d] = PExpressionSampler(names)
        graph = samplers[d].sample_graph(rng)
        cols = rng.sample(range(columns), d)
        pool.append((graph, cols))
    return pool


def gaussian_tasks(scale: Scale = QUICK, seed: int = 2015) -> list[Task]:
    """The synthetic workload behind Figures 4 and 5.

    One equicorrelated dataset per correlation target; a fresh uniform
    expression pool per dataset.  Metadata records the *measured* mean
    pairwise Pearson correlation, the parameter ``alpha``, ``d`` and the
    number of p-graph roots.
    """
    rng = random.Random(seed)
    data_rng = np.random.default_rng(seed)
    d = scale.gaussian_columns
    tasks: list[Task] = []
    for target in scale.correlation_targets:
        data, rho = correlated_gaussian(
            scale.gaussian_rows, d, target, data_rng,
            round_decimals=scale.round_decimals)
        alpha = alpha_for_correlation(rho, d)
        measured = mean_pairwise_correlation(data)
        pool = _expression_pool(scale.gaussian_dims,
                                scale.gaussian_expressions, d, rng)
        for graph, cols in pool:
            tasks.append((
                np.ascontiguousarray(data[:, cols]),
                graph,
                {
                    "alpha": alpha,
                    "target_correlation": rho,
                    "measured_correlation": measured,
                    "source": "gaussian",
                },
            ))
    return tasks


def nba_tasks(scale: Scale = QUICK, seed: int = 2015) -> list[Task]:
    """The Figure 6 workload: NBA-style data, larger values preferred."""
    rng = random.Random(seed + 1)
    data_rng = np.random.default_rng(seed + 1)
    data = nba_dataset(scale.nba_rows, data_rng)
    ranks = -data  # larger raw values are better
    pool = _expression_pool(scale.nba_dims, scale.nba_expressions,
                            len(NBA_ATTRIBUTES), rng)
    return [
        (np.ascontiguousarray(ranks[:, cols]), graph,
         {"source": "nba",
          "attributes": [NBA_ATTRIBUTES[c] for c in cols]})
        for graph, cols in pool
    ]


def covertype_tasks(scale: Scale = QUICK, seed: int = 2015) -> list[Task]:
    """The Figure 7 workload: CoverType-style data, small values preferred."""
    rng = random.Random(seed + 2)
    data_rng = np.random.default_rng(seed + 2)
    data = covertype_dataset(scale.covertype_rows, data_rng)
    pool = _expression_pool(scale.covertype_dims,
                            scale.covertype_expressions,
                            len(COVERTYPE_ATTRIBUTES), rng)
    return [
        (np.ascontiguousarray(data[:, cols]), graph,
         {"source": "covertype",
          "attributes": [COVERTYPE_ATTRIBUTES[c] for c in cols]})
        for graph, cols in pool
    ]


def scaling_tasks(sizes: tuple[int, ...] = (2_000, 8_000, 32_000),
                  d: int = 6, seed: int = 2015) -> list[Task]:
    """CI (independent continuous) inputs of growing ``n``, used to verify
    the average-case linearity claim (Section 5)."""
    rng = random.Random(seed + 3)
    data_rng = np.random.default_rng(seed + 3)
    names = [f"A{i}" for i in range(d)]
    sampler = PExpressionSampler(names)
    tasks: list[Task] = []
    for n in sizes:
        data = data_rng.random((n, d))
        graph = sampler.sample_graph(rng)
        tasks.append((data, graph, {"n": n, "source": "ci-scaling"}))
    return tasks
