"""Benchmark the query server under concurrent correlated load.

:func:`measure_server` backs the ``BENCH_7`` perf gate: it starts an
in-process :class:`~repro.server.SkylineServer` over a pinned gaussian
relation, replays a pinned elicitation-derived correlated workload
(:func:`~repro.server.loadgen.correlated_statements`) from concurrent
clients, and measures

* **cache-disabled serving** (every request carries ``no_cache``) --
  the floor the result cache has to beat;
* **warm-cache serving** (one priming pass, then the measured run) --
  sustained throughput and latency quantiles with the hit path doing a
  dictionary lookup instead of a skyline evaluation;
* **counter exactness** -- after a cache clear, a single sequential
  pass must produce exactly one miss per distinct statement and one hit
  per repeated statement (the deterministic property the gate pins);
* **forced shedding** -- with the admission controller forced open,
  every preference query must come back ``partial`` (the degraded path
  stays wired).

The cached-over-uncached speedup is core-count *independent* -- a cache
hit skips evaluation entirely -- so it gates everywhere; wall-clock
qps/latency comparisons against the committed baseline are advisory on
hosts with fewer cores than clients (the usual waiver mechanism).
"""

from __future__ import annotations

import numpy as np

from ..core.relation import Relation
from ..data import equicorrelated_gaussian
from ..server.loadgen import correlated_statements, run_load
from ..server.service import SkylineServer, serve_in_thread

__all__ = ["measure_server"]


def measure_server(rows: int, dims: int, *, statements: int = 64,
                   clients: int = 4, repeat: int = 2,
                   seed: int = 2015) -> dict:
    """One full server measurement (see the module docstring)."""
    rng = np.random.default_rng(seed)
    names = [f"a{j}" for j in range(dims)]
    relation = Relation.from_array(
        equicorrelated_gaussian(rows, dims, 0.2, rng), names=names)
    workload = correlated_statements(names, statements, table="data",
                                     seed=seed)
    distinct = len(set(workload))

    server = SkylineServer(port=0, cache=256, max_inflight=clients)
    server.register("data", relation)
    handle = serve_in_thread(server)
    try:
        address = handle.address

        # cache-disabled floor
        uncached = run_load(address, workload, clients=clients,
                            repeat=repeat, no_cache=True)

        # deterministic counter exactness: clear, then one sequential pass
        server.cache.clear()
        before = server.cache.stats()
        cold = run_load(address, workload, clients=1, repeat=1)
        after = server.cache.stats()
        cold_misses = after["misses"] - before["misses"]
        cold_hits = after["hits"] - before["hits"]

        # warm sustained serving (the cache is primed by the cold pass)
        warm = run_load(address, workload, clients=clients, repeat=repeat)
        warm_stats = server.cache.stats()

        # forced shedding: the degraded path stays wired
        server.force_shed = True
        try:
            shed = run_load(address, workload, clients=1, repeat=1)
        finally:
            server.force_shed = False
    finally:
        handle.stop()

    return {
        "name": f"server-correlated-{statements}q",
        "rows": rows,
        "dims": dims,
        "clients": clients,
        "statements": statements,
        "distinct_statements": distinct,
        "repeat": repeat,
        "uncached_qps": uncached.qps,
        "uncached_p50_ms": uncached.p50_ms,
        "uncached_p99_ms": uncached.p99_ms,
        "uncached_seconds": uncached.elapsed_s,
        "warm_qps": warm.qps,
        "warm_p50_ms": warm.p50_ms,
        "warm_p99_ms": warm.p99_ms,
        "warm_seconds": warm.elapsed_s,
        "warm_cached": warm.cached,
        "warm_queries": warm.queries,
        "speedup_cached_over_uncached":
            warm.qps / uncached.qps if uncached.qps else float("inf"),
        "hit_ratio": warm_stats["hit_ratio"],
        "cold_misses": cold_misses,
        "cold_hits": cold_hits,
        "cold_queries": cold.queries,
        "shed_partial": shed.shed,
        "shed_queries": shed.queries,
        "errors": uncached.errors + cold.errors + warm.errors
        + shed.errors,
    }
