"""Plain-text rendering of the experiment series (the figures as tables)."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_series", "format_table"]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned, monospaced table."""
    cells = [[str(h) for h in headers]]
    cells += [[_fmt(value) for value in row] for row in rows]
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(value.rjust(width)
                               for value, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(title: str, grouped: Mapping[object, Mapping[str, float]],
                  algorithms: Sequence[str], x_label: str,
                  unit: str = "ms") -> str:
    """Render a figure-style series: one row per x value, one column per
    algorithm, mean response times in ``unit``."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    headers = [x_label] + [f"{name} [{unit}]" for name in algorithms]
    rows = []
    for x_value, per_algorithm in grouped.items():
        row: list[object] = [x_value]
        for name in algorithms:
            seconds = per_algorithm.get(name)
            row.append("-" if seconds is None else seconds * scale)
        rows.append(row)
    return f"== {title} ==\n{format_table(headers, rows)}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
