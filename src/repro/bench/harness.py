"""The experiment harness: timed algorithm runs and their aggregation.

The paper's figures plot *mean response time* of OSDC / LESS / BNL over
pools of random p-expressions, grouped by a workload property (data
correlation, output size, number of attributes, number of p-graph roots).
:func:`run_pool` executes one algorithm over a pool of (dataset, p-graph)
tasks and returns one :class:`RunRecord` per task; the ``group_by_*``
helpers aggregate them the way each figure does.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..algorithms.base import Stats, get_algorithm
from ..core.pgraph import PGraph

__all__ = ["RunRecord", "time_algorithm", "run_pool", "group_records",
           "geometric_buckets"]


@dataclass
class RunRecord:
    """One timed execution of one algorithm on one task."""

    algorithm: str
    seconds: float
    input_size: int
    output_size: int
    num_attributes: int
    num_roots: int
    stats: Stats = field(default_factory=Stats)
    metadata: dict = field(default_factory=dict)


def time_algorithm(algorithm: str, ranks: np.ndarray, graph: PGraph,
                   repeats: int = 1, metadata: dict | None = None,
                   sweep: Sequence[dict] | None = None,
                   **options) -> RunRecord:
    """Run ``algorithm`` ``repeats`` times; keep the best wall-clock time.

    Taking the minimum over repeats is the standard way to suppress
    scheduling noise when measuring in-memory operators.  ``sweep`` is a
    list of option dicts tried in turn with the fastest kept -- the
    paper's protocol for LESS, whose elimination-filter threshold is swept
    between 50 and 10,000 with only the best time reported.
    """
    function = get_algorithm(algorithm)
    best = math.inf
    stats = Stats()
    result = None
    for extra in (sweep or [{}]):
        for _ in range(max(1, repeats)):
            run_stats = Stats()
            start = time.perf_counter()
            result = function(ranks, graph, stats=run_stats,
                              **{**options, **extra})
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
                stats = run_stats
    assert result is not None
    return RunRecord(
        algorithm=algorithm,
        seconds=best,
        input_size=ranks.shape[0],
        output_size=int(result.size),
        num_attributes=graph.d,
        num_roots=graph.num_roots,
        stats=stats,
        metadata=dict(metadata or {}),
    )


#: Filter thresholds swept for LESS, per the paper's protocol (they sweep
#: 50..10,000 and report only the fastest response time).
LESS_FILTER_SWEEP = ({"filter_size": 50}, {"filter_size": 500},
                     {"filter_size": 5000})


def run_pool(algorithms: Sequence[str],
             tasks: Iterable[tuple[np.ndarray, PGraph, dict]],
             repeats: int = 1,
             options: dict[str, dict] | None = None,
             sweeps: dict[str, Sequence[dict]] | None = None,
             progress: Callable[[str], None] | None = None
             ) -> list[RunRecord]:
    """Run every algorithm on every ``(ranks, graph, metadata)`` task.

    LESS is swept over :data:`LESS_FILTER_SWEEP` by default; pass
    ``sweeps={"less": [{}]}`` to disable.
    """
    options = options or {}
    sweeps = {"less": LESS_FILTER_SWEEP, **(sweeps or {})}
    records: list[RunRecord] = []
    for index, (ranks, graph, metadata) in enumerate(tasks):
        for algorithm in algorithms:
            record = time_algorithm(algorithm, ranks, graph,
                                    repeats=repeats, metadata=metadata,
                                    sweep=sweeps.get(algorithm),
                                    **options.get(algorithm, {}))
            records.append(record)
            if progress is not None:
                progress(
                    f"task {index}: {algorithm} "
                    f"{record.seconds * 1000:.1f} ms (v={record.output_size})"
                )
    return records


def group_records(records: Sequence[RunRecord],
                  key: Callable[[RunRecord], object]
                  ) -> dict[object, dict[str, float]]:
    """Mean seconds per (group key, algorithm): the figures' aggregation."""
    sums: dict[tuple[object, str], list[float]] = {}
    for record in records:
        sums.setdefault((key(record), record.algorithm), []) \
            .append(record.seconds)
    grouped: dict[object, dict[str, float]] = {}
    for (group, algorithm), values in sums.items():
        grouped.setdefault(group, {})[algorithm] = \
            sum(values) / len(values)
    return dict(sorted(grouped.items(), key=lambda kv: _sort_key(kv[0])))


def _sort_key(value: object) -> tuple:
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


def records_to_csv(records: Sequence[RunRecord], path: str) -> None:
    """Dump run records to CSV for downstream analysis/plotting."""
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "algorithm", "seconds", "input_size", "output_size",
            "num_attributes", "num_roots", "dominance_tests",
            "recursive_calls", "io_reads", "io_writes", "metadata",
        ])
        for record in records:
            writer.writerow([
                record.algorithm, f"{record.seconds:.6f}",
                record.input_size, record.output_size,
                record.num_attributes, record.num_roots,
                record.stats.dominance_tests, record.stats.recursive_calls,
                record.stats.io_reads, record.stats.io_writes,
                repr(record.metadata),
            ])


def geometric_buckets(records: Sequence[RunRecord],
                      base: float = 4.0) -> Callable[[RunRecord], float]:
    """A grouping key bucketing output sizes geometrically (Figure 4
    right / Figures 6-7 right plot time against ``v`` on a log axis)."""

    def key(record: RunRecord) -> float:
        v = max(record.output_size, 1)
        return float(base ** math.floor(math.log(v, base)))

    return key
