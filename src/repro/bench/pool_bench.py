"""Measurement core for the persistent worker pool.

Three measurements, shared by the ``BENCH_5.json`` perf gate
(:mod:`repro.bench.perf_gate`), the ``repro-skyline pool-bench`` CLI
subcommand and ``benchmarks/bench_parallel_pool.py``:

* :func:`measure_parallel` -- one pinned low-output workload (the
  paper's equicorrelated Gaussian generator, Section 7.2) evaluated
  serially, on a **cold** pool (workers forked, used once, torn down --
  the pre-pool behaviour of ``parallel-osdc``) and on a **warm** pool
  (workers and the shared-memory registration reused).  The serial
  result is the correctness oracle for both pooled runs.
* :func:`measure_batch` -- ``k`` pinned p-expressions over one data
  set, answered as one warm :meth:`~repro.engine.pool.WorkerPool
  .map_queries` batch versus ``k`` independent cold parallel calls;
  the ratio is the start-up/registration cost the batch service
  amortises away.
* :func:`measure_scaling` -- warm-pool wall clock as a function of the
  worker count (the speedup-vs-workers curve).

All workloads are pinned by seed, so output sizes and per-chunk
skyline sizes are exactly reproducible and the perf gate can compare
them against a committed baseline byte for byte.
"""

from __future__ import annotations

import random
import time
from typing import Sequence

import numpy as np

from ..algorithms.base import Stats
from ..engine import ExecutionContext

__all__ = ["pinned_parallel_case", "pinned_batch_expressions",
           "measure_parallel", "measure_batch", "measure_scaling"]

#: Correlation parameter of the pinned workload: ``alpha < 1`` means
#: positively correlated attributes, hence a small (output-sensitive
#: friendly) p-skyline.
DEFAULT_ALPHA = 0.2


def pinned_parallel_case(rows: int, dims: int, alpha: float = DEFAULT_ALPHA,
                         seed: int = 2015):
    """The deterministic ``(ranks, graph)`` workload for the pool gate."""
    from ..data.gaussian import equicorrelated_gaussian
    from ..sampling.random_pexpr import PExpressionSampler

    nrng = np.random.default_rng(seed + dims)
    ranks = np.ascontiguousarray(
        equicorrelated_gaussian(rows, dims, alpha, nrng))
    rng = random.Random(f"pool-bench:{seed}:{dims}")
    graph = PExpressionSampler(
        [f"A{i}" for i in range(dims)],
        method="counting").sample_graph(rng)
    return ranks, graph


def pinned_batch_expressions(dims: int, count: int,
                             seed: int = 2015) -> list:
    """``count`` pinned p-expressions over ``A0..A{dims-1}``."""
    from ..sampling.random_pexpr import PExpressionSampler

    rng = random.Random(f"pool-batch:{seed}:{dims}:{count}")
    sampler = PExpressionSampler([f"A{i}" for i in range(dims)],
                                 method="counting")
    return [sampler.sample_expression(rng) for _ in range(count)]


def _timed_serial(ranks, graph):
    from ..algorithms import get_algorithm

    osdc = get_algorithm("osdc")
    stats = Stats()
    context = ExecutionContext(stats=stats)
    start = time.perf_counter()
    result = osdc(ranks, graph, context=context)
    return time.perf_counter() - start, np.asarray(result), stats


def measure_parallel(rows: int, dims: int, *, workers: int = 4,
                     alpha: float = DEFAULT_ALPHA,
                     seed: int = 2015) -> dict:
    """Serial vs cold-pool vs warm-pool on one pinned workload."""
    from ..algorithms.parallel import parallel_osdc
    from ..engine.pool import WorkerPool

    ranks, graph = pinned_parallel_case(rows, dims, alpha, seed)
    # serial oracle (run twice, keep the second -- caches warm)
    _timed_serial(ranks, graph)
    serial_seconds, expected, serial_stats = _timed_serial(ranks, graph)

    # cold: fork a dedicated pool, run once, tear it down (the pre-pool
    # behaviour of parallel-osdc, reproduced via fresh_pool=True)
    start = time.perf_counter()
    cold = parallel_osdc(ranks, graph, processes=workers, min_chunk=1,
                         fresh_pool=True)
    cold_seconds = time.perf_counter() - start
    if not np.array_equal(cold, expected):
        raise AssertionError("cold pooled run disagrees with serial OSDC")

    with WorkerPool(workers) as pool:
        # first warm-pool query pays the one-off shared-memory
        # registration; the second is the steady state of a service
        start = time.perf_counter()
        pool.run_query(ranks, graph, chunks=workers)
        first_seconds = time.perf_counter() - start
        stats = Stats()
        context = ExecutionContext(stats=stats)
        start = time.perf_counter()
        warm = pool.run_query(ranks, graph, chunks=workers,
                              context=context)
        warm_seconds = time.perf_counter() - start
    if not np.array_equal(warm, expected):
        raise AssertionError("warm pooled run disagrees with serial OSDC")

    return {
        "name": f"parallel-n{rows}-d{dims}-w{workers}",
        "rows": int(rows),
        "d": int(dims),
        "alpha": float(alpha),
        "workers": int(workers),
        "output_size": int(expected.size),
        "chunk_skylines": [int(s) for s in stats.extra["chunk_skylines"]],
        "merge_rounds": int(stats.extra["pool"]["merge_rounds"]),
        "kernel": stats.extra.get("kernel"),
        "serial_dominance_tests": serial_stats.dominance_tests,
        "pooled_dominance_tests": stats.dominance_tests,
        "serial_seconds": serial_seconds,
        "cold_seconds": cold_seconds,
        "warm_first_seconds": first_seconds,
        "warm_seconds": warm_seconds,
        "speedup_warm_over_cold": cold_seconds / warm_seconds,
        "speedup_warm_over_serial": serial_seconds / warm_seconds,
    }


def measure_batch(rows: int, dims: int, *, queries: int = 16,
                  workers: int = 4, alpha: float = DEFAULT_ALPHA,
                  seed: int = 2015) -> dict:
    """One warm batch vs ``queries`` cold parallel calls."""
    from ..algorithms.parallel import parallel_osdc
    from ..core.pgraph import PGraph
    from ..core.relation import Relation
    from ..engine.pool import WorkerPool

    ranks, _graph = pinned_parallel_case(rows, dims, alpha, seed)
    relation = Relation.from_array(ranks)
    expressions = pinned_batch_expressions(dims, queries, seed)
    graphs = [PGraph.from_expression(e, names=relation.names)
              for e in expressions]

    # cold: each query forks its own pool and registers its own copy
    start = time.perf_counter()
    cold_results = [parallel_osdc(ranks, graph, processes=workers,
                                  min_chunk=1, fresh_pool=True)
                    for graph in graphs]
    cold_seconds = time.perf_counter() - start

    # warm: one pool, one registration, k descriptor-only dispatches
    with WorkerPool(workers) as pool:
        pool.map_queries(ranks, [(g, None) for g in graphs[:1]],
                         chunks=workers)  # absorb the one-off costs
        start = time.perf_counter()
        warm_results = pool.map_queries(ranks,
                                        [(g, None) for g in graphs],
                                        chunks=workers)
        warm_seconds = time.perf_counter() - start

    for index, (cold, warm) in enumerate(zip(cold_results, warm_results)):
        if not np.array_equal(cold, warm):
            raise AssertionError(
                f"batch query {index} disagrees between cold and warm")

    return {
        "name": f"batch-q{queries}-n{rows}-d{dims}-w{workers}",
        "rows": int(rows),
        "d": int(dims),
        "alpha": float(alpha),
        "workers": int(workers),
        "queries": int(queries),
        "output_sizes": [int(np.asarray(r).size) for r in warm_results],
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_batch_over_cold": cold_seconds / warm_seconds,
    }


def measure_scaling(rows: int, dims: int,
                    worker_counts: Sequence[int] = (1, 2, 4, 8), *,
                    alpha: float = DEFAULT_ALPHA,
                    seed: int = 2015) -> list[dict]:
    """Warm-pool wall clock per worker count (same pinned workload)."""
    from ..engine.pool import WorkerPool

    ranks, graph = pinned_parallel_case(rows, dims, alpha, seed)
    points = []
    for workers in worker_counts:
        with WorkerPool(workers) as pool:
            pool.run_query(ranks, graph, chunks=workers)  # warm up
            stats = Stats()
            start = time.perf_counter()
            result = pool.run_query(ranks, graph, chunks=workers,
                                    context=ExecutionContext(stats=stats))
            seconds = time.perf_counter() - start
        points.append({
            "workers": int(workers),
            "seconds": seconds,
            "output_size": int(np.asarray(result).size),
            "chunk_skylines": [int(s)
                               for s in stats.extra["chunk_skylines"]],
        })
    return points
