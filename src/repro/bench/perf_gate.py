"""The CI performance gate: pinned workloads, committed baseline.

``python -m repro.bench.perf_gate`` runs a fixed set of workloads --
per-kernel ``screen_block`` microbenchmarks at three dimensionalities
plus end-to-end runs of the scan and divide-and-conquer algorithms --
and writes a JSON artifact (``BENCH_4.json`` at the repo root is the
committed baseline).  ``--check`` compares a fresh run against the
baseline and fails on regressions beyond tolerance.

Three classes of checks, ordered from strict to loose:

* **work counters** (survivor counts, output sizes) are deterministic
  given the pinned seeds and must match the baseline exactly;
* **speedup ratios** (bitmask over GEMM, measured within the current
  run) are machine-independent to first order and must stay above
  ``--min-speedup``;
* **wall-clock timings** are machine-dependent, so they are only
  compared against the baseline with a generous ``--time-factor``.

Structural counters (dominance tests, recursion) may shift slightly
across NumPy versions (tie-breaking in ``argpartition``/``argsort``),
so they get a relative tolerance rather than exact equality.

A second artifact, ``BENCH_5.json``, gates the persistent worker pool
(:mod:`repro.engine.pool`): a pinned low-output workload run serially,
on a cold fork-per-query pool and on a warm pool, plus a batch of
pinned p-expressions answered warm versus as independent cold calls
(:mod:`repro.bench.pool_bench`).  Warm-over-cold and batch-over-cold
ratios gate everywhere; the warm-over-*serial* speedup only gates on
hosts with as many cores as workers -- on smaller hosts it degrades to
a bounded-overhead check recorded as a waiver in the artifact.

A third artifact, ``BENCH_6.json``, gates the sharded relation layer
(:mod:`repro.core.sharding`): the maintained serve path -- tree-merging
the tracked per-shard skylines on a warm pool -- must beat a monolithic
warm scatter/gather over the same pinned workload, and per-row inserts
into a sharded maintainer must stay within a small constant factor of a
single flat maintainer (:mod:`repro.bench.shard_bench`).  The serve
speedup degrades to the same bounded-overhead waiver as the pool gate
on hosts with fewer cores than workers; the insert-overhead ratio is
core-count independent and gates everywhere.

A fourth artifact, ``BENCH_7.json``, gates the query server
(:mod:`repro.server`): a pinned correlated workload of 64
elicitation-derived statements is replayed by 4 concurrent clients with
the result cache disabled and then warm (:mod:`repro.bench.
server_bench`).  Warm serving must beat cache-disabled serving by
``MIN_CACHE_SPEEDUP`` (core-count independent -- a hit skips
evaluation entirely), cache counters must be exact after a clear (one
miss per distinct statement), forced shedding must flag every answer
partial, and p99 latency is recorded; baseline qps/p99 comparisons are
advisory on hosts with fewer cores than clients (waiver recorded in
the artifact).

A fifth artifact, ``BENCH_8.json``, gates cross-query batch fusion
(:mod:`repro.core.fusion`): a pinned correlated batch of 64
elicitation-derived statements answered by the fused
:meth:`~repro.sql.PreferenceSQL.execute_batch` versus the pre-fusion
sequential path (:mod:`repro.bench.batch_bench`).  The fused run must
be ``MIN_FUSED_SPEEDUP`` times faster -- core-count independent, the
ratio measures work removed, not parallelism -- its fusion counters
(dedup hits, groups, base evaluations, shared-mask hits/misses) are
deterministic and must match the baseline exactly, and every committed
regression-corpus entry must survive the ``fused-batch`` metamorphic
axis (fused == unfused) with zero mismatches.

A sixth artifact, ``BENCH_9.json``, gates the compiled ``native``
kernel backend (:mod:`repro.core.native`): the BENCH_4 screening
workloads re-timed ``native`` versus ``bitmask``.  With numba importable
the compiled kernel must win by :data:`MIN_NATIVE_SPEEDUP` (advisory on
single-core hosts); without it the same artifact instead certifies the
graceful fallback -- ``select_kernel("native")`` resolves to
``"bitmask"``, the recorded reason is precise, and survivor counters
stay exact -- so the gate passes on any machine, compiled or not.

A seventh artifact, ``BENCH_10.json``, gates the intra-worker thread
layer (:mod:`repro.engine.threads` + the tiled/``prange`` screening in
:mod:`repro.core.dominance`): the BENCH_4 screening workloads re-timed
at a thread budget of 1 versus :data:`THREAD_GATE_BUDGET`.  On hosts
with at least :data:`THREAD_GATE_MIN_CORES` cores and the compiled
parallel layer up, the threaded screen must win by
:data:`MIN_THREADED_SPEEDUP`; everywhere else the same runs instead
certify bit-exact survivor parity across budgets (the tiled path still
executes -- an explicit budget forces it), plus the pool topology
invariant: a pooled query records a per-worker budget of exactly 1 in
``stats.extra["pool"]["thread_budget"]``.  Timing-drift comparisons
only engage when current and baseline carry the same ``host`` shape
tag (``cpu_count`` + ``thread_budget``), so baselines travel across
machines without false alarms.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from typing import Sequence

import numpy as np

from ..core.bitsets import iter_bits

__all__ = ["kernel_workload", "run_kernel_bench", "run_algorithm_bench",
           "run_gate", "compare", "run_parallel_gate", "compare_parallel",
           "run_sharded_gate", "compare_sharded", "run_server_gate",
           "compare_server", "run_batch_gate", "compare_batch",
           "run_native_gate", "compare_native", "run_threaded_bench",
           "run_threaded_gate", "compare_threaded", "main"]

SCHEMA = "repro-perf-gate/1"
PARALLEL_SCHEMA = "repro-perf-gate-parallel/1"
SHARDED_SCHEMA = "repro-perf-gate-sharded/1"
SERVER_SCHEMA = "repro-perf-gate-server/1"
FUSION_SCHEMA = "repro-perf-gate-fusion/1"
NATIVE_SCHEMA = "repro-perf-gate-native/1"
THREADS_SCHEMA = "repro-perf-gate-threads/1"

#: Pinned workload parameters.  Changing any of these invalidates the
#: committed baseline -- regenerate it in the same commit.
SEED = 2015
KERNEL_DIMS = (4, 8, 16)
KERNEL_ROWS = 100_000
ALGO_ROWS = 20_000
ALGO_DIMS = 6
GATE_ALGORITHMS = ("bnl", "sfs", "less", "salsa", "osdc")

#: Default gate thresholds (see the module docstring).
MIN_SPEEDUP = 2.0
TIME_FACTOR = 5.0
COUNTER_TOLERANCE = 0.2

#: Pinned workloads of the worker-pool gate (``BENCH_5.json``).
PARALLEL_ROWS = 500_000
PARALLEL_DIMS = 6
PARALLEL_WORKERS = 4
BATCH_ROWS = 64_000
BATCH_QUERIES = 16

#: Worker-pool gate thresholds.  ``MIN_PARALLEL_SPEEDUP`` (warm pool
#: over serial OSDC) only engages on hosts with at least
#: ``PARALLEL_WORKERS`` cores -- a single-core box cannot speed anything
#: up by partitioning, so there the gate degrades to a bounded-overhead
#: check (warm pooled time at most ``SINGLE_CORE_OVERHEAD`` times the
#: serial time) and the waiver is recorded in the artifact.  The
#: warm-over-cold and batch-amortisation checks measure orchestration
#: savings (process start-up, shared-memory registration), which are
#: real on any core count, so they engage everywhere.
MIN_PARALLEL_SPEEDUP = 2.0
SINGLE_CORE_OVERHEAD = 2.5
MIN_WARM_OVER_COLD = 1.5
MIN_BATCH_SPEEDUP = 2.5

#: Pinned workloads of the sharded-relation gate (``BENCH_6.json``).
SHARDED_ROWS = 100_000
SHARDED_DIMS = 6
SHARDED_SHARDS = 4
SHARDED_WORKERS = 4
INSERT_BASE_ROWS = 20_000
INSERT_STREAM = 2_000

#: Sharded-relation gate thresholds.  The serve path merges only the
#: tracked per-shard skylines -- a few hundred rows instead of the full
#: relation -- so on a multi-core host it must beat a monolithic warm
#: scatter/gather by ``MIN_SHARDED_SPEEDUP``; with fewer cores than
#: workers the check degrades to the same bounded-overhead waiver as
#: the pool gate.  A routed insert touches exactly one shard, so the
#: ``MAX_INSERT_OVERHEAD`` ratio is core-count independent and gates
#: everywhere.
MIN_SHARDED_SPEEDUP = 1.3
MAX_INSERT_OVERHEAD = 1.2

#: Pinned workload of the query-server gate (``BENCH_7.json``): a
#: correlated, elicitation-derived 64-statement workload replayed by 4
#: concurrent clients (:mod:`repro.bench.server_bench`).
SERVER_ROWS = 20_000
SERVER_DIMS = 5
SERVER_STATEMENTS = 64
SERVER_CLIENTS = 4

#: Query-server gate thresholds.  A warm result cache answers repeated
#: statements with a dictionary lookup instead of a skyline evaluation,
#: so the cached-over-uncached throughput ratio is core-count
#: *independent* and gates everywhere
#: (``MIN_CACHE_SPEEDUP``).  Cache counters after a clear and one
#: sequential pass are deterministic -- exactly one miss per distinct
#: statement -- and must match exactly.  Wall-clock qps/p99 comparisons
#: against the committed baseline only engage on hosts with at least
#: ``SERVER_CLIENTS`` cores; below that they are advisory (waiver
#: recorded in the artifact).
MIN_CACHE_SPEEDUP = 2.0

#: Pinned workload of the batch-fusion gate (``BENCH_8.json``): a
#: correlated, elicitation-derived 64-statement batch -- including a
#: fraction of unrefined Pareto intents, the contained base members the
#: shared-mask screening path refines from -- answered fused versus
#: sequentially (:mod:`repro.bench.batch_bench`).
FUSION_ROWS = 40_000
FUSION_DIMS = 6
FUSION_QUERIES = 64
FUSION_INTENTS = 6
FUSION_CORPUS = "tests/corpus"

#: Batch-fusion gate threshold.  The speedup compares two runs of the
#: same single-process engine on the same workload, so it measures work
#: removed by deduplication and shared-base screening -- core-count
#: independent, it gates everywhere.  The fusion counters are
#: deterministic given the pinned seed and must match the baseline
#: exactly.
MIN_FUSED_SPEEDUP = 2.0

#: Compiled-backend gate threshold (``BENCH_9.json``): the numba
#: ``native`` kernel must beat the packed ``bitmask`` kernel on the
#: BENCH_4 screening workloads.  The ratio compares two single-threaded
#: kernels within one run, so it is core-count independent to first
#: order; on a single-core host the check degrades to an advisory
#: waiver (scheduler noise between the two timed passes dominates).
#: When numba is absent or fails to compile, the gate instead enforces
#: the graceful-fallback contract: ``select_kernel("native")`` must
#: resolve to ``"bitmask"`` and survivor counters must match the
#: baseline exactly -- so the suite passes identically, via fallback,
#: on a machine without numba.
MIN_NATIVE_SPEEDUP = 2.0

#: Thread-layer gate (``BENCH_10.json``): the screen budget the
#: threaded pass runs at, the core floor below which the speedup check
#: degrades to a parity waiver, and the required threaded-over-serial
#: ratio on compiled multi-core hosts.  Parity (bit-exact survivors at
#: every budget) and the 1-thread-per-pool-worker invariant are
#: core-count independent and gate everywhere.
THREAD_GATE_BUDGET = 4
THREAD_GATE_MIN_CORES = 4
MIN_THREADED_SPEEDUP = 1.5


def _host_shape() -> dict:
    """The ``host`` tag stamped into BENCH artifacts: timing-drift
    comparisons only engage between identically shaped hosts."""
    import os

    from ..engine.threads import effective_budget

    return {"cpu_count": os.cpu_count() or 1,
            "thread_budget": effective_budget()}


def _same_host_shape(current: dict, baseline: dict | None) -> bool:
    """True when baseline timings are comparable to the current run.

    Untagged artifacts (committed before the tag existed) keep the old
    always-compare behavior; once both sides carry a ``host`` tag, a
    mismatch in ``cpu_count`` / ``thread_budget`` skips wall-clock
    drift checks (counters still gate exactly).
    """
    shape = current.get("host")
    base = (baseline or {}).get("host")
    if not shape or not base:
        return True
    return shape == base


def _pinned_case(rows: int, dims: int, seed: int):
    """The deterministic ``(ranks, graph)`` pair for one workload."""
    from ..sampling.random_pexpr import PExpressionSampler

    rng = random.Random(f"perf-gate:{seed}:{dims}")
    nrng = np.random.default_rng(seed + dims)
    graph = PExpressionSampler(
        [f"A{i}" for i in range(dims)],
        method="counting").sample_graph(rng)
    ranks = np.ascontiguousarray(nrng.normal(size=(rows, dims)).round(3))
    return ranks, graph


def kernel_workload(ranks: np.ndarray, graph):
    """Split a dataset into the ``bench_pscreen``-style screening pair.

    Median split on the first root attribute: the better half is the
    ``against`` set, the worse half is the ``block`` to screen -- the
    exact shape of PSCREEN's dense base case at scale.
    """
    root = next(iter_bits(graph.roots))
    column = ranks[:, root]
    tau = float(np.median(column))
    against = np.ascontiguousarray(ranks[column < tau])
    block = np.ascontiguousarray(ranks[column >= tau])
    if against.shape[0] == 0 or block.shape[0] == 0:  # degenerate median
        half = ranks.shape[0] // 2
        against, block = ranks[:half], ranks[half:]
    return block, against


def run_kernel_bench(dims: int, rows: int, seed: int = SEED,
                     kernels: Sequence[str] = ("bitmask", "gemm")) -> dict:
    """Time ``screen_block`` per kernel on one pinned workload."""
    from ..core.dominance import Dominance

    ranks, graph = _pinned_case(rows, dims, seed)
    dominance = Dominance(graph).prepare()
    block, against = kernel_workload(ranks, graph)
    record = {
        "name": f"screen-d{dims}",
        "d": dims,
        "rows": int(rows),
        "block_rows": int(block.shape[0]),
        "against_rows": int(against.shape[0]),
        "timings": {},
    }
    survivors = None
    for kernel in kernels:
        # warm up workspaces and tables off the clock
        dominance.screen_block(block[:512], against[:512], kernel=kernel)
        start = time.perf_counter()
        mask = dominance.screen_block(block, against, kernel=kernel)
        record["timings"][kernel] = time.perf_counter() - start
        count = int(mask.sum())
        if survivors is None:
            survivors = count
        elif count != survivors:
            raise AssertionError(
                f"kernel {kernel!r} disagrees on screen-d{dims}: "
                f"{count} survivors vs {survivors}")
    record["survivors"] = survivors
    if "bitmask" in record["timings"] and "gemm" in record["timings"]:
        record["speedup_bitmask_over_gemm"] = (
            record["timings"]["gemm"] / record["timings"]["bitmask"])
    if "native" in record["timings"] and "bitmask" in record["timings"]:
        record["speedup_native_over_bitmask"] = (
            record["timings"]["bitmask"] / record["timings"]["native"])
    return record


def run_algorithm_bench(name: str, ranks: np.ndarray, graph) -> dict:
    """One end-to-end algorithm run with counters and the chosen kernel."""
    from ..algorithms.base import Stats, get_algorithm
    from ..engine import ExecutionContext

    stats = Stats()
    context = ExecutionContext.create(stats=stats, trace=64)
    function = get_algorithm(name)
    function(ranks, graph, context=context)  # warm caches off the clock
    stats = Stats()
    context = ExecutionContext.create(stats=stats, trace=64)
    start = time.perf_counter()
    result = function(ranks, graph, context=context)
    seconds = time.perf_counter() - start
    return {
        "name": name,
        "rows": int(ranks.shape[0]),
        "d": int(graph.d),
        "seconds": seconds,
        "output_size": int(np.asarray(result).size),
        "kernel": stats.extra.get("kernel"),
        "dominance_tests": stats.dominance_tests,
        "passes": stats.passes,
        "recursive_calls": stats.recursive_calls,
        "pruned_by_filter": stats.pruned_by_filter,
    }


def run_gate(*, seed: int = SEED, quick: bool = False) -> dict:
    """Run every pinned workload; return the JSON-serialisable artifact."""
    kernel_rows = 4_000 if quick else KERNEL_ROWS
    algo_rows = 2_000 if quick else ALGO_ROWS
    kernels = [run_kernel_bench(dims, kernel_rows, seed)
               for dims in KERNEL_DIMS]
    # scalar parity probe: tiny, but pins all three families to the same
    # survivor count on a shared workload
    parity = run_kernel_bench(KERNEL_DIMS[0], 400, seed,
                              kernels=("bitmask", "gemm", "scalar"))
    parity["name"] = "scalar-parity-d4"
    # too small to gate on a timing ratio -- only survivor parity matters
    parity.pop("speedup_bitmask_over_gemm", None)
    ranks, graph = _pinned_case(algo_rows, ALGO_DIMS, seed)
    algorithms = [run_algorithm_bench(name, ranks, graph)
                  for name in GATE_ALGORITHMS]
    from ..core.dominance import native_available
    return {
        "schema": SCHEMA,
        "native_available": native_available(),
        "host": _host_shape(),
        "workload": {
            "seed": seed,
            "quick": quick,
            "kernel_rows": kernel_rows,
            "kernel_dims": list(KERNEL_DIMS),
            "algorithm_rows": algo_rows,
            "algorithm_dims": ALGO_DIMS,
            "algorithms": list(GATE_ALGORITHMS),
        },
        "kernels": kernels + [parity],
        "algorithms": algorithms,
    }


def _close(current: float, baseline: float, tolerance: float) -> bool:
    scale = max(abs(baseline), 1.0)
    return abs(current - baseline) <= tolerance * scale


def compare(current: dict, baseline: dict | None, *,
            min_speedup: float = MIN_SPEEDUP,
            time_factor: float = TIME_FACTOR,
            counter_tolerance: float = COUNTER_TOLERANCE) -> list[str]:
    """Gate a fresh artifact; return the list of violations (empty = ok).

    ``baseline`` may be ``None`` (no committed baseline yet): the
    within-run checks -- kernel agreement and speedup thresholds -- still
    apply.
    """
    violations: list[str] = []
    base_kernels = {record["name"]: record
                    for record in (baseline or {}).get("kernels", [])}
    base_algorithms = {record["name"]: record
                      for record in (baseline or {}).get("algorithms", [])}
    # the auto policy legitimately resolves to "native" only when the
    # compiled backend is importable; when the two runs differ on that,
    # a kernel-name difference is expected, not drift
    same_backend = (current.get("native_available", False)
                    == (baseline or {}).get("native_available", False))
    # wall-clock drift checks only engage between identically shaped
    # hosts (cpu_count + thread_budget); counters always gate
    same_shape = _same_host_shape(current, baseline)
    for record in current.get("kernels", []):
        speedup = record.get("speedup_bitmask_over_gemm")
        if speedup is not None and speedup < min_speedup:
            violations.append(
                f"{record['name']}: bitmask speedup over gemm is "
                f"{speedup:.2f}x, below the {min_speedup:.2f}x gate")
        base = base_kernels.get(record["name"])
        if base is None:
            continue
        if record["survivors"] != base["survivors"]:
            violations.append(
                f"{record['name']}: survivors {record['survivors']} != "
                f"baseline {base['survivors']}")
        for kernel, seconds in record["timings"].items():
            base_seconds = base.get("timings", {}).get(kernel)
            if same_shape and base_seconds and \
                    seconds > base_seconds * time_factor:
                violations.append(
                    f"{record['name']}/{kernel}: {seconds:.4f}s is more "
                    f"than {time_factor:.1f}x the baseline "
                    f"{base_seconds:.4f}s")
    for record in current.get("algorithms", []):
        base = base_algorithms.get(record["name"])
        if base is None:
            continue
        if record["output_size"] != base["output_size"]:
            violations.append(
                f"{record['name']}: output size {record['output_size']} "
                f"!= baseline {base['output_size']}")
        if same_backend and record["kernel"] != base["kernel"]:
            violations.append(
                f"{record['name']}: kernel policy drifted to "
                f"{record['kernel']!r} (baseline {base['kernel']!r})")
        for counter in ("dominance_tests", "passes", "recursive_calls"):
            if not _close(record[counter], base[counter],
                          counter_tolerance):
                violations.append(
                    f"{record['name']}: {counter} {record[counter]} "
                    f"drifted more than {counter_tolerance:.0%} from "
                    f"baseline {base[counter]}")
        base_seconds = base.get("seconds")
        if same_shape and base_seconds and \
                record["seconds"] > base_seconds * time_factor:
            violations.append(
                f"{record['name']}: {record['seconds']:.4f}s is more than "
                f"{time_factor:.1f}x the baseline {base_seconds:.4f}s")
    return violations


def run_parallel_gate(*, seed: int = SEED, quick: bool = False) -> dict:
    """Run the worker-pool workloads; returns the ``BENCH_5`` artifact."""
    import os

    from .pool_bench import measure_batch, measure_parallel

    parallel_rows = 40_000 if quick else PARALLEL_ROWS
    batch_rows = 8_000 if quick else BATCH_ROWS
    batch_queries = 6 if quick else BATCH_QUERIES
    cores = os.cpu_count() or 1
    parallel = measure_parallel(parallel_rows, PARALLEL_DIMS,
                                workers=PARALLEL_WORKERS, seed=seed)
    batch = measure_batch(batch_rows, PARALLEL_DIMS,
                          queries=batch_queries,
                          workers=PARALLEL_WORKERS, seed=seed)
    from ..core.dominance import native_available
    artifact = {
        "schema": PARALLEL_SCHEMA,
        "native_available": native_available(),
        "host": _host_shape(),
        "workload": {
            "seed": seed,
            "quick": quick,
            "parallel_rows": parallel_rows,
            "batch_rows": batch_rows,
            "batch_queries": batch_queries,
            "dims": PARALLEL_DIMS,
            "workers": PARALLEL_WORKERS,
        },
        "cores": cores,
        "parallel": parallel,
        "batch": batch,
    }
    if cores < PARALLEL_WORKERS:
        artifact["waivers"] = [
            f"host has {cores} core(s) < {PARALLEL_WORKERS} workers: the "
            f"{MIN_PARALLEL_SPEEDUP:.1f}x parallel-over-serial check is "
            f"replaced by the {SINGLE_CORE_OVERHEAD:.1f}x bounded-"
            "overhead check"]
    return artifact


def compare_parallel(current: dict, baseline: dict | None, *,
                     min_parallel_speedup: float = MIN_PARALLEL_SPEEDUP,
                     single_core_overhead: float = SINGLE_CORE_OVERHEAD,
                     min_warm_over_cold: float = MIN_WARM_OVER_COLD,
                     min_batch_speedup: float = MIN_BATCH_SPEEDUP,
                     time_factor: float = TIME_FACTOR,
                     counter_tolerance: float = COUNTER_TOLERANCE
                     ) -> list[str]:
    """Gate a fresh ``BENCH_5`` artifact (see :data:`MIN_PARALLEL_SPEEDUP`
    for the core-count scaling); returns the violations (empty = ok)."""
    violations: list[str] = []
    parallel = current["parallel"]
    batch = current["batch"]
    cores = current.get("cores", 1)

    # -- within-run checks (no baseline needed) -----------------------------
    if parallel["speedup_warm_over_cold"] < min_warm_over_cold:
        violations.append(
            f"{parallel['name']}: warm pool is only "
            f"{parallel['speedup_warm_over_cold']:.2f}x faster than a "
            f"cold fork-per-query pool, below the "
            f"{min_warm_over_cold:.2f}x gate")
    if cores >= current["workload"]["workers"]:
        if parallel["speedup_warm_over_serial"] < min_parallel_speedup:
            violations.append(
                f"{parallel['name']}: warm pooled run is only "
                f"{parallel['speedup_warm_over_serial']:.2f}x faster "
                f"than serial OSDC on {cores} cores, below the "
                f"{min_parallel_speedup:.2f}x gate")
    elif parallel["warm_seconds"] > \
            parallel["serial_seconds"] * single_core_overhead:
        violations.append(
            f"{parallel['name']}: warm pooled run takes "
            f"{parallel['warm_seconds']:.4f}s vs {parallel['serial_seconds']:.4f}s "
            f"serial on a {cores}-core host -- beyond the "
            f"{single_core_overhead:.1f}x bounded-overhead waiver")
    if batch["speedup_batch_over_cold"] < min_batch_speedup:
        violations.append(
            f"{batch['name']}: warm batch is only "
            f"{batch['speedup_batch_over_cold']:.2f}x faster than "
            f"{batch['queries']} cold parallel calls, below the "
            f"{min_batch_speedup:.2f}x gate")

    # -- baseline checks ----------------------------------------------------
    if baseline is not None:
        base_parallel = baseline["parallel"]
        base_batch = baseline["batch"]
        if parallel["output_size"] != base_parallel["output_size"]:
            violations.append(
                f"{parallel['name']}: output size "
                f"{parallel['output_size']} != baseline "
                f"{base_parallel['output_size']}")
        if parallel["chunk_skylines"] != base_parallel["chunk_skylines"]:
            violations.append(
                f"{parallel['name']}: chunk skylines "
                f"{parallel['chunk_skylines']} != baseline "
                f"{base_parallel['chunk_skylines']}")
        if (current.get("native_available", False)
                == baseline.get("native_available", False)) and \
                parallel["kernel"] != base_parallel["kernel"]:
            violations.append(
                f"{parallel['name']}: kernel policy drifted to "
                f"{parallel['kernel']!r} (baseline "
                f"{base_parallel['kernel']!r})")
        for counter in ("serial_dominance_tests",
                        "pooled_dominance_tests"):
            if not _close(parallel[counter], base_parallel[counter],
                          counter_tolerance):
                violations.append(
                    f"{parallel['name']}: {counter} {parallel[counter]} "
                    f"drifted more than {counter_tolerance:.0%} from "
                    f"baseline {base_parallel[counter]}")
        if batch["output_sizes"] != base_batch["output_sizes"]:
            violations.append(
                f"{batch['name']}: per-query output sizes differ from "
                "the baseline")
        if _same_host_shape(current, baseline):
            for record, base in ((parallel, base_parallel),
                                 (batch, base_batch)):
                for key in ("warm_seconds", "cold_seconds"):
                    if base.get(key) and \
                            record[key] > base[key] * time_factor:
                        violations.append(
                            f"{record['name']}/{key}: {record[key]:.4f}s "
                            f"is more than {time_factor:.1f}x the "
                            f"baseline {base[key]:.4f}s")
    return violations


def run_sharded_gate(*, seed: int = SEED, quick: bool = False) -> dict:
    """Run the sharded-relation workloads; returns the ``BENCH_6``
    artifact."""
    import os

    from .shard_bench import measure_insert_overhead, measure_sharded

    sharded_rows = 10_000 if quick else SHARDED_ROWS
    insert_base = 4_000 if quick else INSERT_BASE_ROWS
    insert_stream = 400 if quick else INSERT_STREAM
    cores = os.cpu_count() or 1
    sharded = measure_sharded(sharded_rows, SHARDED_DIMS,
                              shards=SHARDED_SHARDS,
                              workers=SHARDED_WORKERS, seed=seed)
    insert = measure_insert_overhead(insert_base, insert_stream,
                                     SHARDED_DIMS,
                                     shards=SHARDED_SHARDS, seed=seed)
    artifact = {
        "schema": SHARDED_SCHEMA,
        "workload": {
            "seed": seed,
            "quick": quick,
            "sharded_rows": sharded_rows,
            "insert_base_rows": insert_base,
            "insert_stream": insert_stream,
            "dims": SHARDED_DIMS,
            "shards": SHARDED_SHARDS,
            "workers": SHARDED_WORKERS,
        },
        "cores": cores,
        "host": _host_shape(),
        "sharded": sharded,
        "insert": insert,
    }
    if cores < SHARDED_WORKERS:
        artifact["waivers"] = [
            f"host has {cores} core(s) < {SHARDED_WORKERS} workers: the "
            f"{MIN_SHARDED_SPEEDUP:.1f}x serve-over-monolithic check is "
            f"replaced by the {SINGLE_CORE_OVERHEAD:.1f}x bounded-"
            "overhead check"]
    return artifact


def compare_sharded(current: dict, baseline: dict | None, *,
                    min_sharded_speedup: float = MIN_SHARDED_SPEEDUP,
                    max_insert_overhead: float = MAX_INSERT_OVERHEAD,
                    single_core_overhead: float = SINGLE_CORE_OVERHEAD,
                    time_factor: float = TIME_FACTOR) -> list[str]:
    """Gate a fresh ``BENCH_6`` artifact (see :data:`MIN_SHARDED_SPEEDUP`
    for the core-count scaling); returns the violations (empty = ok)."""
    violations: list[str] = []
    sharded = current["sharded"]
    insert = current["insert"]
    cores = current.get("cores", 1)

    # -- within-run checks (no baseline needed) -----------------------------
    if cores >= current["workload"]["workers"]:
        if sharded["speedup_serve_over_monolithic"] < min_sharded_speedup:
            violations.append(
                f"{sharded['name']}: maintained serve is only "
                f"{sharded['speedup_serve_over_monolithic']:.2f}x faster "
                f"than the monolithic scatter/gather on {cores} cores, "
                f"below the {min_sharded_speedup:.2f}x gate")
    elif sharded["serve_seconds"] > \
            sharded["monolithic_seconds"] * single_core_overhead:
        violations.append(
            f"{sharded['name']}: maintained serve takes "
            f"{sharded['serve_seconds']:.4f}s vs "
            f"{sharded['monolithic_seconds']:.4f}s monolithic on a "
            f"{cores}-core host -- beyond the "
            f"{single_core_overhead:.1f}x bounded-overhead waiver")
    if insert["insert_overhead"] > max_insert_overhead:
        violations.append(
            f"{insert['name']}: per-row inserts into the sharded "
            f"maintainer cost {insert['insert_overhead']:.2f}x a single "
            f"flat maintainer, above the {max_insert_overhead:.2f}x gate")

    # -- baseline checks ----------------------------------------------------
    if baseline is not None:
        base_sharded = baseline["sharded"]
        base_insert = baseline["insert"]
        for key in ("output_size", "shard_skylines", "shard_rows",
                    "version"):
            if sharded[key] != base_sharded[key]:
                violations.append(
                    f"{sharded['name']}: {key} {sharded[key]} != "
                    f"baseline {base_sharded[key]}")
        for key in ("output_size", "shard_skylines"):
            if insert[key] != base_insert[key]:
                violations.append(
                    f"{insert['name']}: {key} {insert[key]} != "
                    f"baseline {base_insert[key]}")
        if _same_host_shape(current, baseline):
            for record, base, keys in (
                    (sharded, base_sharded,
                     ("monolithic_seconds", "scatter_seconds",
                      "serve_seconds")),
                    (insert, base_insert,
                     ("single_seconds", "sharded_seconds"))):
                for key in keys:
                    if base.get(key) and \
                            record[key] > base[key] * time_factor:
                        violations.append(
                            f"{record['name']}/{key}: {record[key]:.4f}s "
                            f"is more than {time_factor:.1f}x the "
                            f"baseline {base[key]:.4f}s")
    return violations


def run_server_gate(*, seed: int = SEED, quick: bool = False) -> dict:
    """Run the query-server workload; returns the ``BENCH_7``
    artifact."""
    import os

    from .server_bench import measure_server

    rows = 4_000 if quick else SERVER_ROWS
    repeat = 1 if quick else 2
    cores = os.cpu_count() or 1
    server = measure_server(rows, SERVER_DIMS,
                            statements=SERVER_STATEMENTS,
                            clients=SERVER_CLIENTS, repeat=repeat,
                            seed=seed)
    artifact = {
        "schema": SERVER_SCHEMA,
        "workload": {
            "seed": seed,
            "quick": quick,
            "rows": rows,
            "dims": SERVER_DIMS,
            "statements": SERVER_STATEMENTS,
            "clients": SERVER_CLIENTS,
            "repeat": repeat,
        },
        "cores": cores,
        "host": _host_shape(),
        "server": server,
    }
    if cores < SERVER_CLIENTS:
        artifact["waivers"] = [
            f"host has {cores} core(s) < {SERVER_CLIENTS} clients: "
            "baseline qps/p99 comparisons are advisory; the "
            f"{MIN_CACHE_SPEEDUP:.1f}x cache speedup and the exact "
            "counter checks still gate"]
    return artifact


def compare_server(current: dict, baseline: dict | None, *,
                   min_cache_speedup: float = MIN_CACHE_SPEEDUP,
                   time_factor: float = TIME_FACTOR) -> list[str]:
    """Gate a fresh ``BENCH_7`` artifact (see :data:`MIN_CACHE_SPEEDUP`);
    returns the violations (empty = ok)."""
    violations: list[str] = []
    server = current["server"]
    cores = current.get("cores", 1)
    clients = current["workload"]["clients"]

    # -- within-run checks (no baseline needed) -----------------------------
    if server["speedup_cached_over_uncached"] < min_cache_speedup:
        violations.append(
            f"{server['name']}: warm-cache serving is only "
            f"{server['speedup_cached_over_uncached']:.2f}x the "
            f"cache-disabled throughput, below the "
            f"{min_cache_speedup:.2f}x gate")
    if server["cold_misses"] != server["distinct_statements"]:
        violations.append(
            f"{server['name']}: a sequential pass after a cache clear "
            f"took {server['cold_misses']} misses, expected exactly "
            f"{server['distinct_statements']} (one per distinct "
            "statement)")
    expected_hits = server["cold_queries"] - server["distinct_statements"]
    if server["cold_hits"] != expected_hits:
        violations.append(
            f"{server['name']}: the sequential pass took "
            f"{server['cold_hits']} hits, expected exactly "
            f"{expected_hits} (one per repeated statement)")
    if server["shed_partial"] != server["shed_queries"]:
        violations.append(
            f"{server['name']}: under forced shedding only "
            f"{server['shed_partial']} of {server['shed_queries']} "
            "answers were partial")
    if server["errors"]:
        violations.append(
            f"{server['name']}: {server['errors']} request(s) errored")

    # -- baseline checks ----------------------------------------------------
    if baseline is not None:
        base_server = baseline["server"]
        if server["distinct_statements"] != \
                base_server["distinct_statements"]:
            violations.append(
                f"{server['name']}: distinct_statements "
                f"{server['distinct_statements']} != baseline "
                f"{base_server['distinct_statements']}")
        if cores >= clients and _same_host_shape(current, baseline):
            for key in ("uncached_p99_ms", "warm_p99_ms"):
                if base_server.get(key) and \
                        server[key] > base_server[key] * time_factor:
                    violations.append(
                        f"{server['name']}/{key}: {server[key]:.2f}ms "
                        f"is more than {time_factor:.1f}x the baseline "
                        f"{base_server[key]:.2f}ms")
            if base_server.get("warm_qps") and \
                    server["warm_qps"] < \
                    base_server["warm_qps"] / time_factor:
                violations.append(
                    f"{server['name']}/warm_qps: {server['warm_qps']:.0f} "
                    f"is less than 1/{time_factor:.1f} of the baseline "
                    f"{base_server['warm_qps']:.0f}")
    return violations


def run_batch_gate(*, seed: int = SEED, quick: bool = False,
                   corpus: str = FUSION_CORPUS) -> dict:
    """Run the batch-fusion workload; returns the ``BENCH_8``
    artifact."""
    import os

    from .batch_bench import measure_fused_batch, replay_fused_batch_corpus

    rows = 4_000 if quick else FUSION_ROWS
    # keep the full batch width even in quick mode: the speedup is
    # driven by the dedup/sharing ratio of the workload, not its size
    queries = FUSION_QUERIES
    batch = measure_fused_batch(rows, FUSION_DIMS, queries=queries,
                                intents=FUSION_INTENTS, seed=seed)
    replay = replay_fused_batch_corpus(corpus)
    return {
        "schema": FUSION_SCHEMA,
        "workload": {
            "seed": seed,
            "quick": quick,
            "rows": rows,
            "dims": FUSION_DIMS,
            "queries": queries,
            "intents": FUSION_INTENTS,
        },
        "cores": os.cpu_count() or 1,
        "host": _host_shape(),
        "batch": batch,
        "corpus": replay,
    }


def compare_batch(current: dict, baseline: dict | None, *,
                  min_fused_speedup: float = MIN_FUSED_SPEEDUP,
                  time_factor: float = TIME_FACTOR) -> list[str]:
    """Gate a fresh ``BENCH_8`` artifact (see :data:`MIN_FUSED_SPEEDUP`);
    returns the violations (empty = ok)."""
    violations: list[str] = []
    batch = current["batch"]
    corpus = current["corpus"]

    # -- within-run checks (no baseline needed) -----------------------------
    if batch["speedup_fused_over_unfused"] < min_fused_speedup:
        violations.append(
            f"{batch['name']}: the fused batch is only "
            f"{batch['speedup_fused_over_unfused']:.2f}x the sequential "
            f"path, below the {min_fused_speedup:.2f}x gate")
    if batch["dedup_hits"] != batch["queries"] - batch["distinct"]:
        violations.append(
            f"{batch['name']}: dedup_hits {batch['dedup_hits']} != "
            f"queries - distinct "
            f"({batch['queries']} - {batch['distinct']})")
    if not corpus["cases"]:
        violations.append(
            "fused-batch corpus replay covered zero cases")
    for mismatch in corpus["mismatches"]:
        violations.append(f"fused-batch metamorphic mismatch: {mismatch}")

    # -- baseline checks ----------------------------------------------------
    if baseline is not None:
        base_batch = baseline["batch"]
        for key in ("queries", "distinct", "groups", "dedup_hits",
                    "base_evaluations", "screened", "fallbacks",
                    "mask_hits", "mask_misses", "output_sizes"):
            if batch[key] != base_batch[key]:
                violations.append(
                    f"{batch['name']}: {key} {batch[key]} != baseline "
                    f"{base_batch[key]}")
        if _same_host_shape(current, baseline):
            for key in ("unfused_seconds", "fused_seconds"):
                if base_batch.get(key) and \
                        batch[key] > base_batch[key] * time_factor:
                    violations.append(
                        f"{batch['name']}/{key}: {batch[key]:.4f}s is "
                        f"more than {time_factor:.1f}x the baseline "
                        f"{base_batch[key]:.4f}s")
    return violations


def run_native_gate(*, seed: int = SEED, quick: bool = False) -> dict:
    """Run the compiled-backend workloads; returns the ``BENCH_9``
    artifact.

    The screening workloads are exactly BENCH_4's (same seeds, same
    median split), re-timed ``bitmask`` versus ``native``.  When the
    compiled backend is unavailable the ``native`` pass exercises the
    graceful fallback instead (it resolves to a second bitmask run), and
    the artifact records the precise reason plus the kernel the fallback
    resolved to.
    """
    import os

    from ..core import native as native_backend
    from ..core.dominance import select_kernel

    rows = 4_000 if quick else KERNEL_ROWS
    available, reason = native_backend.availability()
    screens = []
    for dims in KERNEL_DIMS:
        record = run_kernel_bench(dims, rows, seed,
                                  kernels=("bitmask", "native"))
        record["name"] = f"native-screen-d{dims}"
        screens.append(record)
    artifact = {
        "schema": NATIVE_SCHEMA,
        "workload": {
            "seed": seed,
            "quick": quick,
            "kernel_rows": rows,
            "kernel_dims": list(KERNEL_DIMS),
        },
        "cores": os.cpu_count() or 1,
        "host": _host_shape(),
        "native_available": available,
        "native_reason": reason,
        "fallback_kernel": select_kernel("native", d=KERNEL_DIMS[0],
                                         pairs=1 << 20),
        "screens": screens,
    }
    if not available:
        artifact["waivers"] = [
            f"compiled backend unavailable ({reason}): the "
            f"{MIN_NATIVE_SPEEDUP:.1f}x native-over-bitmask check is "
            "replaced by the fallback-parity check (native requests "
            "resolve to bitmask; survivors stay exact)"]
    elif (os.cpu_count() or 1) < 2:
        artifact["waivers"] = [
            "single-core host: the native-over-bitmask speedup is "
            "advisory (scheduler noise dominates); survivor counters "
            "still gate exactly"]
    return artifact


def compare_native(current: dict, baseline: dict | None, *,
                   min_native_speedup: float = MIN_NATIVE_SPEEDUP,
                   time_factor: float = TIME_FACTOR) -> list[str]:
    """Gate a fresh ``BENCH_9`` artifact (see :data:`MIN_NATIVE_SPEEDUP`
    for the fallback semantics); returns the violations (empty = ok)."""
    violations: list[str] = []
    available = current.get("native_available", False)
    cores = current.get("cores", 1)

    # -- within-run checks (no baseline needed) -----------------------------
    expected_resolution = "native" if available else "bitmask"
    if current.get("fallback_kernel") != expected_resolution:
        violations.append(
            f"select_kernel('native') resolved to "
            f"{current.get('fallback_kernel')!r}, expected "
            f"{expected_resolution!r} (native_available={available})")
    if not available and not current.get("native_reason"):
        violations.append(
            "compiled backend unavailable but no reason was recorded")
    for record in current.get("screens", []):
        speedup = record.get("speedup_native_over_bitmask")
        if available and cores >= 2 and (
                speedup is None or speedup < min_native_speedup):
            violations.append(
                f"{record['name']}: native speedup over bitmask is "
                f"{speedup if speedup is None else f'{speedup:.2f}x'}, "
                f"below the {min_native_speedup:.2f}x gate")

    # -- baseline checks ----------------------------------------------------
    if baseline is not None:
        base_screens = {record["name"]: record
                        for record in baseline.get("screens", [])}
        same_backend = available == baseline.get("native_available",
                                                 False)
        same_shape = _same_host_shape(current, baseline)
        for record in current.get("screens", []):
            base = base_screens.get(record["name"])
            if base is None:
                continue
            if record["survivors"] != base["survivors"]:
                violations.append(
                    f"{record['name']}: survivors {record['survivors']} "
                    f"!= baseline {base['survivors']}")
            if not (same_backend and same_shape):
                continue  # timings not comparable across backends/hosts
            for kernel, seconds in record["timings"].items():
                base_seconds = base.get("timings", {}).get(kernel)
                if base_seconds and seconds > base_seconds * time_factor:
                    violations.append(
                        f"{record['name']}/{kernel}: {seconds:.4f}s is "
                        f"more than {time_factor:.1f}x the baseline "
                        f"{base_seconds:.4f}s")
    return violations


def run_threaded_bench(dims: int, rows: int, seed: int = SEED,
                       budget: int = THREAD_GATE_BUDGET) -> dict:
    """Time one BENCH_4 screening workload at budgets 1 and ``budget``.

    Both passes run the same resolved kernel (``native`` where compiled,
    its ``bitmask`` fallback otherwise); the threaded pass engages the
    parallel layer through an explicit
    :func:`repro.engine.threads.thread_budget` scope, which forces the
    tiled path even on quick-mode workloads.  Survivor masks must be
    bit-identical -- the record carries the parity verdict, not just
    counts.
    """
    from ..core import native as native_backend
    from ..core.dominance import Dominance, select_kernel
    from ..engine.threads import thread_budget

    ranks, graph = _pinned_case(rows, dims, seed)
    dominance = Dominance(graph).prepare()
    block, against = kernel_workload(ranks, graph)
    kernel = select_kernel("native", d=dims, pairs=1 << 20)
    record = {
        "name": f"threaded-screen-d{dims}",
        "d": dims,
        "rows": int(rows),
        "block_rows": int(block.shape[0]),
        "against_rows": int(against.shape[0]),
        "kernel": kernel,
        "budget": int(budget),
        "layer": ("prange-native"
                  if kernel == "native"
                  and native_backend.parallel_available()
                  else "tiled"),
        "timings": {},
    }
    # warm kernels, workspaces and the tile executor off the clock
    with thread_budget(1):
        dominance.screen_block(block[:512], against[:512], kernel=kernel)
    with thread_budget(budget):
        dominance.screen_block(block[:512], against[:512], kernel=kernel)
    with thread_budget(1):
        start = time.perf_counter()
        serial = dominance.screen_block(block, against, kernel=kernel)
        record["timings"]["serial"] = time.perf_counter() - start
    serial = np.array(serial, copy=True)
    with thread_budget(budget):
        start = time.perf_counter()
        threaded = dominance.screen_block(block, against, kernel=kernel)
        record["timings"]["threaded"] = time.perf_counter() - start
    record["parity"] = bool(np.array_equal(serial, threaded))
    record["survivors"] = int(serial.sum())
    record["speedup_threaded_over_serial"] = (
        record["timings"]["serial"] / record["timings"]["threaded"])
    return record


def _pool_thread_budget_probe(seed: int, quick: bool) -> dict:
    """One pooled query asserting the pool x threads topology.

    Pool workers own the cores; each must screen single-threaded.  The
    probe runs a small ``parallel-osdc`` query on a fresh 2-worker pool
    and reads the per-worker budget the pool recorded in
    ``stats.extra["pool"]["thread_budget"]``.
    """
    from ..algorithms.base import Stats
    from ..algorithms.parallel import parallel_osdc
    from ..engine import ExecutionContext
    from ..engine.pool import WORKER_THREAD_BUDGET, pool_available

    if not pool_available():
        return {"available": False, "worker_thread_budget": None,
                "expected_budget": WORKER_THREAD_BUDGET}
    rows = 4_000 if quick else 20_000
    ranks, graph = _pinned_case(rows, PARALLEL_DIMS, seed)
    stats = Stats()
    context = ExecutionContext.create(stats=stats)
    result = parallel_osdc(ranks, graph, context=context, processes=2,
                           min_chunk=rows // 4, fresh_pool=True)
    pool_stats = stats.extra.get("pool", {})
    return {
        "available": True,
        "rows": rows,
        "output_size": int(np.asarray(result).size),
        "worker_thread_budget": pool_stats.get("thread_budget"),
        "expected_budget": WORKER_THREAD_BUDGET,
    }


def run_threaded_gate(*, seed: int = SEED, quick: bool = False) -> dict:
    """Run the thread-layer workloads; returns the ``BENCH_10``
    artifact."""
    import os

    from ..core import native as native_backend

    rows = 4_000 if quick else KERNEL_ROWS
    cores = os.cpu_count() or 1
    available, reason = native_backend.availability()
    parallel_native, parallel_reason = \
        native_backend.parallel_availability()
    screens = [run_threaded_bench(dims, rows, seed)
               for dims in KERNEL_DIMS]
    pool_probe = _pool_thread_budget_probe(seed, quick)
    artifact = {
        "schema": THREADS_SCHEMA,
        "workload": {
            "seed": seed,
            "quick": quick,
            "kernel_rows": rows,
            "kernel_dims": list(KERNEL_DIMS),
            "budget": THREAD_GATE_BUDGET,
        },
        "cores": cores,
        "host": _host_shape(),
        "native_available": available,
        "native_reason": reason,
        "parallel_native": parallel_native,
        "parallel_reason": parallel_reason,
        "screens": screens,
        "pool": pool_probe,
    }
    waivers = []
    if not (available and parallel_native):
        waivers.append(
            f"compiled parallel layer unavailable "
            f"({parallel_reason or reason}): the "
            f"{MIN_THREADED_SPEEDUP:.1f}x threaded-over-serial check is "
            "replaced by bit-exact survivor parity across budgets")
    elif cores < THREAD_GATE_MIN_CORES:
        waivers.append(
            f"host has {cores} core(s) < {THREAD_GATE_MIN_CORES}: the "
            f"{MIN_THREADED_SPEEDUP:.1f}x threaded-over-serial check is "
            "advisory; parity and the pool budget invariant still gate")
    if waivers:
        artifact["waivers"] = waivers
    return artifact


def compare_threaded(current: dict, baseline: dict | None, *,
                     min_threaded_speedup: float = MIN_THREADED_SPEEDUP,
                     time_factor: float = TIME_FACTOR) -> list[str]:
    """Gate a fresh ``BENCH_10`` artifact (see
    :data:`MIN_THREADED_SPEEDUP` for when the speedup engages); returns
    the violations (empty = ok)."""
    violations: list[str] = []
    cores = current.get("cores", 1)
    compiled = (current.get("native_available", False)
                and current.get("parallel_native", False))
    enforce_speedup = compiled and cores >= THREAD_GATE_MIN_CORES

    # -- within-run checks (no baseline needed) -----------------------------
    for record in current.get("screens", []):
        if not record.get("parity", False):
            violations.append(
                f"{record['name']}: threaded survivors differ from "
                f"serial at budget {record.get('budget')} -- the thread "
                "layer must be bit-exact")
        speedup = record.get("speedup_threaded_over_serial")
        if enforce_speedup and (speedup is None
                                or speedup < min_threaded_speedup):
            shown = "missing" if speedup is None else f"{speedup:.2f}x"
            violations.append(
                f"{record['name']}: threaded-over-serial speedup is "
                f"{shown} on {cores} cores, below the "
                f"{min_threaded_speedup:.2f}x gate")
    pool = current.get("pool") or {}
    if pool.get("available") and \
            pool.get("worker_thread_budget") != pool.get("expected_budget"):
        violations.append(
            f"pooled query recorded a per-worker thread budget of "
            f"{pool.get('worker_thread_budget')!r}, expected "
            f"{pool.get('expected_budget')!r} (pool x threads must not "
            "multiply)")

    # -- baseline checks ----------------------------------------------------
    if baseline is not None:
        base_screens = {record["name"]: record
                        for record in baseline.get("screens", [])}
        same_backend = (
            current.get("native_available", False)
            == baseline.get("native_available", False)
            and current.get("parallel_native", False)
            == baseline.get("parallel_native", False))
        same_shape = _same_host_shape(current, baseline)
        for record in current.get("screens", []):
            base = base_screens.get(record["name"])
            if base is None:
                continue
            if record["survivors"] != base["survivors"]:
                violations.append(
                    f"{record['name']}: survivors {record['survivors']} "
                    f"!= baseline {base['survivors']}")
            if not (same_backend and same_shape):
                continue  # timings not comparable across hosts/backends
            for key, seconds in record["timings"].items():
                base_seconds = base.get("timings", {}).get(key)
                if base_seconds and seconds > base_seconds * time_factor:
                    violations.append(
                        f"{record['name']}/{key}: {seconds:.4f}s is "
                        f"more than {time_factor:.1f}x the baseline "
                        f"{base_seconds:.4f}s")
    return violations


def _render_threaded(artifact: dict) -> str:
    layer = ("prange-native" if artifact.get("parallel_native")
             else f"tiled fallback "
                  f"({artifact.get('parallel_reason') or artifact.get('native_reason')})")
    lines = [f"thread-layer gate ({artifact['cores']} core(s), "
             f"budget {artifact['workload']['budget']}, {layer}):"]
    for record in artifact["screens"]:
        timings = "  ".join(
            f"{key} {seconds * 1000:8.2f}ms"
            for key, seconds in record["timings"].items())
        speedup = record.get("speedup_threaded_over_serial")
        parity = "exact" if record.get("parity") else "MISMATCH"
        lines.append(
            f"  {record['name']:>22}: {timings}  "
            f"({speedup:.2f}x, parity {parity}, "
            f"kernel={record['kernel']})")
    pool = artifact.get("pool") or {}
    if pool.get("available"):
        lines.append(
            f"  {'pool topology':>22}: per-worker thread budget "
            f"{pool.get('worker_thread_budget')} "
            f"(expected {pool.get('expected_budget')})")
    for waiver in artifact.get("waivers", []):
        lines.append(f"  waiver: {waiver}")
    return "\n".join(lines)


def _render_native(artifact: dict) -> str:
    state = "compiled" if artifact["native_available"] else \
        f"fallback ({artifact['native_reason']})"
    lines = [f"native-backend gate ({artifact['cores']} core(s), "
             f"{state}):"]
    for record in artifact["screens"]:
        timings = "  ".join(
            f"{kernel} {seconds * 1000:8.2f}ms"
            for kernel, seconds in record["timings"].items())
        speedup = record.get("speedup_native_over_bitmask")
        suffix = f"  ({speedup:.2f}x native over bitmask)" \
            if speedup is not None and artifact["native_available"] \
            else ""
        lines.append(
            f"  {record['name']:>20}: {timings}  "
            f"survivors={record['survivors']}{suffix}")
    lines.append(
        f"  {'resolution':>20}: select_kernel('native') -> "
        f"{artifact['fallback_kernel']!r}")
    for waiver in artifact.get("waivers", []):
        lines.append(f"  waiver: {waiver}")
    return "\n".join(lines)


def _render_batch(artifact: dict) -> str:
    batch = artifact["batch"]
    corpus = artifact["corpus"]
    lines = [f"batch-fusion gate ({artifact['cores']} core(s)):"]
    lines.append(
        f"  {batch['name']:>28}: sequential "
        f"{batch['unfused_seconds'] * 1000:8.2f}ms  fused "
        f"{batch['fused_seconds'] * 1000:8.2f}ms  "
        f"({batch['speedup_fused_over_unfused']:.2f}x)")
    lines.append(
        f"  {'fusion':>28}: {batch['queries']} queries -> "
        f"{batch['distinct']} distinct in {batch['groups']} group(s); "
        f"{batch['base_evaluations']} evaluation(s), "
        f"{batch['screened']} screened, masks {batch['mask_hits']} "
        f"hit / {batch['mask_misses']} miss, "
        f"fallbacks {batch['fallbacks']}")
    lines.append(
        f"  {'corpus':>28}: fused-batch axis over {corpus['cases']} "
        f"case(s), {len(corpus['mismatches'])} mismatch(es)")
    return "\n".join(lines)


def _render_server(artifact: dict) -> str:
    server = artifact["server"]
    lines = [f"query-server gate ({artifact['cores']} core(s)):"]
    lines.append(
        f"  {server['name']:>28}: uncached {server['uncached_qps']:8.0f} "
        f"qps (p99 {server['uncached_p99_ms']:7.2f}ms)  warm "
        f"{server['warm_qps']:8.0f} qps (p99 "
        f"{server['warm_p99_ms']:7.2f}ms)  "
        f"(cache {server['speedup_cached_over_uncached']:.2f}x, "
        f"hit ratio {server['hit_ratio']:.2f})")
    lines.append(
        f"  {'counters':>28}: {server['cold_misses']} misses / "
        f"{server['cold_hits']} hits over "
        f"{server['distinct_statements']} distinct statements; "
        f"shed {server['shed_partial']}/{server['shed_queries']} "
        f"partial; errors={server['errors']}")
    for waiver in artifact.get("waivers", []):
        lines.append(f"  waiver: {waiver}")
    return "\n".join(lines)


def _render_sharded(artifact: dict) -> str:
    sharded = artifact["sharded"]
    insert = artifact["insert"]
    lines = [f"sharded-relation gate ({artifact['cores']} core(s)):"]
    lines.append(
        f"  {sharded['name']:>28}: monolithic "
        f"{sharded['monolithic_seconds'] * 1000:8.2f}ms  scatter "
        f"{sharded['scatter_seconds'] * 1000:8.2f}ms  serve "
        f"{sharded['serve_seconds'] * 1000:8.2f}ms  "
        f"(serve {sharded['speedup_serve_over_monolithic']:.2f}x)  "
        f"out={sharded['output_size']}")
    lines.append(
        f"  {insert['name']:>28}: single "
        f"{insert['single_seconds'] * 1000:8.2f}ms  sharded "
        f"{insert['sharded_seconds'] * 1000:8.2f}ms  "
        f"({insert['insert_overhead']:.2f}x overhead)")
    for waiver in artifact.get("waivers", []):
        lines.append(f"  waiver: {waiver}")
    return "\n".join(lines)


def _render_parallel(artifact: dict) -> str:
    parallel = artifact["parallel"]
    batch = artifact["batch"]
    lines = [f"worker-pool gate ({artifact['cores']} core(s)):"]
    lines.append(
        f"  {parallel['name']:>28}: serial "
        f"{parallel['serial_seconds'] * 1000:8.2f}ms  cold "
        f"{parallel['cold_seconds'] * 1000:8.2f}ms  warm "
        f"{parallel['warm_seconds'] * 1000:8.2f}ms  "
        f"(warm/cold {parallel['speedup_warm_over_cold']:.2f}x)  "
        f"out={parallel['output_size']}")
    lines.append(
        f"  {batch['name']:>28}: cold "
        f"{batch['cold_seconds'] * 1000:8.2f}ms  warm "
        f"{batch['warm_seconds'] * 1000:8.2f}ms  "
        f"(batch {batch['speedup_batch_over_cold']:.2f}x)")
    for waiver in artifact.get("waivers", []):
        lines.append(f"  waiver: {waiver}")
    return "\n".join(lines)


def _render(artifact: dict) -> str:
    lines = ["perf gate workloads:"]
    for record in artifact["kernels"]:
        timings = "  ".join(
            f"{kernel} {seconds * 1000:8.2f}ms"
            for kernel, seconds in record["timings"].items())
        speedup = record.get("speedup_bitmask_over_gemm")
        suffix = f"  ({speedup:.2f}x)" if speedup is not None else ""
        lines.append(f"  {record['name']:>16}: {timings}{suffix}")
    for record in artifact["algorithms"]:
        lines.append(
            f"  {record['name']:>16}: {record['seconds'] * 1000:8.2f}ms  "
            f"kernel={record['kernel']}  out={record['output_size']}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="pinned-workload performance gate (CI artifact)")
    parser.add_argument("--out", default="BENCH_4.json",
                        help="path of the JSON artifact to write")
    parser.add_argument("--baseline", default="BENCH_4.json",
                        help="committed baseline to compare against "
                             "with --check")
    parser.add_argument("--check", action="store_true",
                        help="fail on regressions against the baseline")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads (smoke testing the gate "
                             "itself; not comparable to a full baseline)")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP)
    parser.add_argument("--time-factor", type=float, default=TIME_FACTOR)
    parser.add_argument("--parallel-out", default="BENCH_5.json",
                        help="path of the worker-pool artifact to write")
    parser.add_argument("--parallel-baseline", default="BENCH_5.json",
                        help="committed worker-pool baseline to compare "
                             "against with --check")
    parser.add_argument("--skip-parallel", action="store_true",
                        help="run only the kernel/algorithm gate")
    parser.add_argument("--min-batch-speedup", type=float,
                        default=MIN_BATCH_SPEEDUP)
    parser.add_argument("--sharded-out", default="BENCH_6.json",
                        help="path of the sharded-relation artifact to "
                             "write")
    parser.add_argument("--sharded-baseline", default="BENCH_6.json",
                        help="committed sharded-relation baseline to "
                             "compare against with --check")
    parser.add_argument("--skip-sharded", action="store_true",
                        help="skip the sharded-relation gate")
    parser.add_argument("--min-sharded-speedup", type=float,
                        default=MIN_SHARDED_SPEEDUP)
    parser.add_argument("--max-insert-overhead", type=float,
                        default=MAX_INSERT_OVERHEAD)
    parser.add_argument("--server-out", default="BENCH_7.json",
                        help="path of the query-server artifact to "
                             "write")
    parser.add_argument("--server-baseline", default="BENCH_7.json",
                        help="committed query-server baseline to "
                             "compare against with --check")
    parser.add_argument("--skip-server", action="store_true",
                        help="skip the query-server gate")
    parser.add_argument("--min-cache-speedup", type=float,
                        default=MIN_CACHE_SPEEDUP)
    parser.add_argument("--batch-out", default="BENCH_8.json",
                        help="path of the batch-fusion artifact to "
                             "write")
    parser.add_argument("--batch-baseline", default="BENCH_8.json",
                        help="committed batch-fusion baseline to "
                             "compare against with --check")
    parser.add_argument("--skip-batch", action="store_true",
                        help="skip the batch-fusion gate")
    parser.add_argument("--min-fused-speedup", type=float,
                        default=MIN_FUSED_SPEEDUP)
    parser.add_argument("--corpus", default=FUSION_CORPUS,
                        help="regression corpus directory for the "
                             "fused-batch metamorphic replay")
    parser.add_argument("--native-out", default="BENCH_9.json",
                        help="path of the compiled-backend artifact to "
                             "write")
    parser.add_argument("--native-baseline", default="BENCH_9.json",
                        help="committed compiled-backend baseline to "
                             "compare against with --check")
    parser.add_argument("--skip-native", action="store_true",
                        help="skip the compiled-backend gate")
    parser.add_argument("--min-native-speedup", type=float,
                        default=MIN_NATIVE_SPEEDUP)
    parser.add_argument("--threads-out", default="BENCH_10.json",
                        help="path of the thread-layer artifact to "
                             "write")
    parser.add_argument("--threads-baseline", default="BENCH_10.json",
                        help="committed thread-layer baseline to "
                             "compare against with --check")
    parser.add_argument("--skip-threads", action="store_true",
                        help="skip the thread-layer gate")
    parser.add_argument("--min-threaded-speedup", type=float,
                        default=MIN_THREADED_SPEEDUP)
    arguments = parser.parse_args(argv)

    def load_baseline(path: str, workload_quick: bool) -> dict | None:
        try:
            with open(path, "r", encoding="utf-8") as source:
                baseline = json.load(source)
        except FileNotFoundError:
            print(f"no baseline at {path}; "
                  "running within-run checks only")
            return None
        if baseline.get("workload", {}).get("quick") != workload_quick:
            print(f"{path}: baseline workload scale differs; "
                  "running within-run checks only")
            return None
        return baseline

    def report(label: str, violations: list[str]) -> int:
        if violations:
            print(f"PERF GATE FAILED on {label} "
                  f"({len(violations)} violation(s)):")
            for violation in violations:
                print(f"  - {violation}")
            return 1
        print(f"perf gate passed ({label})")
        return 0

    def write(path: str, artifact: dict) -> None:
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(artifact, sink, indent=2)
            sink.write("\n")
        print(f"wrote {path}")

    artifact = run_gate(seed=arguments.seed, quick=arguments.quick)
    print(_render(artifact))
    status = 0
    if arguments.check:
        baseline = load_baseline(arguments.baseline,
                                 artifact["workload"]["quick"])
        status |= report("kernels/algorithms", compare(
            artifact, baseline,
            min_speedup=arguments.min_speedup,
            time_factor=arguments.time_factor))
    write(arguments.out, artifact)

    if not arguments.skip_native:
        native_artifact = run_native_gate(seed=arguments.seed,
                                          quick=arguments.quick)
        print(_render_native(native_artifact))
        if arguments.check:
            baseline = load_baseline(
                arguments.native_baseline,
                native_artifact["workload"]["quick"])
            status |= report("native backend", compare_native(
                native_artifact, baseline,
                min_native_speedup=arguments.min_native_speedup,
                time_factor=arguments.time_factor))
        write(arguments.native_out, native_artifact)

    if not arguments.skip_threads:
        threads_artifact = run_threaded_gate(seed=arguments.seed,
                                             quick=arguments.quick)
        print(_render_threaded(threads_artifact))
        if arguments.check:
            baseline = load_baseline(
                arguments.threads_baseline,
                threads_artifact["workload"]["quick"])
            status |= report("thread layer", compare_threaded(
                threads_artifact, baseline,
                min_threaded_speedup=arguments.min_threaded_speedup,
                time_factor=arguments.time_factor))
        write(arguments.threads_out, threads_artifact)

    if not arguments.skip_parallel:
        parallel_artifact = run_parallel_gate(seed=arguments.seed,
                                              quick=arguments.quick)
        print(_render_parallel(parallel_artifact))
        if arguments.check:
            baseline = load_baseline(
                arguments.parallel_baseline,
                parallel_artifact["workload"]["quick"])
            status |= report("worker pool", compare_parallel(
                parallel_artifact, baseline,
                min_batch_speedup=arguments.min_batch_speedup,
                time_factor=arguments.time_factor))
        write(arguments.parallel_out, parallel_artifact)

    if not arguments.skip_sharded:
        sharded_artifact = run_sharded_gate(seed=arguments.seed,
                                            quick=arguments.quick)
        print(_render_sharded(sharded_artifact))
        if arguments.check:
            baseline = load_baseline(
                arguments.sharded_baseline,
                sharded_artifact["workload"]["quick"])
            status |= report("sharded relations", compare_sharded(
                sharded_artifact, baseline,
                min_sharded_speedup=arguments.min_sharded_speedup,
                max_insert_overhead=arguments.max_insert_overhead,
                time_factor=arguments.time_factor))
        write(arguments.sharded_out, sharded_artifact)

    if not arguments.skip_server:
        server_artifact = run_server_gate(seed=arguments.seed,
                                          quick=arguments.quick)
        print(_render_server(server_artifact))
        if arguments.check:
            baseline = load_baseline(
                arguments.server_baseline,
                server_artifact["workload"]["quick"])
            status |= report("query server", compare_server(
                server_artifact, baseline,
                min_cache_speedup=arguments.min_cache_speedup,
                time_factor=arguments.time_factor))
        write(arguments.server_out, server_artifact)

    if not arguments.skip_batch:
        batch_artifact = run_batch_gate(seed=arguments.seed,
                                        quick=arguments.quick,
                                        corpus=arguments.corpus)
        print(_render_batch(batch_artifact))
        if arguments.check:
            baseline = load_baseline(
                arguments.batch_baseline,
                batch_artifact["workload"]["quick"])
            status |= report("batch fusion", compare_batch(
                batch_artifact, baseline,
                min_fused_speedup=arguments.min_fused_speedup,
                time_factor=arguments.time_factor))
        write(arguments.batch_out, batch_artifact)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
