"""Second-order polynomial regression, as drawn in Figure 4 (right),
plus the CI smoke run.

The paper summarises the output-size experiment by fitting a 2nd-order
polynomial per algorithm through the (output size, response time) points
and plotting the fitted curves.

:func:`smoke_run` (also ``python -m repro.bench.regression``) executes a
tiny representative workload through the engine layer -- cold and warm
compiled-preference cache, with tracing on -- checks every algorithm
agrees, and emits a JSON artifact with timings, work counters, trace
events and cache statistics.  Continuous integration runs it on every
push and uploads the artifact, so timing or counter regressions are
visible without rerunning the full figure suite.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PolynomialFit", "fit_polynomial", "smoke_run", "main"]


@dataclass(frozen=True)
class PolynomialFit:
    """Least-squares fit ``time = c0 + c1 x + c2 x^2`` with its quality."""

    coefficients: tuple[float, ...]
    r_squared: float

    def predict(self, x: Sequence[float] | np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.polyval(self.coefficients[::-1], x)


def fit_polynomial(x: Sequence[float], y: Sequence[float],
                   degree: int = 2) -> PolynomialFit:
    """Fit ``y ~ poly(x)`` of the given degree; returns the coefficients
    in ascending-power order along with the R² of the fit."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if x.size < degree + 1:
        raise ValueError(
            f"need at least {degree + 1} points for a degree-{degree} fit"
        )
    coeffs_desc = np.polyfit(x, y, degree)
    predictions = np.polyval(coeffs_desc, x)
    residual = float(((y - predictions) ** 2).sum())
    total = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PolynomialFit(tuple(coeffs_desc[::-1]), r_squared)


# -- CI smoke run ------------------------------------------------------------

SMOKE_ALGORITHMS = ("naive", "bnl", "sfs", "less", "osdc")


def smoke_run(*, rows: int = 1500, dims: int = 6, expressions: int = 3,
              seed: int = 2015) -> dict:
    """Run a tiny workload through the engine layer; return the artifact.

    For each sampled p-expression every algorithm in
    :data:`SMOKE_ALGORITHMS` runs twice against a shared preference
    cache (first run cold, second warm) with tracing enabled.  Raises
    if any algorithm disagrees with the ``naive`` oracle.  A final
    2-worker :class:`~repro.engine.pool.WorkerPool` run cross-checks
    the pooled execution path against the same oracle.
    """
    from ..algorithms.base import Stats, get_algorithm
    from ..engine import ExecutionContext, PreferenceCache
    from ..sampling.random_pexpr import PExpressionSampler

    rng = random.Random(seed)
    data_rng = np.random.default_rng(seed)
    sampler = PExpressionSampler([f"A{i}" for i in range(dims)])
    ranks = data_rng.normal(size=(rows, dims)).round(2)
    cache = PreferenceCache()
    # clear() resets the hit/miss counters, so keep running totals here
    totals = {"hits": 0, "misses": 0}

    def drain_counters() -> None:
        snapshot = cache.stats()
        totals["hits"] += snapshot["hits"]
        totals["misses"] += snapshot["misses"]

    runs = []
    for task in range(expressions):
        graph = sampler.sample_graph(rng)
        expected = None
        for name in SMOKE_ALGORITHMS:
            function = get_algorithm(name)
            timings = {}
            for phase in ("cold", "warm"):
                if phase == "cold":
                    drain_counters()
                    cache.clear()
                stats = Stats()
                context = ExecutionContext.create(stats=stats, trace=64,
                                                  cache=cache)
                start = time.perf_counter()
                result = function(ranks, graph, context=context)
                timings[phase] = time.perf_counter() - start
            if expected is None:
                expected = result
            elif not np.array_equal(result, expected):
                raise AssertionError(
                    f"{name} disagrees with the oracle on task {task}"
                )
            runs.append({
                "task": task,
                "algorithm": name,
                "cold_seconds": timings["cold"],
                "warm_seconds": timings["warm"],
                "output_size": int(np.asarray(result).size),
                "dominance_tests": stats.dominance_tests,
                "passes": stats.passes,
                "recursive_calls": stats.recursive_calls,
                "trace": context.trace.to_json() if context.trace else [],
            })
    drain_counters()

    # a 2-worker pool run over the last sampled expression: checks the
    # whole pooled path (shared memory, chunk dispatch, tree merge,
    # stats aggregation) agrees with the oracle on every CI push
    from ..engine.pool import WorkerPool

    pool_stats = Stats()
    with WorkerPool(2) as pool:
        pool.run_query(ranks, graph)  # cold: fork + registration
        start = time.perf_counter()
        pooled = pool.run_query(ranks, graph, chunks=2,
                                context=ExecutionContext(
                                    stats=pool_stats))
        pool_seconds = time.perf_counter() - start
    if not np.array_equal(pooled, expected):
        raise AssertionError("pooled run disagrees with the oracle")

    return {
        "workload": {"rows": rows, "dims": dims,
                     "expressions": expressions, "seed": seed},
        "runs": runs,
        "cache": {**cache.stats(), **totals},
        "pool": {
            "workers": 2,
            "warm_seconds": pool_seconds,
            "output_size": int(np.asarray(pooled).size),
            "chunk_skylines": [
                int(s) for s in pool_stats.extra["chunk_skylines"]],
            "dominance_tests": pool_stats.dominance_tests,
            "kernel": pool_stats.extra.get("kernel"),
        },
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="engine-layer smoke benchmark (CI artifact)")
    parser.add_argument("--out", default="bench-smoke.json",
                        help="path of the JSON artifact to write")
    parser.add_argument("--rows", type=int, default=1500)
    parser.add_argument("--dims", type=int, default=6)
    parser.add_argument("--expressions", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2015)
    arguments = parser.parse_args(argv)
    artifact = smoke_run(rows=arguments.rows, dims=arguments.dims,
                         expressions=arguments.expressions,
                         seed=arguments.seed)
    with open(arguments.out, "w", encoding="utf-8") as sink:
        json.dump(artifact, sink, indent=2)
    cold = sum(run["cold_seconds"] for run in artifact["runs"])
    warm = sum(run["warm_seconds"] for run in artifact["runs"])
    print(f"smoke run: {len(artifact['runs'])} runs, "
          f"cold {cold:.3f}s vs warm {warm:.3f}s, "
          f"cache {artifact['cache']}, "
          f"pool out={artifact['pool']['output_size']} in "
          f"{artifact['pool']['warm_seconds']:.3f}s; "
          f"wrote {arguments.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
