"""Second-order polynomial regression, as drawn in Figure 4 (right).

The paper summarises the output-size experiment by fitting a 2nd-order
polynomial per algorithm through the (output size, response time) points
and plotting the fitted curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PolynomialFit", "fit_polynomial"]


@dataclass(frozen=True)
class PolynomialFit:
    """Least-squares fit ``time = c0 + c1 x + c2 x^2`` with its quality."""

    coefficients: tuple[float, ...]
    r_squared: float

    def predict(self, x: Sequence[float] | np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.polyval(self.coefficients[::-1], x)


def fit_polynomial(x: Sequence[float], y: Sequence[float],
                   degree: int = 2) -> PolynomialFit:
    """Fit ``y ~ poly(x)`` of the given degree; returns the coefficients
    in ascending-power order along with the R² of the fit."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if x.size < degree + 1:
        raise ValueError(
            f"need at least {degree + 1} points for a degree-{degree} fit"
        )
    coeffs_desc = np.polyfit(x, y, degree)
    predictions = np.polyval(coeffs_desc, x)
    residual = float(((y - predictions) ** 2).sum())
    total = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PolynomialFit(tuple(coeffs_desc[::-1]), r_squared)
