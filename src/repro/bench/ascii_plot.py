"""Terminal-friendly charts for the benchmark reports.

The paper's figures are line plots of response time over a workload
dimension; :func:`line_plot` renders the same series as an ASCII chart so
``examples/reproduce_figures.py`` output can be eyeballed without a
plotting stack.  Supports multiple named series, optional logarithmic
axes, and marks each series with its own glyph.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_plot", "series_from_grouped"]

_GLYPHS = "ox+*#@%&"


def series_from_grouped(grouped: Mapping[object, Mapping[str, float]],
                        algorithms: Sequence[str]
                        ) -> dict[str, list[tuple[float, float]]]:
    """Convert :func:`repro.bench.harness.group_records` output into
    per-algorithm point lists (x must be numeric)."""
    series: dict[str, list[tuple[float, float]]] = {
        name: [] for name in algorithms
    }
    for x_value, per_algorithm in grouped.items():
        for name in algorithms:
            if name in per_algorithm:
                series[name].append((float(x_value),
                                     per_algorithm[name]))
    return series


def line_plot(series: Mapping[str, Sequence[tuple[float, float]]], *,
              width: int = 64, height: int = 16, log_x: bool = False,
              log_y: bool = False, x_label: str = "x",
              y_label: str = "y") -> str:
    """Render named point series as an ASCII scatter chart.

    Each series gets a glyph from ``o x + * ...``; a legend, the axis
    ranges and optional log scaling are included.  Series must be
    non-empty; log axes require strictly positive coordinates.
    """
    points = [(x, y) for rows in series.values() for x, y in rows]
    if not points:
        raise ValueError("nothing to plot")
    if log_x and any(x <= 0 for x, _ in points):
        raise ValueError("log_x requires positive x values")
    if log_y and any(y <= 0 for _, y in points):
        raise ValueError("log_y requires positive y values")

    def tx(value: float) -> float:
        return math.log10(value) if log_x else value

    def ty(value: float) -> float:
        return math.log10(value) if log_y else value

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, rows) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in rows:
            column = round((tx(x) - x_low) / x_span * (width - 1))
            row = round((ty(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = glyph

    border = "+" + "-" * width + "+"
    lines = [border]
    lines += ["|" + "".join(row) + "|" for row in grid]
    lines.append(border)
    x_scale = "log10 " if log_x else ""
    y_scale = "log10 " if log_y else ""
    lines.append(
        f"{x_label}: {x_scale}[{_fmt(x_low, log_x)} .. "
        f"{_fmt(x_high, log_x)}]   "
        f"{y_label}: {y_scale}[{_fmt(y_low, log_y)} .. "
        f"{_fmt(y_high, log_y)}]"
    )
    lines.append("legend: " + "  ".join(legend))
    return "\n".join(lines)


def _fmt(value: float, is_log: bool) -> str:
    if is_log:
        return f"{10 ** value:.3g}"
    return f"{value:.3g}"
