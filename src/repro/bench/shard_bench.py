"""Measurement core for sharded relations.

Three measurements, shared by the ``BENCH_6.json`` perf gate
(:mod:`repro.bench.perf_gate`), the ``repro-skyline shard-bench`` CLI
subcommand and ``benchmarks/bench_sharding.py``:

* :func:`measure_sharded` -- one pinned low-output workload (the same
  equicorrelated Gaussian generator the pool gate uses) evaluated three
  ways on a warm worker pool: **monolithic** scatter/gather over the
  flat rank matrix (:meth:`~repro.engine.pool.WorkerPool.run_query`),
  **sharded** scatter/gather over the per-shard registrations
  (:meth:`~repro.engine.pool.WorkerPool.run_sharded`), and the
  **maintained serve** path, where the relation's tracked per-shard
  skylines are tree-merged on the pool
  (:meth:`~repro.core.sharding.ShardedRelation.p_skyline`).  The
  monolithic answer is the correctness oracle for both sharded runs.
  The serve path only touches the per-shard skylines -- a few hundred
  rows instead of all ``n`` -- which is where the sharded layout earns
  its speedup.
* :func:`measure_insert_overhead` -- per-row insert throughput of a
  :class:`~repro.core.sharding.ShardedPSkylineMaintainer` against a
  single flat :class:`~repro.algorithms.incremental.PSkylineMaintainer`
  on the same pinned stream.  Routing a write touches exactly one
  shard, so the sharded maintainer must stay within a small constant
  factor of the flat one.
* :func:`measure_shard_scaling` -- the serve/monolithic trade-off as a
  function of the shard count (the shard-count sweep for the CLI and
  the benchmark harness).

All workloads are pinned by seed (they reuse
:func:`~repro.bench.pool_bench.pinned_parallel_case`), so output sizes,
per-shard skyline sizes and the relation version are exactly
reproducible and the perf gate can compare them against a committed
baseline byte for byte.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..algorithms.base import Stats
from ..engine import ExecutionContext
from .pool_bench import DEFAULT_ALPHA, pinned_parallel_case

__all__ = ["build_tracked_relation", "measure_sharded",
           "measure_insert_overhead", "measure_shard_scaling"]

#: Timing repeats for the insert-overhead measurement; inserts mutate
#: the maintainer, so each repeat rebuilds it and the minimum is kept.
INSERT_REPEATS = 3


def build_tracked_relation(ranks: np.ndarray, graph, shards: int):
    """A hash-sharded relation over ``ranks`` with ``graph`` tracked."""
    from ..core.sharding import ShardedRelation

    relation = ShardedRelation.from_array(ranks,
                                          names=list(graph.names),
                                          shards=shards)
    relation.track(graph)
    return relation


def measure_sharded(rows: int, dims: int, *, shards: int = 4,
                    workers: int = 4, alpha: float = DEFAULT_ALPHA,
                    seed: int = 2015) -> dict:
    """Monolithic vs sharded scatter/gather vs maintained serve, all on
    one warm pool over one pinned workload."""
    from ..engine.pool import WorkerPool

    ranks, graph = pinned_parallel_case(rows, dims, alpha, seed)
    relation = build_tracked_relation(ranks, graph, shards)

    with WorkerPool(workers) as pool:
        # monolithic oracle: first query absorbs the one-off
        # shared-memory registration, the second is the steady state
        pool.run_query(ranks, graph, chunks=workers)
        start = time.perf_counter()
        expected = pool.run_query(ranks, graph, chunks=workers)
        monolithic_seconds = time.perf_counter() - start

        with relation.snapshot() as snapshot:
            arrays = [shard.ranks for shard in snapshot.shards
                      if len(shard)]
            gid_of = np.concatenate(
                [gids for shard, gids in zip(snapshot.shards,
                                             snapshot.gids)
                 if len(shard)])
            # untracked sharded scatter/gather (same warm-then-time)
            pool.run_sharded(arrays, graph)
            start = time.perf_counter()
            virtual = pool.run_sharded(arrays, graph)
            scatter_seconds = time.perf_counter() - start
        scatter_gids = np.sort(gid_of[virtual])
        if not np.array_equal(scatter_gids, expected):
            raise AssertionError(
                "sharded scatter/gather disagrees with the monolithic "
                "pool run")

        # maintained serve: merge the tracked per-shard skylines on the
        # pool's tree merge -- no full scan of the data
        relation.p_skyline(graph, pool=pool)
        stats = Stats()
        start = time.perf_counter()
        served = relation.p_skyline(graph, pool=pool, stats=stats)
        serve_seconds = time.perf_counter() - start

    maintained = relation.skyline_gids(graph)
    if not np.array_equal(maintained, expected):
        raise AssertionError(
            "maintained sharded skyline disagrees with the monolithic "
            "pool run")
    if len(served) != expected.size:
        raise AssertionError(
            "served relation size disagrees with the monolithic run")

    shard_info = stats.extra["shards"]
    return {
        "name": f"sharded-n{rows}-d{dims}-s{shards}-w{workers}",
        "rows": int(rows),
        "d": int(dims),
        "alpha": float(alpha),
        "shards": int(shards),
        "workers": int(workers),
        "partition": shard_info["partition"],
        "version": int(relation.version),
        "output_size": int(expected.size),
        "shard_skylines": [int(s) for s in shard_info["skylines"]],
        "shard_rows": [int(r) for r in shard_info["rows"]],
        "monolithic_seconds": monolithic_seconds,
        "scatter_seconds": scatter_seconds,
        "serve_seconds": serve_seconds,
        "speedup_serve_over_monolithic":
            monolithic_seconds / serve_seconds,
        "speedup_scatter_over_monolithic":
            monolithic_seconds / scatter_seconds,
    }


def _timed_inserts(maintainer, base: np.ndarray,
                   stream: np.ndarray) -> float:
    maintainer.bulk_load(base)
    start = time.perf_counter()
    for row in stream:
        maintainer.insert(row)
    return time.perf_counter() - start


def measure_insert_overhead(base_rows: int, inserts: int, dims: int, *,
                            shards: int = 4, alpha: float = DEFAULT_ALPHA,
                            seed: int = 2015,
                            repeats: int = INSERT_REPEATS) -> dict:
    """Per-row insert cost: sharded maintainer over a flat one.

    Both maintainers bulk-load the same ``base_rows`` pinned rows, then
    insert the next ``inserts`` rows of the stream one at a time.  Each
    repeat rebuilds the maintainers (inserts mutate them); the minimum
    over ``repeats`` is kept.  Ids are append order in both, so the
    final skylines must match exactly.
    """
    from ..algorithms.incremental import PSkylineMaintainer
    from ..core.sharding import ShardedPSkylineMaintainer

    ranks, graph = pinned_parallel_case(base_rows + inserts, dims,
                                        alpha, seed)
    base, stream = ranks[:base_rows], ranks[base_rows:]
    capacity = base_rows + inserts

    single_seconds = float("inf")
    sharded_seconds = float("inf")
    for _ in range(max(1, repeats)):
        single = PSkylineMaintainer(graph, capacity=capacity)
        single_seconds = min(single_seconds,
                             _timed_inserts(single, base, stream))
        sharded = ShardedPSkylineMaintainer(graph, shards,
                                            capacity=capacity)
        sharded_seconds = min(sharded_seconds,
                              _timed_inserts(sharded, base, stream))
    if not np.array_equal(single.skyline_ids(), sharded.skyline_ids()):
        raise AssertionError(
            "sharded maintainer disagrees with the flat maintainer")

    return {
        "name": f"insert-b{base_rows}-i{inserts}-d{dims}-s{shards}",
        "base_rows": int(base_rows),
        "inserts": int(inserts),
        "d": int(dims),
        "alpha": float(alpha),
        "shards": int(shards),
        "output_size": int(single.skyline_ids().size),
        "shard_skylines": [int(s)
                           for s in sharded.shard_skyline_sizes()],
        "single_seconds": single_seconds,
        "sharded_seconds": sharded_seconds,
        "insert_overhead": sharded_seconds / single_seconds,
    }


def measure_shard_scaling(rows: int, dims: int,
                          shard_counts: Sequence[int] = (2, 4, 8), *,
                          workers: int = 4,
                          alpha: float = DEFAULT_ALPHA,
                          seed: int = 2015) -> list[dict]:
    """Warm serve and scatter/gather wall clock per shard count."""
    return [measure_sharded(rows, dims, shards=shards, workers=workers,
                            alpha=alpha, seed=seed)
            for shards in shard_counts]
