"""Benchmark harness: timed runs, workload builders, figure-style reports."""

from .ascii_plot import line_plot, series_from_grouped
from .complexity import (growth_exponent, staircase_dataset,
                         sweep_input_size, sweep_output_size)
from .harness import (RunRecord, geometric_buckets, group_records, run_pool,
                      time_algorithm)
from .regression import PolynomialFit, fit_polynomial
from .report import format_series, format_table
from .workloads import (DEFAULT, FULL, PAPER_ALGORITHMS, QUICK, Scale,
                        covertype_tasks, gaussian_tasks, nba_tasks,
                        scaling_tasks)

__all__ = [
    "growth_exponent",
    "staircase_dataset",
    "sweep_input_size",
    "sweep_output_size",
    "line_plot",
    "series_from_grouped",
    "time_algorithm",
    "run_pool",
    "group_records",
    "geometric_buckets",
    "RunRecord",
    "fit_polynomial",
    "PolynomialFit",
    "format_table",
    "format_series",
    "Scale",
    "QUICK",
    "DEFAULT",
    "FULL",
    "gaussian_tasks",
    "nba_tasks",
    "covertype_tasks",
    "scaling_tasks",
    "PAPER_ALGORITHMS",
]
