"""Tests for top-k retrieval and onion-layer peeling."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import naive, peel_layers, top_k
from repro.core.dominance import Dominance
from repro.core.extension import ExtensionOrder
from repro.core.parser import parse
from repro.core.pgraph import PGraph


class TestTopK:
    def test_prefix_of_skyline_in_ext_order(self, nrng):
        graph = PGraph.from_expression(parse("(A & B) * C"))
        ranks = nrng.integers(0, 8, size=(400, 3)).astype(float)
        skyline = set(naive(ranks, graph).tolist())
        extension = ExtensionOrder(graph)
        result = top_k(ranks, graph, 5)
        assert result.size == min(5, len(skyline))
        assert set(result.tolist()) <= skyline
        keys = [tuple(extension.keys(ranks[r].reshape(1, -1))[0])
                for r in result]
        assert keys == sorted(keys)

    def test_k_larger_than_skyline(self, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 5, size=(100, 2)).astype(float)
        skyline = set(naive(ranks, graph).tolist())
        result = top_k(ranks, graph, 50)
        assert set(result.tolist()) == skyline

    def test_k_zero_and_negative(self, nrng):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = nrng.random((10, 2))
        assert top_k(ranks, graph, 0).size == 0
        with pytest.raises(ValueError):
            top_k(ranks, graph, -1)

    def test_progressive_cost(self, nrng):
        """Asking for 1 tuple must do far less work than the full answer."""
        from repro.algorithms import Stats
        graph = PGraph.from_expression(parse("A0 * A1 * A2 * A3"),
                                       names=[f"A{i}" for i in range(4)])
        base = nrng.random((20_000, 1))
        ranks = np.hstack([base, -base + nrng.normal(0, 0.02, (20_000, 3))])
        one, full = Stats(), Stats()
        top_k(ranks, graph, 1, stats=one)
        top_k(ranks, graph, 10**9, stats=full)
        assert one.dominance_tests * 5 < full.dominance_tests


class TestPeelLayers:
    def test_layers_partition_input(self, rng, nrng):
        for _ in range(10):
            d = rng.randint(1, 5)
            names = [f"A{i}" for i in range(d)]
            graph = PGraph.from_expression(random_expression(names, rng),
                                           names=names)
            ranks = nrng.integers(0, 4, size=(120, d)).astype(float)
            layers = peel_layers(ranks, graph)
            flat = np.concatenate(layers)
            assert sorted(flat.tolist()) == list(range(120))

    def test_first_layer_is_the_pskyline(self, nrng):
        graph = PGraph.from_expression(parse("A & (B * C)"))
        ranks = nrng.integers(0, 4, size=(150, 3)).astype(float)
        layers = peel_layers(ranks, graph)
        assert layers[0].tolist() == naive(ranks, graph).tolist()

    def test_layer_index_is_height(self, nrng):
        """Layer i = longest dominator chain of length i - 1."""
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 4, size=(60, 2)).astype(float)
        dominance = Dominance(graph)
        layers = peel_layers(ranks, graph)
        layer_of = {}
        for level, layer in enumerate(layers):
            for row in layer:
                layer_of[int(row)] = level
        n = ranks.shape[0]
        height = [0] * n
        order = sorted(range(n), key=lambda i: layer_of[i])
        for i in order:
            dominators = [j for j in range(n)
                          if dominance.dominates(ranks[j], ranks[i])]
            height[i] = 1 + max((height[j] for j in dominators),
                                default=-1)
        for i in range(n):
            assert layer_of[i] == height[i]

    def test_max_layers_truncates(self, nrng):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = nrng.integers(0, 10, size=(100, 2)).astype(float)
        layers = peel_layers(ranks, graph, max_layers=2)
        assert len(layers) <= 2

    def test_lexicographic_layers_are_value_groups(self):
        graph = PGraph.from_expression(parse("A"))
        ranks = np.array([[2.0], [0.0], [1.0], [0.0]])
        layers = peel_layers(ranks, graph)
        assert [layer.tolist() for layer in layers] == [[1, 3], [2], [0]]
