"""Focused tests for the Preference SQL lexer and data generators added
late in the build (zipfian / clustered)."""

import numpy as np
import pytest

from repro.data.classic import clustered, zipfian
from repro.sql.lexer import SqlSyntaxError, tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("SeLeCt from WHERE")]
        assert kinds == ["keyword", "keyword", "keyword", "end"]

    def test_identifiers_vs_keywords(self):
        tokens = tokenize("selecting fromage")
        assert [t.kind for t in tokens[:-1]] == ["name", "name"]

    def test_numbers(self):
        tokens = tokenize("1 -2.5 3e4 -1.5E-2")
        assert [t.kind for t in tokens[:-1]] == ["number"] * 4
        assert float(tokens[2].text) == 3e4

    def test_string_quote_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "it's"

    def test_operators(self):
        texts = [t.text for t in tokenize("<= >= != <> = < >")[:-1]]
        assert texts == ["<=", ">=", "!=", "<>", "=", "<", ">"]

    def test_punctuation(self):
        kinds = {t.text: t.kind for t in tokenize("( ) , * &")[:-1]}
        assert all(kind == "punct" for kind in kinds.values())

    def test_positions_recorded(self):
        tokens = tokenize("a = 1")
        assert tokens[0].position == 0
        assert tokens[1].position == 2
        assert tokens[2].position == 4

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected"):
            tokenize("a ? b")

    def test_end_token_always_present(self):
        assert tokenize("")[-1].kind == "end"


class TestLateGenerators:
    def test_zipfian_skew(self, nrng):
        data = zipfian(20_000, 3, nrng)
        assert data.min() == 0.0
        # heavy skew: the modal value captures a big share
        zeros = (data[:, 0] == 0).mean()
        assert zeros > 0.3
        assert data.max() <= 999.0

    def test_zipfian_validation(self, nrng):
        with pytest.raises(ValueError):
            zipfian(10, 2, nrng, exponent=1.0)

    def test_clustered_modes(self, nrng):
        data = clustered(5_000, 2, nrng, clusters=3, spread=0.01)
        # points concentrate tightly around 3 centres: the number of
        # well-separated 0.1-cells with mass must be small
        cells = {(round(x, 1), round(y, 1)) for x, y in data}
        assert len(cells) < 40

    def test_clustered_validation(self, nrng):
        with pytest.raises(ValueError):
            clustered(10, 2, nrng, clusters=0)
