"""Tests for the real-data CSV loaders (exercised on synthetic files)."""

import csv

import numpy as np
import pytest

from repro.data import (COVERTYPE_ATTRIBUTES, NBA_ATTRIBUTES,
                        load_covertype_file, load_nba_csv)


@pytest.fixture
def covtype_file(tmp_path):
    path = tmp_path / "covtype.data"
    rng = np.random.default_rng(0)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for _ in range(20):
            quantitative = rng.integers(0, 300, len(COVERTYPE_ATTRIBUTES))
            soil_onehot = rng.integers(0, 2, 44)
            label = [rng.integers(1, 8)]
            writer.writerow(list(quantitative) + list(soil_onehot) + label)
    return str(path)


@pytest.fixture
def nba_file(tmp_path):
    path = tmp_path / "nba.csv"
    rng = np.random.default_rng(1)
    header = ["player", "year"] + [name.upper() for name in NBA_ATTRIBUTES]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for index in range(15):
            stats = rng.integers(0, 2000, len(NBA_ATTRIBUTES)).tolist()
            writer.writerow([f"player{index}", 1999] + stats)
        # one malformed row that must be dropped
        writer.writerow(["broken", 1999] + [""] * len(NBA_ATTRIBUTES))
    return str(path)


class TestCovertypeLoader:
    def test_keeps_quantitative_columns(self, covtype_file):
        data = load_covertype_file(covtype_file)
        assert data.shape == (20, len(COVERTYPE_ATTRIBUTES))

    def test_limit(self, covtype_file):
        assert load_covertype_file(covtype_file, limit=5).shape[0] == 5

    def test_too_few_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.data"
        path.write_text("1,2,3\n")
        with pytest.raises(ValueError, match="columns"):
            load_covertype_file(str(path))

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.data"
        path.write_text("")
        with pytest.raises(ValueError, match="no data"):
            load_covertype_file(str(path))


class TestNbaLoader:
    def test_case_insensitive_headers_and_null_drop(self, nba_file):
        data = load_nba_csv(nba_file)
        assert data.shape == (15, len(NBA_ATTRIBUTES))  # bad row dropped

    def test_limit(self, nba_file):
        assert load_nba_csv(nba_file, limit=4).shape[0] == 4

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "partial.csv"
        path.write_text("gp,minutes\n1,2\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_nba_csv(str(path))

    def test_loaded_data_is_queryable(self, nba_file):
        from repro.algorithms import osdc
        from repro.core.expressions import sky
        from repro.core.pgraph import PGraph
        data = load_nba_csv(nba_file)
        names = list(NBA_ATTRIBUTES[:5])
        graph = PGraph.from_expression(sky(names), names=names)
        result = osdc(-data[:, :5], graph)  # larger preferred
        assert result.size >= 1
