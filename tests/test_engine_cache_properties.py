"""Property test: compiled-preference caching never changes results.

Every registered algorithm must return identical indices whether the
compiled preference is built cold (empty cache) or served warm (already
cached), across arbitrary p-expressions and duplicate-heavy inputs.
Reuses the expression/ranks generators of ``test_properties``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from test_properties import expression_and_ranks
from repro.algorithms import REGISTRY
from repro.core.pgraph import PGraph
from repro.engine import PreferenceCache, ExecutionContext


@settings(max_examples=30, deadline=None)
@given(data=expression_and_ranks(max_rows=40, max_value=3),
       algorithm=st.sampled_from(sorted(REGISTRY)))
def test_cold_and_warm_cache_agree(data, algorithm):
    expr, ranks = data
    graph = PGraph.from_expression(expr, names=expr.attributes())
    cache = PreferenceCache()

    cold_context = ExecutionContext(cache=cache)
    cold = REGISTRY[algorithm](ranks, graph, context=cold_context)
    assert cache.stats()["misses"] >= (1 if ranks.shape[0] else 0)

    warm_context = ExecutionContext(cache=cache)
    misses_before = cache.stats()["misses"]
    warm = REGISTRY[algorithm](ranks, graph, context=warm_context)
    # the warm run must reuse the compiled preference, not rebuild it
    assert cache.stats()["misses"] == misses_before

    assert np.array_equal(np.asarray(cold), np.asarray(warm))
