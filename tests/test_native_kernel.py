"""The compiled ``native`` backend: probe, fallback, and dispatch.

The cross-kernel property tests (``tests/test_kernels.py``) iterate
``KERNELS`` and therefore cover whichever path the host machine has.
This module pins *both* paths explicitly by monkeypatching the probe
outcome in :mod:`repro.core.native`:

* simulated **unavailable** -- every ``"native"`` request must degrade
  to ``"bitmask"`` with a precise reason, surfaced as a
  ``kernel-fallback`` trace event and by ``--list-backends``;
* simulated **available** -- the native dispatch runs the (njit-
  compatible, still plain-Python here) kernel sources, which must agree
  bit-for-bit with the scalar and bitmask families, including the
  dense-table limit crossing and the fused multi-graph replay counters.

The ``BENCH_9`` gate logic (:func:`repro.bench.perf_gate.run_native_gate`
/ :func:`~repro.bench.perf_gate.compare_native`) is exercised on
synthetic artifacts for both backend states plus a quick real run.
"""

import random

import numpy as np
import pytest

from repro.algorithms.base import Stats, resolve_kernel
from repro.bench.perf_gate import (NATIVE_SCHEMA, compare_native,
                                   run_native_gate)
from repro.core import native
from repro.core.dominance import (DENSE_TABLE_LIMIT, Dominance,
                                  forced_kernel, native_available,
                                  screen_block_multi, select_kernel)
from repro.engine import ExecutionContext
from repro.sampling.random_pexpr import PExpressionSampler


def sample_graph(d: int, seed: int = 0):
    rng = random.Random(f"native:{d}:{seed}")
    sampler = PExpressionSampler([f"A{i}" for i in range(d)],
                                 method="counting")
    return sampler.sample_graph(rng)


@pytest.fixture
def simulate_available(monkeypatch):
    """Pretend the probe succeeded (kernel sources stay plain Python)."""
    monkeypatch.setattr(native, "_AVAILABLE", True)
    monkeypatch.setattr(native, "_REASON", None)


@pytest.fixture
def simulate_unavailable(monkeypatch):
    monkeypatch.setattr(native, "_AVAILABLE", False)
    monkeypatch.setattr(native, "_REASON", "numba missing (simulated)")


# -- probe / availability ----------------------------------------------------

def test_availability_invariant():
    available, reason = native.availability()
    assert isinstance(available, bool)
    if available:
        assert reason is None
    else:
        # the reason string must identify the failure class precisely
        assert reason.startswith(("numba missing",
                                  "JIT compile failed: "))
    assert native.available() == available
    assert native.unavailable_reason() == reason
    assert native_available() == available


def test_unavailable_probe_keeps_pure_sources_bound():
    if native.available():
        pytest.skip("compiled backend present on this host")
    # the dispatch path must still work: sources are njit-compatible
    # Python and stay bound when numba is absent or compilation failed
    assert native.screen_chunk is native._screen_chunk
    assert native.pair_flags is native._pair_flags
    assert native.pack_masks is native._pack_masks
    assert native.eval_any is native._eval_any


def test_warmup_smoke():
    # runs the bound kernels (compiled or plain) on the miniature
    # workload, cross-checking screen against flags and packed replay
    native.warmup()


# -- selection policy under both backend states ------------------------------

def test_select_kernel_degrades_without_backend(simulate_unavailable):
    assert select_kernel("native", d=6) == "bitmask"
    assert select_kernel(None, d=6, pairs=1 << 20) == "bitmask"
    with forced_kernel("native"):
        assert select_kernel(None, d=6, pairs=1 << 20) == "bitmask"
        assert select_kernel("gemm", d=6) == "bitmask"  # force wins first
    # small blocks and over-wide graphs are unaffected by availability
    assert select_kernel(None, d=6, pairs=8) == "gemm"
    assert select_kernel(None, d=70) == "gemm"


def test_select_kernel_prefers_native_with_backend(simulate_available):
    assert select_kernel(None, d=6, pairs=1 << 20) == "native"
    assert select_kernel("native", d=6) == "native"
    with forced_kernel("native"):
        assert select_kernel("gemm", d=6) == "native"
    # the auto guards still apply before the native preference
    assert select_kernel(None, d=6, pairs=8) == "gemm"
    assert select_kernel(None, d=70) == "gemm"
    with pytest.raises(ValueError, match="native"):
        select_kernel("native", d=65)


def test_resolve_kernel_records_fallback_reason(simulate_unavailable):
    dominance = Dominance(sample_graph(5))
    stats = Stats()
    context = ExecutionContext.create(stats=stats, trace=16)
    resolved = resolve_kernel(dominance, context, kernel="native",
                              pairs=1 << 20)
    assert resolved == "bitmask"
    assert stats.extra["kernel"] == "bitmask"
    events = [event for event in context.trace.events()
              if event.phase == "kernel-fallback"]
    assert len(events) == 1
    assert events[0].counters["requested"] == "native"
    assert events[0].counters["kernel"] == "bitmask"
    assert events[0].counters["reason"] == "numba missing (simulated)"


def test_resolve_kernel_fallback_event_for_forced_native(
        simulate_unavailable):
    dominance = Dominance(sample_graph(5))
    context = ExecutionContext.create(stats=Stats(), trace=16)
    with forced_kernel("native"):
        assert resolve_kernel(dominance, context, kernel=None,
                              pairs=1 << 20) == "bitmask"
    assert any(event.phase == "kernel-fallback"
               for event in context.trace.events())


def test_resolve_kernel_quiet_when_native_serves(simulate_available):
    dominance = Dominance(sample_graph(5))
    stats = Stats()
    context = ExecutionContext.create(stats=stats, trace=16)
    assert resolve_kernel(dominance, context, kernel="native",
                          pairs=1 << 20) == "native"
    assert stats.extra["kernel"] == "native"
    assert not any(event.phase == "kernel-fallback"
                   for event in context.trace.events())


def test_resolve_kernel_quiet_for_interpreted_requests(
        simulate_unavailable):
    dominance = Dominance(sample_graph(5))
    context = ExecutionContext.create(stats=Stats(), trace=16)
    assert resolve_kernel(dominance, context, kernel="bitmask",
                          pairs=1 << 20) == "bitmask"
    assert not any(event.phase == "kernel-fallback"
                   for event in context.trace.events())


# -- native dispatch agrees with the reference kernels -----------------------

@pytest.mark.parametrize("d", [3, 8, DENSE_TABLE_LIMIT,
                               DENSE_TABLE_LIMIT + 1, 20])
def test_native_dispatch_matches_scalar(simulate_available, d):
    dominance = Dominance(sample_graph(d)).prepare()
    rng = np.random.default_rng(d)
    ranks = rng.integers(0, 3, size=(40, d)).astype(float)
    ranks = np.vstack([ranks, ranks[:8]])  # duplicates stress ties
    half = ranks.shape[0] // 2
    block, against = ranks[:half], ranks[half:]
    native_screen = dominance.screen_block(block, against,
                                           kernel="native").copy()
    assert np.array_equal(
        native_screen, dominance.screen_block(block, against,
                                              kernel="scalar"))
    assert np.array_equal(
        dominance.dominators_mask(against, block[0], kernel="native"),
        dominance.dominators_mask(against, block[0], kernel="scalar"))
    assert np.array_equal(
        dominance.dominated_mask(against, block[0], kernel="native"),
        dominance.dominated_mask(against, block[0], kernel="scalar"))
    # the dense desc_union table is used exactly up to the limit
    closures, table, use_table = dominance._native_tables()
    assert use_table == (d <= DENSE_TABLE_LIMIT)
    assert closures.dtype == np.uint64
    if use_table:
        assert table.size == 1 << d
        assert table.dtype == np.uint64


def test_native_screen_chunked_early_exit_still_checks(
        simulate_available):
    dominance = Dominance(sample_graph(4))
    rng = np.random.default_rng(4)
    best = np.zeros((1, 4))
    worse = np.abs(rng.normal(size=(2000, 4))) + 1.0
    ranks = np.vstack([best, worse])
    calls = []
    mask = dominance.screen_block(ranks, ranks, chunk=64,
                                  kernel="native",
                                  check=lambda phase: calls.append(phase))
    assert mask[0] and not mask[1:].any()
    assert len(calls) >= (ranks.shape[0] + 63) // 64
    assert set(calls) == {"screen-block"}


def test_screen_block_multi_native_replay_matches_bitmask(
        simulate_available):
    d = 5
    graphs = [sample_graph(d, seed=s) for s in range(4)]
    rows = np.random.default_rng(7).integers(
        0, 4, size=(120, d)).astype(float)
    native_counters: dict = {}
    native_masks = screen_block_multi(
        [Dominance(graph) for graph in graphs], rows, chunk=48,
        counters=native_counters)
    assert native_counters["kernel"] == "native"
    bitmask_counters: dict = {}
    with forced_kernel("bitmask"):
        bitmask_masks = screen_block_multi(
            [Dominance(graph) for graph in graphs], rows, chunk=48,
            counters=bitmask_counters)
    assert bitmask_counters["kernel"] == "bitmask"
    for got, want in zip(native_masks, bitmask_masks):
        assert np.array_equal(got, want)
    # the shared-packing economics are identical across replay backends
    assert native_counters["mask_misses"] == \
        bitmask_counters["mask_misses"]
    assert native_counters["mask_hits"] == bitmask_counters["mask_hits"]


def test_screen_block_multi_forced_native_degrades(simulate_unavailable):
    d = 4
    graphs = [sample_graph(d, seed=s) for s in range(2)]
    rows = np.random.default_rng(9).integers(
        0, 4, size=(60, d)).astype(float)
    counters: dict = {}
    with forced_kernel("native"):
        masks = screen_block_multi([Dominance(g) for g in graphs], rows,
                                   counters=counters)
    assert counters["kernel"] == "bitmask"
    for graph, mask in zip(graphs, masks):
        want = Dominance(graph).screen_block(rows, rows, kernel="scalar")
        assert np.array_equal(mask, want)


def test_fusion_stats_record_replay_kernel():
    from repro.core.query import p_skyline_batch
    rows = np.random.default_rng(31).integers(
        0, 6, size=(300, 3)).astype(float)
    expressions = ["A0 & A1 & A2", "A0 & A1 & A2",  # duplicate
                   "A0 * A1 * A2",                  # contained base
                   "A0 & A1 * A2"]                  # shares the base
    stats = Stats()
    p_skyline_batch(rows, expressions, stats=stats)
    fusion = stats.extra["fusion"]
    assert fusion["screened"] == 2  # the multi replay actually ran
    expected = "native" if native_available() else "bitmask"
    assert fusion["kernel"] == expected


# -- BENCH_9 gate ------------------------------------------------------------

def _fake_artifact(*, available: bool, cores: int = 4) -> dict:
    return {
        "schema": NATIVE_SCHEMA,
        "cores": cores,
        "native_available": available,
        "native_reason": None if available else
            "numba missing (simulated)",
        "fallback_kernel": "native" if available else "bitmask",
        "screens": [{
            "name": "native-screen-d4",
            "survivors": 7,
            "timings": {"bitmask": 1.0, "native": 0.2}
            if available else {"bitmask": 1.0, "native": 1.0},
            "speedup_native_over_bitmask": 5.0 if available else 1.0,
        }],
    }


def test_compare_native_passes_both_backend_states():
    assert compare_native(_fake_artifact(available=True), None) == []
    assert compare_native(_fake_artifact(available=False), None) == []


def test_compare_native_catches_speedup_collapse():
    slow = _fake_artifact(available=True)
    slow["screens"][0]["speedup_native_over_bitmask"] = 1.2
    violations = compare_native(slow, None)
    assert any("below" in violation for violation in violations)
    # ...but a single-core host gets the wall-clock waiver
    slow["cores"] = 1
    assert compare_native(slow, None) == []


def test_compare_native_catches_broken_fallback():
    broken = _fake_artifact(available=False)
    broken["fallback_kernel"] = "native"  # resolution must degrade
    violations = compare_native(broken, None)
    assert any("resolved to" in violation for violation in violations)
    silent = _fake_artifact(available=False)
    silent["native_reason"] = None  # the reason is part of the contract
    violations = compare_native(silent, None)
    assert any("no reason" in violation for violation in violations)


def test_compare_native_baseline_survivors_always_gate():
    current = _fake_artifact(available=False)
    baseline = _fake_artifact(available=True)  # different backend...
    baseline["screens"][0]["survivors"] = 9
    violations = compare_native(current, baseline)
    assert any("survivors" in violation for violation in violations)
    # ...so timings are waived even when wildly different
    baseline["screens"][0]["survivors"] = 7
    baseline["screens"][0]["timings"] = {"bitmask": 1e-6, "native": 1e-6}
    assert compare_native(current, baseline) == []
    # same backend: the time_factor check applies
    same = _fake_artifact(available=False)
    same["screens"][0]["timings"] = {"bitmask": 1e-6, "native": 1e-6}
    violations = compare_native(current, same)
    assert any("more than" in violation for violation in violations)


def test_run_native_gate_quick_self_check():
    artifact = run_native_gate(quick=True)
    assert artifact["schema"] == NATIVE_SCHEMA
    assert artifact["native_available"] == native_available()
    expected = "native" if artifact["native_available"] else "bitmask"
    assert artifact["fallback_kernel"] == expected
    if not artifact["native_available"]:
        assert artifact["native_reason"].startswith(
            ("numba missing", "JIT compile failed: "))
        assert artifact["waivers"]
    names = {record["name"] for record in artifact["screens"]}
    assert {"native-screen-d4", "native-screen-d8",
            "native-screen-d16"} <= names
    # the quick run gates against itself (speedup floor relaxed: quick
    # workloads are small and this host may be on the fallback)
    assert compare_native(artifact, artifact,
                          min_native_speedup=0.0) == []


# -- CLI surface -------------------------------------------------------------

def test_cli_list_backends(capsys):
    from repro.cli import main
    assert main(["bench-kernels", "--list-backends"]) == 0
    out = capsys.readouterr().out
    lines = dict(line.strip().split(": ", 1)
                 for line in out.strip().splitlines())
    assert set(lines) == {"native", "bitmask", "gemm", "scalar",
                          "threads"}
    assert lines["threads"].startswith("budget ")
    assert "layer" in lines["threads"]
    for name in ("bitmask", "gemm", "scalar"):
        assert lines[name] == "available"
    if native_available():
        assert lines["native"] == "available"
    else:
        assert lines["native"].startswith("unavailable (")
        assert ("numba missing" in lines["native"] or
                "JIT compile failed" in lines["native"])
