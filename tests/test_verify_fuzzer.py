"""The shrinking fuzzer: determinism, minimization, artifacts, replay."""

import os
import random
import subprocess
import sys

import numpy as np

from repro.algorithms import naive
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.verify.corpus import load_case, replay_case
from repro.verify.fuzzer import Fuzzer, case_rng, shrink_case

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def _near_miss(ranks, graph, *, stats=None, **options):
    """Correct everywhere except: drops the highest-index maximal row
    whenever there are at least three of them."""
    correct = naive(ranks, graph)
    if correct.size >= 3:
        return correct[:-1]
    return correct


class TestDeterminism:
    def test_cases_depend_only_on_seed_and_index(self):
        first = Fuzzer(42).generate_case(7)
        second = Fuzzer(42).generate_case(7)
        assert np.array_equal(first[0], second[0])
        assert first[1] == second[1]
        assert first[2] == second[2]
        different = Fuzzer(43).generate_case(7)
        assert not (np.array_equal(first[0], different[0])
                    and first[1] == different[1])

    def test_case_rng_is_order_independent(self):
        a = case_rng(0, 5).random()
        case_rng(0, 4).random()
        assert case_rng(0, 5).random() == a


class TestShrinking:
    def test_shrinks_to_the_essential_rows(self):
        graph = PGraph.from_expression(parse("A * B"))
        nrng = np.random.default_rng(0)
        ranks = nrng.integers(0, 50, size=(200, 2)).astype(float)
        ranks[137] = [-1.0, -1.0]  # the single interesting row

        def predicate(ranks, graph):
            return bool((ranks == -1.0).all(axis=1).any())

        small, small_graph = shrink_case(ranks, graph, predicate)
        assert small.shape[0] == 1
        assert small_graph.d == 1  # columns shrink too
        assert (small == -1.0).all()

    def test_value_shrinking_compresses_domains(self):
        graph = PGraph.from_expression(parse("A"))
        ranks = np.array([[1234.5], [9000.25], [77.125]])

        def predicate(ranks, graph):
            return ranks.shape[0] == 3  # values are free to change

        small, _ = shrink_case(ranks, graph, predicate)
        # rank-compression maps the three distinct values to 0, 1, 2
        assert sorted(small[:, 0].tolist()) == [0.0, 1.0, 2.0]

    def test_non_failing_input_returned_unchanged(self):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = np.zeros((5, 2))
        small, small_graph = shrink_case(ranks, graph,
                                         lambda r, g: False)
        assert small.shape == (5, 2)
        assert small_graph is graph


class TestFuzzerRuns:
    def test_clean_registry_yields_no_failures(self):
        report = Fuzzer(3, n_range=(1, 40)).run(8)
        assert report.ok
        assert report.cases == 8

    def test_finds_and_shrinks_an_injected_bug(self, tmp_path):
        fuzzer = Fuzzer(
            0,
            algorithms={"naive": naive, "near-miss": _near_miss},
            metamorphic=False,
            n_range=(20, 60),
            artifacts_dir=str(tmp_path),
        )
        report = fuzzer.run(10)
        assert not report.ok
        failure = report.failures[0]
        assert failure.algorithm == "near-miss"
        assert failure.kind == "result-set"
        # shrunk below the trigger threshold's neighbourhood: the bug
        # needs >= 3 maximal rows, so the minimum has exactly 3
        assert failure.ranks.shape[0] <= 5
        assert failure.corpus_path is not None
        assert os.path.exists(failure.corpus_path)
        assert os.path.exists(failure.script_path)

    def test_artifact_round_trips_and_reproduces(self, tmp_path):
        fuzzer = Fuzzer(
            0,
            algorithms={"naive": naive, "near-miss": _near_miss},
            metamorphic=False,
            n_range=(20, 60),
            artifacts_dir=str(tmp_path),
        )
        failure = fuzzer.run(10).failures[0]
        entry = load_case(failure.corpus_path)
        assert entry["algorithm"] == "near-miss"
        assert np.array_equal(entry["ranks"], failure.ranks)
        assert entry["graph"] == failure.graph
        # replaying against the same pool reproduces the mismatch ...
        mismatches = replay_case(
            entry, algorithms={"naive": naive, "near-miss": _near_miss})
        assert any(m.kind == "result-set" for m in mismatches)
        # ... and against a fixed pool it comes back clean
        assert replay_case(entry,
                           algorithms={"naive": naive,
                                       "near-miss": naive}) == []


class TestCommandLine:
    def test_module_entry_point_passes_on_the_registry(self):
        env = dict(os.environ, PYTHONPATH=SRC)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.verify", "--seed", "0",
             "--cases", "5", "--quiet", "--max-n", "40"],
            capture_output=True, text=True, env=env, timeout=300)
        assert completed.returncode == 0, completed.stdout
        assert "0 failure(s)" in completed.stdout

    def test_replay_of_empty_directory_is_a_pass(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.verify", "--replay",
             str(tmp_path)],
            capture_output=True, text=True, env=env, timeout=120)
        assert completed.returncode == 0
        assert "no corpus entries" in completed.stdout
