"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.ascii_plot import line_plot, series_from_grouped


class TestLinePlot:
    def test_basic_render(self):
        chart = line_plot({"a": [(0, 0), (1, 1)]}, width=20, height=5)
        lines = chart.splitlines()
        assert lines[0] == "+" + "-" * 20 + "+"
        assert "legend: o=a" in chart
        # lowest-left and highest-right corners carry the glyph
        assert lines[5][1] == "o"
        assert lines[1][20] == "o"

    def test_multiple_series_glyphs(self):
        chart = line_plot({
            "first": [(0, 0)],
            "second": [(1, 1)],
            "third": [(2, 2)],
        })
        assert "o=first" in chart and "x=second" in chart \
            and "+=third" in chart

    def test_log_axes(self):
        chart = line_plot({"a": [(1, 1), (100, 10000)]},
                          log_x=True, log_y=True)
        assert "log10 [1 .. 100]" in chart
        assert "log10 [1 .. 1e+04]" in chart

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_plot({"a": [(0, 1)]}, log_x=True)
        with pytest.raises(ValueError):
            line_plot({"a": [(1, 0)]}, log_y=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"a": []})

    def test_single_point(self):
        chart = line_plot({"a": [(5, 5)]}, width=10, height=4)
        assert chart.count("o") >= 1

    def test_labels(self):
        chart = line_plot({"a": [(1, 2)]}, x_label="size",
                          y_label="seconds")
        assert "size:" in chart and "seconds:" in chart


class TestSeriesFromGrouped:
    def test_conversion(self):
        grouped = {1.0: {"osdc": 0.5, "bnl": 1.5}, 2.0: {"osdc": 0.7}}
        series = series_from_grouped(grouped, ["osdc", "bnl"])
        assert series["osdc"] == [(1.0, 0.5), (2.0, 0.7)]
        assert series["bnl"] == [(1.0, 1.5)]
