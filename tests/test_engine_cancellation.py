"""Cancellation mid-emission must be clean: progressive iterators stop
with :class:`QueryCancelled` after a valid prefix, and the incremental /
sliding-window maintainers roll back so no partial-window corruption is
observable.
"""

import numpy as np
import pytest

from repro.algorithms import naive, SlidingWindowPSkyline
from repro.algorithms.bbs import bbs_iter
from repro.algorithms.incremental import PSkylineMaintainer
from repro.algorithms.ranked import top_k
from repro.algorithms.sfs import sfs_iter
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.engine import (CancellationToken, ExecutionContext,
                          QueryCancelled, QueryTimeout)


class CountdownToken(CancellationToken):
    """Trips after being consulted ``fire_after`` times -- a
    deterministic stand-in for 'the user hits cancel mid-query'."""

    def __init__(self, fire_after: int):
        super().__init__()
        self.fire_after = fire_after
        self.consulted = 0

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        self.consulted += 1
        if self.consulted >= self.fire_after:
            self._event.set()
            return True
        return False

    def reset(self) -> None:
        self._event.clear()
        self.consulted = 0
        self.fire_after = 10 ** 9


def _workload(seed=7, n=200, d=3):
    nrng = np.random.default_rng(seed)
    names = [f"A{i}" for i in range(d)]
    graph = PGraph.from_expression(parse(" * ".join(names)), names=names)
    ranks = nrng.integers(0, 12, size=(n, d)).astype(float)
    return ranks, graph


class TestProgressiveIterators:
    """Cancel after k emitted results: the k results already seen are a
    valid prefix, the next pull raises QueryCancelled, nothing else."""

    @pytest.mark.parametrize("make_iter", [bbs_iter, sfs_iter],
                             ids=["bbs", "sfs"])
    def test_cancel_after_k_results(self, make_iter):
        ranks, graph = _workload()
        skyline = set(naive(ranks, graph).tolist())
        token = CancellationToken()
        context = ExecutionContext(cancel=token)
        iterator = make_iter(ranks, graph, context=context)
        emitted = [next(iterator) for _ in range(3)]
        assert set(emitted) <= skyline
        assert len(set(emitted)) == 3
        token.cancel()
        with pytest.raises(QueryCancelled):
            next(iterator)
        # the generator is finished for good, not resumable
        with pytest.raises(StopIteration):
            next(iterator)

    @pytest.mark.parametrize("make_iter", [bbs_iter, sfs_iter],
                             ids=["bbs", "sfs"])
    def test_pre_cancelled_token_emits_nothing(self, make_iter):
        ranks, graph = _workload()
        token = CancellationToken()
        token.cancel()
        iterator = make_iter(ranks, graph,
                             context=ExecutionContext(cancel=token))
        with pytest.raises(QueryCancelled):
            next(iterator)

    def test_top_k_cancel(self):
        ranks, graph = _workload()
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            top_k(ranks, graph, 5,
                  context=ExecutionContext(cancel=token))

    def test_expired_deadline_raises_timeout(self):
        ranks, graph = _workload()
        context = ExecutionContext(deadline=-1.0)
        iterator = bbs_iter(ranks, graph, context=context)
        with pytest.raises(QueryTimeout):
            next(iterator)


class TestMaintainerAtomicDelete:
    def _build_chain(self):
        """Skyline = {0}; deleting 0 promotes via a real OSDC pass."""
        graph = PGraph.from_expression(parse("A & B"))
        token = CountdownToken(fire_after=10 ** 9)
        context = ExecutionContext(cancel=token)
        maintainer = PSkylineMaintainer(graph, context=context)
        maintainer.insert([0.0, 0.0])             # id 0: dominates all
        for k in range(1, 8):
            maintainer.insert([float(k), float(k)])
        assert maintainer.skyline_ids().tolist() == [0]
        return maintainer, token

    # fire_after=1 trips the up-front check, =2 trips the first check
    # *inside* the OSDC promotion pass
    @pytest.mark.parametrize("fire_after", [1, 2])
    def test_cancel_mid_promotion_rolls_the_delete_back(self, fire_after):
        maintainer, token = self._build_chain()
        token.consulted = 0
        token.fire_after = fire_after
        with pytest.raises(QueryCancelled):
            maintainer.delete(0)
        # rolled back: tuple 0 is alive, maximal, and the answer is
        # still exactly M_pi of the alive tuples
        assert 0 in maintainer
        assert maintainer.skyline_ids().tolist() == [0]
        assert maintainer.num_alive == 8
        # retrying after the cancellation clears succeeds cleanly
        token.reset()
        maintainer.delete(0)
        assert 0 not in maintainer
        assert maintainer.skyline_ids().tolist() == [1]

    def test_cancel_before_any_mutation_on_insert(self):
        maintainer, token = self._build_chain()
        token.consulted = 0
        token.fire_after = 1
        with pytest.raises(QueryCancelled):
            # insert checks the token up front, before storing anything
            maintainer.insert([5.0, 5.0])
        assert maintainer.num_alive == 8

    def test_fuzz_delete_always_atomic(self):
        """Cancel at every possible check point in turn; after each
        failed delete the maintainer must equal M_pi of the alive set."""
        graph = PGraph.from_expression(parse("A * B"))
        nrng = np.random.default_rng(3)
        for fire_after in range(1, 10):
            token = CountdownToken(fire_after=fire_after)
            context = ExecutionContext(cancel=token)
            maintainer = PSkylineMaintainer(graph, context=context)
            rows = nrng.integers(0, 5, size=(30, 2)).astype(float)
            token.fire_after = 10 ** 9
            ids = [maintainer.insert(row) for row in rows]
            victim = int(maintainer.skyline_ids()[0])
            token.consulted = 0
            token.fire_after = fire_after
            try:
                maintainer.delete(victim)
            except QueryCancelled:
                assert victim in maintainer
            token.reset()
            alive = [i for i in ids if i in maintainer]
            expected = {alive[j] for j in
                        naive(maintainer._ranks[alive], graph)}
            assert set(maintainer.skyline_ids().tolist()) == expected


class TestSlidingWindowCancellation:
    def test_cancelled_eviction_keeps_the_window_consistent(self):
        graph = PGraph.from_expression(parse("A & B"))
        token = CountdownToken(fire_after=10 ** 9)
        stream = SlidingWindowPSkyline(
            graph, window=4, context=ExecutionContext(cancel=token))
        stream.append([0.0, 0.0])   # id 0 dominates everything after it
        for k in range(1, 4):
            stream.append([float(k), float(k)])
        assert stream.skyline_ids().tolist() == [0]
        # the next append evicts id 0 and must promote; cancel fires
        # inside that promotion pass (check 1 = delete's up-front check,
        # check 2 = the first OSDC recursion step)
        token.consulted = 0
        token.fire_after = 2
        with pytest.raises(QueryCancelled):
            stream.append([9.0, 9.0])
        # no partial-window corruption: nothing was evicted or added
        assert len(stream) == 4
        assert stream.skyline_ids().tolist() == [0]
        assert stream.contents().shape == (4, 2)
        # retry once the cancellation clears: exactly one step forward
        token.reset()
        new_id = stream.append([9.0, 9.0])
        assert len(stream) == 4
        assert new_id == 4
        expected = set(naive(stream.contents(), graph).tolist())
        ids = stream.skyline_ids().tolist()
        # ids are append order; window now holds ids 1..4
        assert {i - 1 for i in ids} == expected

    def test_windows_never_overfill_under_repeated_cancellation(self):
        graph = PGraph.from_expression(parse("A * B"))
        token = CountdownToken(fire_after=10 ** 9)
        stream = SlidingWindowPSkyline(
            graph, window=3, context=ExecutionContext(cancel=token))
        nrng = np.random.default_rng(11)
        appended = 0
        for step in range(40):
            values = nrng.integers(0, 4, size=2).astype(float)
            token.consulted = 0
            token.fire_after = 1 + step % 5
            try:
                stream.append(values)
                appended += 1
            except QueryCancelled:
                pass
            token.reset()
            assert len(stream) <= 3
            if len(stream):
                expected = set(naive(stream.contents(), graph).tolist())
                got = set(stream.skyline_ids().tolist())
                assert len(got) == len(expected)
        assert appended > 0
