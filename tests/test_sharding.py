"""Tests for sharded, MVCC-versioned relations (core.sharding)."""

import threading

import numpy as np
import pytest

from conftest import pool_segments, random_expression
from repro import Relation, lowest, highest, p_skyline, p_skyline_batch
from repro.algorithms.base import Stats
from repro.algorithms.incremental import PSkylineMaintainer
from repro.algorithms.osdc import osdc
from repro.algorithms.sliding import SlidingWindowPSkyline
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.core.sharding import (ShardMap, ShardedPSkylineMaintainer,
                                 ShardedRelation, sharded_pskyline)
from repro.engine import ExecutionContext, WorkerPool
from repro.planner import Planner
from repro.sql import PreferenceSQL


def _graph(expression: str, d: int) -> PGraph:
    return PGraph.from_expression(parse(expression),
                                  names=[f"A{i}" for i in range(d)])


class TestShardMap:
    def test_hash_routing_is_deterministic(self, nrng):
        shard_map = ShardMap.hashed(5)
        block = nrng.normal(size=(64, 3))
        routed = shard_map.shard_of_block(block)
        assert routed.shape == (64,)
        assert ((routed >= 0) & (routed < 5)).all()
        # row-at-a-time and block routing agree, and repeat exactly
        for row, shard in zip(block, routed):
            assert shard_map.shard_of(row) == shard
        assert np.array_equal(shard_map.shard_of_block(block), routed)

    def test_negative_zero_routes_like_zero(self):
        shard_map = ShardMap.hashed(7)
        assert shard_map.shard_of(np.array([-0.0, 1.0])) == \
            shard_map.shard_of(np.array([0.0, 1.0]))

    def test_range_routing_follows_boundaries(self):
        shard_map = ShardMap.ranged(3, 0, [0.0, 10.0])
        assert shard_map.shard_of(np.array([-5.0, 99.0])) == 0
        assert shard_map.shard_of(np.array([5.0, 99.0])) == 1
        assert shard_map.shard_of(np.array([50.0, 99.0])) == 2
        block = np.array([[-1.0, 0.0], [0.5, 0.0], [11.0, 0.0]])
        assert shard_map.shard_of_block(block).tolist() == [0, 1, 2]

    def test_invalid_maps_are_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap(2, "modulo")
        with pytest.raises(ValueError):
            ShardMap(3, "range", boundaries=[2.0, 1.0])
        with pytest.raises(ValueError):
            ShardMap(3, "range")


class TestShardedPSkyline:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_equals_monolithic_osdc(self, nrng, shards):
        ranks = nrng.normal(size=(400, 4))
        graph = _graph("(A0 & A1) * (A2 & A3)", 4)
        expected = osdc(ranks, graph)
        got = sharded_pskyline(ranks, graph, shards=shards)
        assert np.array_equal(got, expected)

    def test_random_expressions(self, nrng, rng):
        names = [f"A{i}" for i in range(5)]
        for _ in range(10):
            graph = PGraph.from_expression(
                random_expression(names, rng), names=names)
            ranks = nrng.integers(0, 8, size=(120, 5)).astype(float)
            assert np.array_equal(
                sharded_pskyline(ranks, graph, shards=3),
                osdc(ranks, graph))

    def test_range_shard_map(self, nrng):
        ranks = nrng.normal(size=(300, 3))
        graph = _graph("A0 * A1 * A2", 3)
        shard_map = ShardMap.ranged(4, 1, [-0.5, 0.0, 0.5])
        assert np.array_equal(
            sharded_pskyline(ranks, graph, shard_map=shard_map),
            osdc(ranks, graph))


class TestShardedMaintainer:
    def test_matches_recompute_under_churn(self, nrng, rng):
        graph = _graph("A0 & (A1 * A2)", 3)
        maintainer = ShardedPSkylineMaintainer(graph, 3)
        rows: dict[int, np.ndarray] = {}
        for _ in range(200):
            if rows and rng.random() < 0.3:
                victim = rng.choice(sorted(rows))
                maintainer.delete(victim)
                del rows[victim]
            else:
                row = nrng.integers(0, 10, size=3).astype(float)
                rows[maintainer.insert(row)] = row
            alive = sorted(rows)
            expected = {alive[j] for j in osdc(
                np.array([rows[i] for i in alive]), graph)} \
                if alive else set()
            assert set(maintainer.skyline_ids().tolist()) == expected
        assert maintainer.num_alive == len(rows)

    def test_bulk_load_equals_sequential_inserts(self, nrng):
        graph = _graph("A0 * (A1 & A2)", 3)
        block = nrng.normal(size=(150, 3))
        bulk = ShardedPSkylineMaintainer(graph, 4)
        ids = bulk.bulk_load(block)
        assert ids.tolist() == list(range(150))
        sequential = ShardedPSkylineMaintainer(graph, 4)
        for row in block:
            sequential.insert(row)
        assert np.array_equal(bulk.skyline_ids(),
                              sequential.skyline_ids())
        assert np.array_equal(bulk.skyline_ids(),
                              np.sort(osdc(block, graph)))

    def test_matches_flat_maintainer(self, nrng):
        graph = _graph("(A0 & A1) * A2", 3)
        block = nrng.normal(size=(100, 3))
        flat = PSkylineMaintainer(graph)
        sharded = ShardedPSkylineMaintainer(graph, 3)
        for row in block:
            flat.insert(row)
            sharded.insert(row)
        assert np.array_equal(flat.skyline_ids(), sharded.skyline_ids())
        flat.delete(int(flat.skyline_ids()[0]))
        sharded.delete(int(sharded.skyline_ids()[0]))
        assert np.array_equal(flat.skyline_ids(), sharded.skyline_ids())


class TestShardedRelation:
    def test_roundtrip_and_version_bumps(self):
        relation = ShardedRelation.from_records(
            [{"price": 3.0, "hp": 100.0}, {"price": 2.0, "hp": 90.0}],
            [lowest("price"), highest("hp")], shards=2)
        assert relation.names == ("price", "hp")
        assert len(relation) == 2
        assert relation.version == 1  # one bulk load
        gid = relation.insert({"price": 1.0, "hp": 120.0})
        assert relation.version == 2
        relation.delete(gid)
        assert relation.version == 3
        assert gid not in relation

    def test_insert_validation(self):
        relation = ShardedRelation.from_records(
            [{"a": 1.0, "b": 2.0}], [lowest("a"), lowest("b")],
            shards=2)
        with pytest.raises(ValueError, match="missing attribute"):
            relation.insert({"a": 1.0})
        with pytest.raises(ValueError, match="non-finite"):
            relation.insert_ranks([1.0, float("nan")])
        with pytest.raises(ValueError, match="non-finite"):
            relation.insert_ranks([1.0, float("inf")])
        with pytest.raises(KeyError):
            relation.delete(99)

    def test_tracked_serve_tracks_churn(self, nrng, rng):
        ranks = nrng.integers(0, 12, size=(80, 3)).astype(float)
        graph = _graph("A0 * (A1 & A2)", 3)
        relation = ShardedRelation.from_array(
            ranks, names=["A0", "A1", "A2"], shards=3)
        relation.track(graph)
        rows = {gid: row for gid, row in enumerate(ranks)}
        for _ in range(60):
            if rows and rng.random() < 0.4:
                victim = rng.choice(sorted(rows))
                relation.delete(victim)
                del rows[victim]
            else:
                row = nrng.integers(0, 12, size=3).astype(float)
                rows[relation.insert_ranks(row)] = row
            alive = sorted(rows)
            expected = np.asarray(alive, dtype=np.intp)[
                np.sort(osdc(np.array([rows[i] for i in alive]), graph))]
            assert np.array_equal(relation.skyline_gids(graph),
                                  np.sort(expected))

    def test_track_after_writes_replays_existing_rows(self, nrng):
        ranks = nrng.normal(size=(50, 2))
        relation = ShardedRelation.from_array(ranks, names=["A0", "A1"],
                                              shards=2)
        relation.delete(3)
        relation.insert_ranks([-9.0, -9.0])
        graph = relation.track("A0 & A1")
        alive_rows = np.vstack([np.delete(ranks, 3, axis=0),
                                [[-9.0, -9.0]]])
        alive_gids = np.array([g for g in range(51) if g != 3])
        expected = np.sort(alive_gids[osdc(alive_rows, graph)])
        assert np.array_equal(relation.skyline_gids(graph), expected)

    def test_range_partitioning_from_quantiles(self, nrng):
        ranks = nrng.normal(size=(200, 2))
        relation = ShardedRelation.from_array(
            ranks, names=["A0", "A1"], shards=4, partition="range",
            column="A0")
        assert relation.shard_map.kind == "range"
        with relation.snapshot() as snapshot:
            sizes = [len(shard) for shard in snapshot.shards]
        assert sum(sizes) == 200
        assert min(sizes) > 0  # quantile cuts balance the load
        result = relation.p_skyline("A0 & A1", algorithm="osdc")
        expected = osdc(ranks, _graph("A0 & A1", 2))
        assert np.array_equal(result.ranks, ranks[np.sort(expected)])


class TestSnapshotIsolation:
    def test_pinned_snapshot_ignores_later_writes(self, nrng):
        ranks = nrng.normal(size=(60, 2))
        relation = ShardedRelation.from_array(ranks, names=["A0", "A1"],
                                              shards=2)
        graph = _graph("A0 & A1", 2)
        snapshot = relation.snapshot()
        before = snapshot.relation.ranks.copy()
        relation.insert_ranks([-99.0, -99.0])  # dominates everything
        relation.delete(0)
        assert np.array_equal(snapshot.relation.ranks, before)
        local = osdc(snapshot.relation.ranks, graph)
        expected = np.sort(snapshot.global_ids[local])
        served = relation.p_skyline(graph, snapshot=snapshot)
        assert np.array_equal(served.ranks,
                              snapshot.take_gids(expected).ranks)
        snapshot.close()

    def test_versions_are_reclaimed_on_close(self, nrng):
        relation = ShardedRelation.from_array(
            nrng.normal(size=(20, 2)), names=["A0", "A1"], shards=2)
        first = relation.snapshot()
        relation.insert_ranks([0.0, 0.0])
        second = relation.snapshot()
        assert relation.live_versions() == (first.version,
                                            second.version)
        first.close()
        first.close()  # idempotent
        assert relation.live_versions() == (second.version,)
        assert first.closed
        second.close()
        assert relation.live_versions() == ()

    def test_take_gids_rejects_missing_ids(self, nrng):
        relation = ShardedRelation.from_array(
            nrng.normal(size=(10, 2)), names=["A0", "A1"], shards=2)
        with relation.snapshot() as snapshot:
            with pytest.raises(KeyError, match="not in snapshot"):
                snapshot.take_gids([0, 77])


class TestQueryDispatch:
    def test_p_skyline_accepts_sharded_relations(self, nrng):
        ranks = nrng.normal(size=(150, 3))
        names = ["A0", "A1", "A2"]
        flat = Relation.from_array(ranks, names=names)
        sharded = ShardedRelation.from_array(ranks, names=names,
                                             shards=3)
        expression = "A0 & (A1 * A2)"
        expected = p_skyline(flat, expression)
        stats = Stats()
        got = p_skyline(sharded, expression, stats=stats)
        assert np.array_equal(got.ranks, expected.ranks)
        info = stats.extra["shards"]
        assert info["count"] == 3
        assert info["version"] == sharded.version
        assert stats.extra["relation_version"] == sharded.version

    def test_tracked_relation_serves_through_p_skyline(self, nrng):
        ranks = nrng.normal(size=(150, 3))
        names = ["A0", "A1", "A2"]
        sharded = ShardedRelation.from_array(ranks, names=names,
                                             shards=3)
        sharded.track("A0 & A1 & A2")
        stats = Stats()
        got = p_skyline(sharded, "A0 & A1 & A2", algorithm="auto",
                        stats=stats)
        assert stats.extra["shards"]["mode"] == "maintained"
        expected = p_skyline(Relation.from_array(ranks, names=names),
                             "A0 & A1 & A2")
        assert np.array_equal(got.ranks, expected.ranks)

    def test_batch_pins_one_snapshot(self, nrng):
        ranks = nrng.normal(size=(100, 3))
        names = ["A0", "A1", "A2"]
        sharded = ShardedRelation.from_array(ranks, names=names,
                                             shards=2)
        flat = Relation.from_array(ranks, names=names)
        expressions = ["A0 & A1", "A1 * A2", "(A0 & A2) * A1"]
        got = p_skyline_batch(sharded, expressions)
        expected = p_skyline_batch(flat, expressions)
        for got_relation, expected_relation in zip(got, expected):
            assert np.array_equal(got_relation.ranks,
                                  expected_relation.ranks)


class TestPlannerShardRule:
    def test_single_populated_shard(self, nrng):
        ranks = np.abs(nrng.normal(size=(50, 2))) + 10.0
        relation = ShardedRelation.from_array(
            ranks, names=["A0", "A1"],
            shards=ShardMap.ranged(3, 0, [-2.0, -1.0]))
        with relation.snapshot() as snapshot:
            plan = Planner().plan_sharded(snapshot, _graph("A0 & A1", 2))
        assert plan.algorithm == "single-shard"
        assert plan.options["shard"] == 2

    def test_small_snapshots_stay_serial(self, nrng):
        relation = ShardedRelation.from_array(
            nrng.normal(size=(100, 2)), names=["A0", "A1"], shards=2)
        with relation.snapshot() as snapshot:
            plan = Planner().plan_sharded(snapshot, _graph("A0 & A1", 2))
        assert plan.algorithm == "sharded-serial"

    def test_large_snapshots_scatter_gather(self, nrng):
        ranks = nrng.normal(size=(3000, 2))
        relation = ShardedRelation.from_array(ranks, names=["A0", "A1"],
                                              shards=2)
        planner = Planner(sharded_threshold=1000)
        with relation.snapshot() as snapshot:
            plan = planner.plan_sharded(snapshot, _graph("A0 & A1", 2))
        assert plan.algorithm == "sharded-scatter-gather"
        # end to end: the plan is recorded in stats and the trace ring,
        # and the pooled scatter/gather answer matches serial OSDC
        stats = Stats()
        context = ExecutionContext.create(stats=stats, trace=16)
        with WorkerPool(2) as pool:
            result = relation.p_skyline("A0 & A1", planner=planner,
                                        pool=pool, context=context)
        assert stats.extra["plan"]["algorithm"] == \
            "sharded-scatter-gather"
        phases = [event.phase for event in context.trace.events()]
        assert "plan" in phases and "shard-query" in phases
        expected = osdc(ranks, _graph("A0 & A1", 2))
        assert np.array_equal(result.ranks, ranks[np.sort(expected)])


class TestPreferenceSqlOverShards:
    def test_statement_over_sharded_relation(self, nrng):
        ranks = np.round(np.abs(nrng.normal(size=(80, 2))) * 10, 1)
        schema = [lowest("price"), lowest("mileage")]
        flat = Relation.from_array(ranks, schema=schema)
        sharded = ShardedRelation.from_relation(flat, shards=3)
        engine = PreferenceSQL()
        engine.register("cars", flat)
        engine.register("shard_cars", sharded)
        statement = ("SELECT price, mileage FROM {} WHERE price < 12 "
                     "PREFERRING price & mileage")
        expected = engine.execute(statement.format("cars"))
        stats = Stats()
        got = engine.execute(statement.format("shard_cars"), stats=stats)
        assert np.array_equal(got.ranks, expected.ranks)
        assert stats.extra["relation_version"] == sharded.version

    def test_writes_between_statements_are_visible(self):
        sharded = ShardedRelation.from_records(
            [{"a": 2.0}, {"a": 3.0}], [lowest("a")], shards=2)
        engine = PreferenceSQL()
        engine.register("t", sharded)
        first = engine.execute("SELECT a FROM t PREFERRING a")
        assert len(first) == 1 and first.ranks[0, 0] == 2.0
        sharded.insert({"a": 1.0})
        second = engine.execute("SELECT a FROM t PREFERRING a")
        assert len(second) == 1 and second.ranks[0, 0] == 1.0


class TestSlidingWindowShards:
    def test_sharded_window_equals_flat(self, nrng):
        graph = _graph("A0 * (A1 & A2)", 3)
        flat = SlidingWindowPSkyline(graph, window=40)
        sharded = SlidingWindowPSkyline(graph, window=40, shards=3)
        for row in nrng.integers(0, 9, size=(150, 3)).astype(float):
            flat.append(row)
            sharded.append(row)
            assert np.array_equal(flat.skyline_ids(),
                                  sharded.skyline_ids())
        assert np.array_equal(flat.contents(), sharded.contents())


class TestConcurrentWriteWhileQuery:
    def test_queries_stay_consistent_under_writes(self, nrng):
        """Writer thread churns the relation while pooled queries run;
        every query must equal serial OSDC over its own pinned
        snapshot, and no shared-memory segments may leak."""
        before = set(pool_segments())
        ranks = nrng.normal(size=(4000, 3))
        names = ["A0", "A1", "A2"]
        graph = _graph("A0 & (A1 * A2)", 3)
        relation = ShardedRelation.from_array(ranks, names=names,
                                              shards=4)
        relation.track(graph)
        stop = threading.Event()
        writer_error: list[BaseException] = []

        def churn():
            writer_rng = np.random.default_rng(7)
            gid = None
            try:
                while not stop.is_set():
                    gid = relation.insert_ranks(
                        writer_rng.normal(size=3))
                    if writer_rng.random() < 0.5:
                        relation.delete(gid)
            except BaseException as error:  # pragma: no cover
                writer_error.append(error)

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            with WorkerPool(2) as pool:
                for _ in range(8):
                    with relation.snapshot() as snapshot:
                        served = relation.p_skyline(
                            graph, snapshot=snapshot, pool=pool)
                        local = osdc(snapshot.relation.ranks, graph)
                        gids = np.sort(snapshot.global_ids[local])
                        expected = snapshot.take_gids(gids)
                    assert np.array_equal(served.ranks, expected.ranks)
        finally:
            stop.set()
            writer.join()
        assert not writer_error
        assert relation.version > 1  # the writer actually interleaved
        assert set(pool_segments()) <= before  # nothing leaked
