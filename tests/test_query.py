"""Tests for the high-level query API and the PREFERRING clause."""

import numpy as np
import pytest

from repro.algorithms import Stats
from repro.core.attributes import highest, lowest, ranked
from repro.core.expressions import Att
from repro.core.parser import ParseError
from repro.core.preferring import (evaluate_preferring, parse_preferring)
from repro.core.query import p_skyline, skyline
from repro.core.relation import Relation


@pytest.fixture
def cars():
    schema = [lowest("id"), lowest("price"), lowest("mileage"),
              ranked("transmission", ["manual", "automatic"])]
    return Relation.from_records(
        [
            {"id": 1, "price": 11500, "mileage": 50000,
             "transmission": "automatic"},
            {"id": 2, "price": 11500, "mileage": 60000,
             "transmission": "manual"},
            {"id": 3, "price": 12000, "mileage": 50000,
             "transmission": "manual"},
            {"id": 4, "price": 12000, "mileage": 60000,
             "transmission": "automatic"},
        ],
        schema,
    )


def ids(relation):
    return sorted(r["id"] for r in relation.to_records())


class TestPSkyline:
    def test_paper_example1_all_expressions(self, cars):
        assert ids(p_skyline(cars, "price")) == [1, 2]
        assert ids(p_skyline(cars, "(price * mileage) & transmission")) == [1]
        assert ids(p_skyline(cars, "(price & transmission) * mileage")) \
            == [1, 2]
        assert ids(p_skyline(cars, "mileage & transmission & price")) == [3]

    def test_accepts_ast(self, cars):
        assert ids(p_skyline(cars, Att("price"))) == [1, 2]

    def test_matrix_input_returns_indices(self):
        matrix = np.array([[1.0, 2.0], [2.0, 1.0], [2.0, 2.0]])
        result = p_skyline(matrix, "A0 * A1")
        assert result.tolist() == [0, 1]

    def test_matrix_with_projection(self):
        matrix = np.array([[9.0, 1.0], [0.0, 2.0]])
        # only A1 matters; ties on it keep both
        assert p_skyline(matrix, "A1").tolist() == [0]

    def test_every_algorithm_dispatchable(self, cars):
        from repro.algorithms import REGISTRY
        for name in REGISTRY:
            assert ids(p_skyline(cars, "(price & transmission) * mileage",
                                 algorithm=name)) == [1, 2]

    def test_unknown_algorithm(self, cars):
        with pytest.raises(KeyError):
            p_skyline(cars, "price", algorithm="nope")

    def test_unknown_attribute(self, cars):
        with pytest.raises(KeyError, match="horsepower"):
            p_skyline(cars, "price * horsepower")

    def test_stats_forwarded(self, cars):
        stats = Stats()
        p_skyline(cars, "price * mileage", algorithm="bnl", stats=stats)
        assert stats.dominance_tests > 0

    def test_bad_expression_type(self, cars):
        with pytest.raises(TypeError):
            p_skyline(cars, 42)

    def test_skyline_over_all_attributes(self, cars):
        result = skyline(cars.project(["price", "mileage"]))
        assert sorted(r["price"] for r in result.to_records()) == [11500]

    def test_highest_direction(self):
        relation = Relation.from_records(
            [{"hp": 100, "price": 10}, {"hp": 200, "price": 10}],
            [highest("hp"), lowest("price")],
        )
        result = p_skyline(relation, "hp * price")
        assert [r["hp"] for r in result.to_records()] == [200]


class TestPreferringParsing:
    def test_defaults_to_lowest(self):
        clause = parse_preferring("price & mileage")
        from repro.core.attributes import Direction
        assert clause.directions == {"price": Direction.MIN,
                                     "mileage": Direction.MIN}

    def test_keyword_prefix_stripped(self):
        clause = parse_preferring("PREFERRING lowest(a) * highest(b)")
        assert clause.attributes == ("a", "b")

    def test_case_insensitive_keywords(self):
        clause = parse_preferring("LOWEST(a) & HIGHEST(b)")
        from repro.core.attributes import Direction
        assert clause.directions["b"] is Direction.MAX

    def test_precedence_matches_pexpr_parser(self):
        clause = parse_preferring("a & b * c")
        assert str(clause.expression) == "(a & b) * c"

    @pytest.mark.parametrize("bad", [
        "", "lowest()", "lowest(a", "a &", "a ** b", "(a", "a)",
        "lowest(a) & highest(a)",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_preferring(bad)


class TestPreferringEvaluation:
    def test_matches_p_skyline(self, cars):
        result = evaluate_preferring(
            cars, "lowest(price) & (lowest(mileage) * transmission)")
        assert ids(result) == ids(
            p_skyline(cars, "price & (mileage * transmission)"))

    def test_direction_override(self):
        relation = Relation.from_records(
            [{"x": 1, "y": 1}, {"x": 2, "y": 1}],
            [lowest("x"), lowest("y")],
        )
        best_low = evaluate_preferring(relation, "lowest(x)")
        best_high = evaluate_preferring(relation, "highest(x)")
        assert [r["x"] for r in best_low.to_records()] == [1]
        assert [r["x"] for r in best_high.to_records()] == [2]

    def test_highest_on_ranked_rejected(self, cars):
        with pytest.raises(ParseError):
            evaluate_preferring(cars, "highest(transmission)")

    def test_unknown_attribute(self, cars):
        with pytest.raises(KeyError):
            evaluate_preferring(cars, "lowest(horsepower)")

    def test_algorithm_dispatch(self, cars):
        result = evaluate_preferring(cars, "lowest(price)",
                                     algorithm="bnl")
        assert ids(result) == [1, 2]
