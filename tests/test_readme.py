"""Guard: the README quick-start snippet must actually run.

Extracts the first fenced ``python`` block from README.md and executes
it; documentation that silently rots is worse than none.
"""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def extract_python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    blocks = extract_python_blocks(README.read_text())
    assert len(blocks) >= 2


def test_quickstart_block_executes():
    blocks = extract_python_blocks(README.read_text())
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    best = namespace["best"]
    records = best.to_records()
    # the paper's Example 1, expression 3: cars 1 and 2 win
    assert len(records) == 2
    assert {record["price"] for record in records} == {11500}


def test_preferring_block_executes():
    blocks = extract_python_blocks(README.read_text())
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
    exec(compile(blocks[1], "<README preferring>", "exec"), namespace)
