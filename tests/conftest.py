"""Shared test helpers.

``semantic_dominates`` evaluates ``t' ≻_pi t`` *directly from the
definitions* of Pareto and prioritized accumulation (Section 2.1), by
structural recursion over the expression -- no p-graphs involved.  It is
the ground-truth oracle against which the Proposition 1 bitmask machinery
and every algorithm are validated.

``pool_segments`` lists the worker-pool shared-memory segments this
process currently owns, so pool and sharding tests can assert nothing
leaked across a query.
"""

from __future__ import annotations

import glob
import os
import random

import numpy as np
import pytest

from repro.core.expressions import Att, Pareto, PExpr, Prioritized, pareto, prioritized


def pool_segments() -> list[str]:
    """Shared-memory segments created by this process's worker pools."""
    from repro.engine.pool import SEGMENT_PREFIX

    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-{os.getpid()}-*")


def semantic_compare(expr: PExpr, u: dict, v: dict) -> str:
    """Compare two tuples (dicts attr->value) under ``expr``.

    Returns '>' (u preferred), '<', '=' (indistinguishable) or '~'
    (incomparable), evaluating the Section 2.1 definitions recursively.
    Smaller values are preferred on every attribute.
    """
    if isinstance(expr, Att):
        if u[expr.name] < v[expr.name]:
            return ">"
        if u[expr.name] > v[expr.name]:
            return "<"
        return "="
    results = [semantic_compare(child, u, v) for child in expr.children]
    if isinstance(expr, Pareto):
        # u > v iff u wins somewhere and never loses; '=' everywhere is '='
        wins = any(r == ">" for r in results)
        losses = any(r == "<" for r in results)
        ties = any(r == "~" for r in results)
        if ties or (wins and losses):
            return "~"
        if wins:
            return ">"
        if losses:
            return "<"
        return "="
    assert isinstance(expr, Prioritized)
    for result in results:
        if result != "=":
            return result
    return "="


def semantic_dominates(expr: PExpr, u: dict, v: dict) -> bool:
    return semantic_compare(expr, u, v) == ">"


def random_expression(names, rng: random.Random) -> PExpr:
    """A random p-expression tree over exactly ``names`` (not uniform over
    p-graphs, but covers deep/unbalanced shapes the uniform sampler
    rarely emits)."""
    names = list(names)
    if len(names) == 1:
        return Att(names[0])
    rng.shuffle(names)
    split = rng.randint(1, len(names) - 1)
    operator = rng.choice([pareto, prioritized])
    return operator(random_expression(names[:split], rng),
                    random_expression(names[split:], rng))


def as_dicts(ranks: np.ndarray, names) -> list[dict]:
    return [dict(zip(names, row)) for row in ranks]


@pytest.fixture
def rng():
    return random.Random(20150531)  # SIGMOD'15 start date


@pytest.fixture
def nrng():
    return np.random.default_rng(20150531)
