"""Property-based tests for the Preference SQL WHERE evaluator: random
condition trees vs. a per-row interpreter."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.attributes import lowest
from repro.core.relation import Relation
from repro.sql import PreferenceSQL
from repro.sql.ast import Comparison, Logical, Not
from repro.sql.parser import parse_query

_COLUMNS = ("a", "b", "c")


@st.composite
def conditions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        column = draw(st.sampled_from(_COLUMNS))
        operator = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        literal = float(draw(st.integers(min_value=0, max_value=4)))
        return Comparison(column, operator, literal)
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(conditions(depth=depth + 1)))
    return Logical(kind, draw(conditions(depth=depth + 1)),
                   draw(conditions(depth=depth + 1)))


def render(condition) -> str:
    if isinstance(condition, Comparison):
        return f"{condition.column} {condition.operator} " \
               f"{condition.literal:g}"
    if isinstance(condition, Not):
        return f"NOT ({render(condition.operand)})"
    return (f"({render(condition.left)}) {condition.operator.upper()} "
            f"({render(condition.right)})")


def interpret(condition, record) -> bool:
    import operator as op
    table = {"=": op.eq, "!=": op.ne, "<": op.lt, "<=": op.le,
             ">": op.gt, ">=": op.ge}
    if isinstance(condition, Comparison):
        return table[condition.operator](record[condition.column],
                                         condition.literal)
    if isinstance(condition, Not):
        return not interpret(condition.operand, record)
    left = interpret(condition.left, record)
    right = interpret(condition.right, record)
    return left and right if condition.operator == "and" \
        else left or right


@settings(max_examples=80, deadline=None)
@given(condition=conditions(),
       rows=st.lists(st.tuples(*[st.integers(0, 4)] * 3),
                     min_size=0, max_size=25))
def test_where_matches_row_interpreter(condition, rows):
    relation = Relation.from_records(
        [dict(zip(_COLUMNS, row)) for row in rows],
        [lowest(name) for name in _COLUMNS],
    )
    engine = PreferenceSQL()
    engine.register("t", relation)
    statement = f"SELECT * FROM t WHERE {render(condition)}"
    # the statement must survive its own textual round trip
    parsed = parse_query(statement)
    assert parsed.where is not None
    result = engine.execute(statement)
    expected = [record for record in relation.to_records()
                if interpret(condition, record)]
    key = lambda r: (r["a"], r["b"], r["c"])  # noqa: E731
    assert sorted(map(key, result.to_records())) == \
        sorted(map(key, expected))


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                     min_size=0, max_size=20),
       k=st.integers(0, 6))
def test_top_k_is_prefix_of_full_preferring(rows, k):
    relation = Relation.from_records(
        [{"a": a, "b": b} for a, b in rows],
        [lowest("a"), lowest("b")],
    )
    engine = PreferenceSQL()
    engine.register("t", relation)
    full = engine.execute(
        "SELECT * FROM t PREFERRING lowest(a) * lowest(b)")
    top = engine.execute(
        f"SELECT * FROM t PREFERRING lowest(a) * lowest(b) TOP {k}")
    assert len(top) == min(k, len(full))
    key = lambda r: (r["a"], r["b"])  # noqa: E731
    top_keys = set(map(key, top.to_records()))
    full_keys = set(map(key, full.to_records()))
    assert top_keys <= full_keys
