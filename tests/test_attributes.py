"""Unit tests for attribute specs and rank encoding."""

import numpy as np
import pytest

from repro.core.attributes import Attribute, Direction, highest, lowest, ranked


class TestConstruction:
    def test_lowest_default(self):
        attribute = lowest("price")
        assert attribute.direction is Direction.MIN
        assert str(attribute) == "min(price)"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            lowest("")

    def test_ranked_requires_order(self):
        with pytest.raises(ValueError):
            Attribute("t", Direction.RANKED)

    def test_ranked_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ranked("t", ["a", "b", "a"])

    def test_order_only_for_ranked(self):
        with pytest.raises(ValueError):
            Attribute("t", Direction.MIN, ("a", "b"))


class TestEncoding:
    def test_lowest_is_identity(self):
        encoded = lowest("x").encode([3.0, 1.0, 2.0])
        assert encoded.tolist() == [3.0, 1.0, 2.0]

    def test_highest_negates(self):
        encoded = highest("x").encode([3.0, 1.0])
        assert encoded.tolist() == [-3.0, -1.0]

    def test_ranked_maps_to_positions(self):
        attribute = ranked("t", ["manual", "automatic"])
        encoded = attribute.encode(["automatic", "manual", "manual"])
        assert encoded.tolist() == [1.0, 0.0, 0.0]

    def test_ranked_rejects_unknown_value(self):
        attribute = ranked("t", ["a", "b"])
        with pytest.raises(ValueError, match="not in the declared"):
            attribute.encode(["a", "c"])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            lowest("x").encode([1.0, float("nan")])

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(ValueError):
            lowest("x").encode(np.ones((2, 2)))


class TestDecoding:
    def test_round_trip_lowest(self):
        attribute = lowest("x")
        values = [3.0, 1.0, 2.0]
        assert np.asarray(
            attribute.decode(attribute.encode(values))).tolist() == values

    def test_round_trip_highest(self):
        attribute = highest("x")
        values = [3.0, 1.0]
        assert np.asarray(
            attribute.decode(attribute.encode(values))).tolist() == values

    def test_round_trip_ranked(self):
        attribute = ranked("t", ["a", "b", "c"])
        values = ["c", "a", "b"]
        assert attribute.decode(attribute.encode(values)) == values
