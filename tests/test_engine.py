"""Tests for the engine layer: ExecutionContext, the compiled-preference
cache, deadlines/cancellation on every evaluation path, tracing, and the
memory budget."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import REGISTRY, ensure_context
from repro.algorithms.parallel import parallel_osdc
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.core.query import p_skyline
from repro.core.relation import Relation
from repro.engine import (CancellationToken, ExecutionContext,
                          MemoryBudgetExceeded, PreferenceCache,
                          QueryCancelled, QueryTimeout, TraceBuffer,
                          compile_preference, default_cache)
from repro.engine.compiled import graph_key
from repro.sql.executor import PreferenceSQL


GRAPH = PGraph.from_expression(parse("(A & B) * C"))


def expired_context(**kwargs) -> ExecutionContext:
    """A context whose deadline has already passed: the first check
    raises, making timeout tests deterministic."""
    return ExecutionContext(deadline=time.monotonic() - 1.0, **kwargs)


def some_ranks(n: int = 2000, d: int = 3, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=(n, d)).astype(np.float64)


class TestCompiledPreference:
    def test_flags(self):
        pareto = PGraph.from_expression(parse("A * B * C"))
        chain = PGraph.from_expression(parse("A & B & C"))
        assert compile_preference(pareto).is_pareto
        assert not compile_preference(pareto).is_chain
        assert compile_preference(chain).is_chain
        assert compile_preference(chain).is_weak_order
        assert compile_preference(GRAPH).is_weak_order is \
            GRAPH.is_weak_order()

    def test_same_graph_hits_the_cache(self):
        cache = PreferenceCache()
        first = compile_preference(GRAPH, cache)
        twin = PGraph(GRAPH.names, GRAPH.closure)
        second = compile_preference(twin, cache)
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = PreferenceCache(maxsize=2)
        graphs = [PGraph.empty([f"A{i}", f"B{i}"]) for i in range(3)]
        for graph in graphs:
            compile_preference(graph, cache)
        assert cache.stats()["size"] == 2
        # graphs[0] was evicted: compiling it again is a miss
        misses = cache.stats()["misses"]
        compile_preference(graphs[0], cache)
        assert cache.stats()["misses"] == misses + 1

    def test_lru_order_refreshes_on_hit(self):
        cache = PreferenceCache(maxsize=2)
        a, b, c = (PGraph.empty([f"A{i}", f"B{i}"]) for i in range(3))
        compile_preference(a, cache)
        compile_preference(b, cache)
        compile_preference(a, cache)  # refresh a; b is now oldest
        compile_preference(c, cache)  # evicts b
        misses = cache.stats()["misses"]
        compile_preference(a, cache)
        assert cache.stats()["misses"] == misses  # a survived

    def test_graph_key_is_structural(self):
        twin = PGraph(GRAPH.names, GRAPH.closure)
        assert graph_key(GRAPH) == graph_key(twin)

    def test_screener_is_memoised(self):
        compiled = compile_preference(GRAPH, PreferenceCache())
        assert compiled.screener() is compiled.screener()

    def test_default_cache_is_used_by_algorithms(self):
        default_cache().clear()
        REGISTRY["osdc"](some_ranks(300), GRAPH)
        stats = default_cache().stats()
        assert stats["misses"] >= 1
        REGISTRY["osdc"](some_ranks(300), GRAPH)
        assert default_cache().stats()["hits"] > stats["hits"]


class TestEnsureContext:
    def test_none_creates_default(self):
        context = ensure_context(None)
        assert context.stats is None
        assert not context.interruptible

    def test_adopts_caller_stats(self):
        from repro.algorithms import Stats
        stats = Stats()
        context = ExecutionContext()
        assert ensure_context(context, stats) is context
        assert context.stats is stats

    def test_timeout_builds_deadline(self):
        context = ExecutionContext.create(timeout=60.0)
        assert context.interruptible
        remaining = context.remaining()
        assert remaining is not None and 0 < remaining <= 60.0


class TestDeadlineEveryPath:
    """Acceptance: deadline-expired queries raise QueryTimeout from every
    evaluation path -- scan, divide & conquer, external, parallel, SQL."""

    SCAN = ["naive", "bnl", "sfs", "less", "salsa", "bbs"]
    DIVIDE = ["dc", "osdc", "osdc-linear"]
    EXTERNAL = ["external-bnl", "external-sfs", "external-osdc"]

    @pytest.mark.parametrize("name", SCAN + DIVIDE + EXTERNAL)
    def test_registered_algorithms_time_out(self, name):
        with pytest.raises(QueryTimeout):
            REGISTRY[name](some_ranks(), GRAPH, context=expired_context())

    def test_parallel_times_out(self):
        # a deadline forces the serial bypass, where checks fire
        with pytest.raises(QueryTimeout):
            parallel_osdc(some_ranks(), GRAPH, context=expired_context())

    def test_p_skyline_timeout_kwarg(self):
        relation = Relation.from_array(some_ranks(),
                                       names=["A", "B", "C"])
        with pytest.raises(QueryTimeout):
            p_skyline(relation, "(A & B) * C", context=expired_context())

    def test_sql_times_out(self):
        db = PreferenceSQL()
        db.register("cars", Relation.from_array(some_ranks(),
                                                names=["A", "B", "C"]))
        with pytest.raises(QueryTimeout):
            db.execute(
                "SELECT * FROM cars PREFERRING (A & B) * C",
                context=expired_context(),
            )

    def test_timeout_and_context_are_exclusive(self):
        with pytest.raises(ValueError):
            p_skyline(some_ranks(), "A0 * A1 * A2",
                      context=ExecutionContext(), timeout=1.0)

    def test_query_timeout_is_a_timeout_error(self):
        # callers can catch the stdlib TimeoutError
        assert issubclass(QueryTimeout, TimeoutError)


class TestCancellation:
    def test_cancelled_serial_path(self):
        token = CancellationToken()
        token.cancel()
        context = ExecutionContext(cancel=token)
        with pytest.raises(QueryCancelled):
            REGISTRY["osdc"](some_ranks(), GRAPH, context=context)

    def test_cancelled_parallel_path(self):
        token = CancellationToken()
        token.cancel()
        context = ExecutionContext(cancel=token)
        assert context.interruptible
        with pytest.raises(QueryCancelled):
            parallel_osdc(some_ranks(), GRAPH, context=context,
                          processes=2, min_chunk=1)

    def test_uncancelled_token_is_harmless(self):
        token = CancellationToken()
        context = ExecutionContext(cancel=token)
        result = REGISTRY["osdc"](some_ranks(400), GRAPH, context=context)
        expected = REGISTRY["naive"](some_ranks(400), GRAPH)
        assert np.array_equal(result, expected)


class TestParallelInterruptibility:
    def test_interruptible_context_still_runs_on_the_pool(self):
        # The worker pool ships the absolute deadline and mirrors the
        # cancellation token into a shared event, so an interruptible
        # context no longer forces the serial fallback:
        # chunk_skylines is only recorded by the pooled branch.
        from repro.algorithms import Stats
        stats = Stats()
        context = ExecutionContext.create(stats=stats, timeout=3600.0)
        result = parallel_osdc(some_ranks(), GRAPH, context=context,
                               processes=2, min_chunk=1)
        assert "chunk_skylines" in stats.extra
        expected = REGISTRY["naive"](some_ranks(), GRAPH)
        assert np.array_equal(result, expected)

    def test_plain_context_runs_on_the_pool(self):
        from repro.algorithms import Stats
        stats = Stats()
        parallel_osdc(some_ranks(), GRAPH, stats=stats,
                      processes=2, min_chunk=1)
        assert "chunk_skylines" in stats.extra


class TestMemoryBudget:
    def test_bnl_window_exceeds_budget(self):
        # a Pareto query over random data has a large skyline; a budget
        # of one tuple cannot hold its window
        pareto = PGraph.from_expression(parse("A * B * C"))
        context = ExecutionContext(memory_budget=1)
        with pytest.raises(MemoryBudgetExceeded):
            REGISTRY["bnl"](some_ranks(), pareto, context=context)

    def test_budget_large_enough_is_silent(self):
        context = ExecutionContext(memory_budget=10**9)
        result = REGISTRY["bnl"](some_ranks(500), GRAPH, context=context)
        expected = REGISTRY["naive"](some_ranks(500), GRAPH)
        assert np.array_equal(result, expected)


class TestTrace:
    def test_events_are_recorded(self):
        trace = TraceBuffer()
        context = ExecutionContext(trace=trace)
        context.event("phase-one", rows=10)
        context.event("phase-two")
        phases = [event.phase for event in trace.events()]
        assert phases == ["phase-one", "phase-two"]
        assert trace.events()[0].counters == {"rows": 10}

    def test_ring_buffer_drops_oldest(self):
        trace = TraceBuffer(capacity=2)
        context = ExecutionContext(trace=trace)
        for index in range(5):
            context.event(f"e{index}")
        assert [event.phase for event in trace.events()] == ["e3", "e4"]
        assert trace.dropped == 3

    def test_to_json_and_render(self):
        trace = TraceBuffer()
        context = ExecutionContext(trace=trace)
        context.event("scan", rows=7)
        payload = trace.to_json()
        assert payload[0]["phase"] == "scan"
        assert payload[0]["rows"] == 7
        assert "scan" in trace.render()

    def test_create_accepts_capacity(self):
        context = ExecutionContext.create(trace=4)
        assert context.trace is not None
        assert context.trace.capacity == 4
