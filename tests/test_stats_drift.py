"""Drift guard: ``Stats.merge`` must keep up with the ``Stats`` field set.

``merge`` combines counters field by field, so adding a counter without
teaching ``merge`` about it would silently drop that counter's worker
contributions (the parallel executor and the bench harness both rely on
merging).  This test assigns a distinct value to every numeric field and
fails -- naming the culprit -- if a merge leaves any of them behind.
"""

from __future__ import annotations

from dataclasses import fields

from repro.algorithms.base import Stats


def numeric_fields() -> list[str]:
    return [f.name for f in fields(Stats) if f.name != "extra"]


def test_max_fields_are_real_fields():
    names = set(numeric_fields())
    for name in Stats.MAX_FIELDS:
        assert name in names, (
            f"Stats.MAX_FIELDS names {name!r} which is not a Stats field"
        )


def test_every_numeric_field_survives_merge():
    left, right = Stats(), Stats()
    left_values, right_values = {}, {}
    for position, name in enumerate(numeric_fields()):
        left_values[name] = 1000 + 2 * position
        right_values[name] = 3 + position
        setattr(left, name, left_values[name])
        setattr(right, name, right_values[name])
    left.merge(right)
    for name in numeric_fields():
        if name in Stats.MAX_FIELDS:
            expected = max(left_values[name], right_values[name])
        else:
            expected = left_values[name] + right_values[name]
        assert getattr(left, name) == expected, (
            f"Stats.{name} was not merged: add it to Stats.merge "
            "(and to Stats.MAX_FIELDS if it is a peak, not a sum)"
        )


def test_merge_into_fresh_stats_copies_counters():
    source = Stats()
    for position, name in enumerate(numeric_fields()):
        setattr(source, name, position + 1)
    target = Stats()
    target.merge(source)
    for name in numeric_fields():
        assert getattr(target, name) == getattr(source, name), (
            f"Stats.{name} was lost when merging into empty Stats"
        )
