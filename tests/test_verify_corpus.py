"""Replay the checked-in regression corpus: every stored case must stay
fixed on every test run (the tier-1 gate on the fuzz corpus)."""

import pathlib

import pytest

from repro.verify.corpus import iter_corpus, load_case, replay_case

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_present_and_nonempty():
    assert CORPUS_DIR.is_dir()
    assert len(ENTRIES) >= 10


def test_iter_corpus_finds_every_entry():
    found = [path for path, _ in iter_corpus(str(CORPUS_DIR))]
    assert [pathlib.Path(p).name for p in found] == \
        [p.name for p in ENTRIES]


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_stays_fixed(path):
    entry = load_case(str(path))
    mismatches = replay_case(entry)
    assert mismatches == [], "\n".join(str(m) for m in mismatches)


def test_corpus_covers_every_metamorphic_transform():
    from repro.verify.metamorphic import TRANSFORMS
    stored = {load_case(str(path)).get("transform")
              for path in ENTRIES}
    assert set(TRANSFORMS) <= stored


def test_corpus_covers_multiple_algorithm_families():
    algorithms = {load_case(str(path))["algorithm"] for path in ENTRIES}
    assert {"osdc", "bbs", "sfs", "external-bnl",
            "parallel-osdc"} <= algorithms
