"""Tests for the weak-order LAYERED evaluator."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import (NotAWeakOrderError, Stats, layered, naive,
                              weak_order_layers)
from repro.core.parser import parse
from repro.core.pgraph import PGraph


class TestLayers:
    def test_skyline_is_one_layer(self):
        graph = PGraph.from_expression(parse("A * B * C"))
        assert weak_order_layers(graph) == [[0, 1, 2]]

    def test_lexicographic_is_singleton_layers(self):
        graph = PGraph.from_expression(parse("A & B & C"))
        assert weak_order_layers(graph) == [[0], [1], [2]]

    def test_mixed_layers(self):
        graph = PGraph.from_expression(parse("A & (B * C) & D"))
        assert weak_order_layers(graph) == [[0], [1, 2], [3]]

    def test_non_weak_order_rejected(self):
        graph = PGraph.from_expression(parse("(A & B) * C"))
        with pytest.raises(NotAWeakOrderError):
            weak_order_layers(graph)


class TestCorrectness:
    @pytest.mark.parametrize("text", [
        "A", "A * B", "A & B", "A & (B * C)", "(A * B) & C",
        "A & (B * C) & D", "(A * B) & (C * D)", "A & B & C & D",
        "A * B * C * D",
    ])
    @pytest.mark.parametrize("domain", [2, 4, 100])
    def test_matches_oracle(self, text, domain, nrng):
        expr = parse(text)
        graph = PGraph.from_expression(expr)
        for n in (1, 7, 120):
            ranks = nrng.integers(0, domain,
                                  size=(n, graph.d)).astype(float)
            expected = set(naive(ranks, graph).tolist())
            got = set(layered(ranks, graph).tolist())
            assert got == expected, (text, n, domain)

    def test_random_weak_orders(self, rng, nrng):
        checked = 0
        while checked < 40:
            d = rng.randint(1, 6)
            names = [f"A{i}" for i in range(d)]
            graph = PGraph.from_expression(random_expression(names, rng),
                                           names=names)
            if not graph.is_weak_order():
                continue
            checked += 1
            ranks = nrng.integers(0, 3,
                                  size=(rng.randint(1, 200), d)
                                  ).astype(float)
            assert set(layered(ranks, graph).tolist()) == \
                set(naive(ranks, graph).tolist())

    def test_empty_input(self):
        graph = PGraph.from_expression(parse("A & B"))
        assert layered(np.empty((0, 2)), graph).size == 0

    def test_non_weak_order_raises(self, nrng):
        graph = PGraph.from_expression(parse("(A & B) * C"))
        with pytest.raises(NotAWeakOrderError):
            layered(nrng.random((5, 3)), graph)

    def test_stats_count_layer_passes(self, nrng):
        graph = PGraph.from_expression(parse("A & (B * C)"))
        ranks = np.column_stack([
            np.zeros(50),                   # all tie on the top layer
            nrng.integers(0, 4, 50),
            nrng.integers(0, 4, 50),
        ]).astype(float)
        stats = Stats()
        layered(ranks, graph, stats=stats)
        assert stats.passes >= 2  # both layers inspected
