"""Tests for the Section 7.1 sampling framework: CNF encoding,
enumeration, SampleSAT and the uniform p-expression sampler."""

import random
from collections import Counter

import pytest

from repro.core.pgraph import PGraph
from repro.sampling.cnf import (EdgeVariables, model_to_pgraph, pgraph_cnf,
                                pgraph_to_model)
from repro.sampling.decompose import NotAPGraphError, decompose
from repro.sampling.enumeration import (MAX_EXACT_D, count_pgraphs,
                                        enumerate_pgraphs, sample_exact)
from repro.sampling.random_pexpr import (PExpressionSampler,
                                         sample_pexpression, sample_pgraph)
from repro.sampling.samplesat import SampleSAT, SampleSATError
from repro.sampling.sat import CNF, count_models


class TestEnumeration:
    def test_known_counts(self):
        # 1, 3, 19, 195 labelled p-graphs on 1..4 attributes; at d=4 the
        # 24 labellings of the N poset are the only posets excluded
        assert count_pgraphs(1) == 1
        assert count_pgraphs(2) == 3
        assert count_pgraphs(3) == 19
        assert count_pgraphs(4) == 195

    def test_all_enumerated_graphs_valid(self):
        for graph in enumerate_pgraphs(["A", "B", "C", "D"]):
            assert graph.is_valid()

    def test_enumeration_cap(self):
        with pytest.raises(ValueError):
            count_pgraphs(MAX_EXACT_D + 1)

    def test_exact_sampling_is_roughly_uniform(self):
        rng = random.Random(7)
        counts = Counter()
        total = 190 * 30
        for _ in range(total):
            counts[sample_exact("ABC", rng).closure] += 1
        assert len(counts) == 19
        expected = total / 19
        for frequency in counts.values():
            assert abs(frequency - expected) < 0.25 * expected


class TestCnfEncoding:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_model_count_matches_enumeration(self, d):
        cnf, _ = pgraph_cnf(d)
        assert count_models(cnf) == count_pgraphs(d)

    def test_model_round_trip(self):
        variables = EdgeVariables(4)
        names = ["A", "B", "C", "D"]
        for graph in enumerate_pgraphs(names):
            model = pgraph_to_model(graph, variables)
            assert model_to_pgraph(model, variables, names) == graph

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            pgraph_cnf(0)


class TestSampleSAT:
    def test_samples_satisfy(self):
        cnf, variables = pgraph_cnf(4)
        sampler = SampleSAT(cnf, f=0.5)
        rng = random.Random(1)
        for model in sampler.sample_many(30, rng):
            assert cnf.is_satisfied(model)
            graph = model_to_pgraph(model, variables, "ABCD")
            assert graph.is_valid()

    def test_covers_solution_space(self):
        cnf, _ = pgraph_cnf(3)
        sampler = SampleSAT(cnf, f=0.5)
        rng = random.Random(2)
        seen = {tuple(m) for m in sampler.sample_many(400, rng)}
        # all 19 p-graphs should appear within 400 near-uniform samples
        assert len(seen) == 19

    def test_unsatisfiable_raises(self):
        cnf = CNF(1, [(1,), (-1,)])
        sampler = SampleSAT(cnf, max_flips=500)
        with pytest.raises(SampleSATError):
            sampler.sample(random.Random(0))

    def test_invalid_f(self):
        with pytest.raises(ValueError):
            SampleSAT(CNF(1), f=2.0)


class TestDecompose:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_round_trip_all_small_graphs(self, d):
        names = [f"A{i}" for i in range(d)]
        for graph in enumerate_pgraphs(names):
            expr = decompose(graph)
            rebuilt = PGraph.from_expression(expr, names=names)
            assert rebuilt == graph

    def test_n_poset_rejected(self):
        graph = PGraph.from_edges("abcd",
                                  [("a", "b"), ("c", "b"), ("c", "d")])
        with pytest.raises(NotAPGraphError):
            decompose(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            decompose(PGraph([], []))


class TestSamplerApi:
    def test_auto_method_selection(self):
        small = PExpressionSampler(["A", "B", "C"])
        assert small.method == "exact"
        large = PExpressionSampler([f"A{i}" for i in range(8)])
        assert large.method == "samplesat"

    def test_exact_cap_enforced(self):
        with pytest.raises(ValueError):
            PExpressionSampler([f"A{i}" for i in range(9)], method="exact")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            PExpressionSampler(["A"], method="magic")

    @pytest.mark.parametrize("d", [2, 5, 9])
    def test_sampled_expressions_are_valid(self, d):
        rng = random.Random(3)
        names = [f"A{i}" for i in range(d)]
        for _ in range(10):
            expr = sample_pexpression(names, rng)
            assert set(expr.attributes()) == set(names)
            graph = PGraph.from_expression(expr, names=names)
            assert graph.is_valid()

    def test_samplesat_uniformity_against_exact(self):
        """SampleSAT at d=4 should put mass on *every* p-graph and no
        graph should absorb a grossly disproportionate share."""
        rng = random.Random(4)
        sampler = PExpressionSampler("ABCD", method="samplesat", f=0.5)
        counts = Counter()
        total = 2000
        for _ in range(total):
            counts[sampler.sample_graph(rng).closure] += 1
        # SampleSAT is *near*-uniform: essentially every graph should be
        # hit, and none should absorb a grossly disproportionate share
        assert len(counts) >= 0.95 * count_pgraphs(4)
        assert max(counts.values()) < 12 * total / count_pgraphs(4)

    def test_sample_pgraph_wrapper(self):
        rng = random.Random(5)
        graph = sample_pgraph(["A", "B"], rng)
        assert graph.d == 2
