"""Tests for the mini SAT toolkit."""

import pytest

from repro.sampling.sat import CNF, count_models, enumerate_models, solve


class TestCNF:
    def test_clause_validation(self):
        cnf = CNF(2)
        with pytest.raises(ValueError):
            cnf.add((0,))
        with pytest.raises(ValueError):
            cnf.add((3,))

    def test_duplicate_literals_collapsed(self):
        cnf = CNF(1, [(1, 1)])
        assert cnf.clauses == [(1,)]

    def test_is_satisfied(self):
        cnf = CNF(2, [(1, 2), (-1, -2)])
        assert cnf.is_satisfied([True, False])
        assert not cnf.is_satisfied([True, True])

    def test_unsatisfied_clauses(self):
        cnf = CNF(2, [(1,), (2,), (-1, -2)])
        assert cnf.unsatisfied_clauses([True, True]) == [2]


class TestSolve:
    def test_satisfiable(self):
        cnf = CNF(3, [(1, 2), (-1, 3), (-2, -3)])
        model = solve(cnf)
        assert model is not None
        assert cnf.is_satisfied(model)

    def test_unsatisfiable(self):
        cnf = CNF(1, [(1,), (-1,)])
        assert solve(cnf) is None

    def test_unit_propagation_chain(self):
        cnf = CNF(3, [(1,), (-1, 2), (-2, 3)])
        model = solve(cnf)
        assert model == [True, True, True]


class TestCounting:
    def test_empty_formula_counts_all(self):
        assert count_models(CNF(3)) == 8

    def test_xor_like(self):
        cnf = CNF(2, [(1, 2), (-1, -2)])
        assert count_models(cnf) == 2

    def test_count_matches_enumeration(self):
        cnf = CNF(4, [(1, 2), (-2, 3), (-1, -4), (2, 4)])
        models = list(enumerate_models(cnf))
        assert len(models) == count_models(cnf)
        assert len({tuple(m) for m in models}) == len(models)
        for model in models:
            assert cnf.is_satisfied(model)

    def test_count_matches_brute_force(self):
        import itertools
        cnf = CNF(4, [(1, -2), (2, 3, -4), (-3,), (4, 1)])
        brute = sum(
            cnf.is_satisfied(bits)
            for bits in itertools.product([False, True], repeat=4)
        )
        assert count_models(cnf) == brute
