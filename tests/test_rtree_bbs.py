"""Tests for the R-tree substrate and the BBS p-skyline algorithm."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import Stats, naive
from repro.algorithms.bbs import bbs, bbs_iter
from repro.core.extension import ExtensionOrder
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.index.rtree import RTree


class TestRTree:
    def test_structure_invariants(self, nrng):
        for n in (0, 1, 31, 32, 33, 500):
            tree = RTree(nrng.random((n, 3)), fanout=8)
            tree.validate()
            assert len(tree) == n

    def test_height_grows_logarithmically(self, nrng):
        tree = RTree(nrng.random((1000, 2)), fanout=10)
        assert tree.height == 3  # 1000 -> 100 leaves -> 10 -> 1

    def test_fanout_validation(self, nrng):
        with pytest.raises(ValueError):
            RTree(nrng.random((5, 2)), fanout=1)
        with pytest.raises(ValueError):
            RTree(nrng.random(5))

    def test_query_box_matches_linear_scan(self, nrng):
        ranks = nrng.integers(0, 10, size=(400, 3)).astype(float)
        tree = RTree(ranks, fanout=16)
        for _ in range(10):
            low = nrng.integers(0, 8, size=3).astype(float)
            high = low + nrng.integers(0, 4, size=3)
            expected = np.flatnonzero(
                ((ranks >= low) & (ranks <= high)).all(axis=1))
            got = tree.query_box(low, high)
            assert got.tolist() == expected.tolist()

    def test_empty_tree_queries(self):
        tree = RTree(np.empty((0, 2)))
        assert tree.query_box([0, 0], [1, 1]).size == 0
        assert tree.num_nodes == 0


class TestBBS:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle(self, seed, rng, nrng):
        rng.seed(seed)
        nrng = np.random.default_rng(seed)
        d = rng.randint(1, 6)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        n = rng.randint(1, 400)
        ranks = nrng.integers(0, rng.choice([3, 30]),
                              size=(n, d)).astype(float)
        expected = set(naive(ranks, graph).tolist())
        got = set(bbs(ranks, graph, fanout=8).tolist())
        assert got == expected

    def test_progressive_emission_in_ext_order(self, nrng):
        graph = PGraph.from_expression(parse("(A & B) * C"))
        extension = ExtensionOrder(graph)
        ranks = nrng.integers(0, 6, size=(300, 3)).astype(float)
        emitted = list(bbs_iter(ranks, graph))
        keys = [tuple(extension.keys(ranks[row].reshape(1, -1))[0])
                for row in emitted]
        assert keys == sorted(keys)

    def test_prunes_nodes(self, nrng):
        # correlated data: tiny skyline, most subtrees pruned
        base = nrng.random((5000, 1))
        ranks = base + nrng.normal(0, 0.01, (5000, 4))
        graph = PGraph.from_expression(parse("A0 * A1 * A2 * A3"),
                                       names=[f"A{i}" for i in range(4)])
        stats = Stats()
        result = bbs(ranks, graph, stats=stats, fanout=16)
        assert result.size < 50
        # pruning a node discards its whole subtree: the dominance-test
        # count stays far below one test per input tuple
        assert stats.pruned_by_filter > 0
        assert stats.dominance_tests < ranks.shape[0]

    def test_prebuilt_tree_reuse(self, nrng):
        ranks = nrng.random((200, 2))
        tree = RTree(ranks, fanout=8)
        graph_sky = PGraph.from_expression(parse("A0 * A1"),
                                           names=["A0", "A1"])
        graph_lex = PGraph.from_expression(parse("A0 & A1"),
                                           names=["A0", "A1"])
        assert set(bbs(ranks, graph_sky, tree=tree).tolist()) == \
            set(naive(ranks, graph_sky).tolist())
        assert set(bbs(ranks, graph_lex, tree=tree).tolist()) == \
            set(naive(ranks, graph_lex).tolist())

    def test_empty_input(self):
        graph = PGraph.from_expression(parse("A * B"))
        assert bbs(np.empty((0, 2)), graph).size == 0
