"""Cross-algorithm integration tests.

Every registered algorithm must return exactly ``M_pi(D)`` -- validated
against the naive quadratic oracle on randomized inputs covering:
duplicate-heavy domains, continuous domains, constant columns, single
tuples, empty relations, and every p-expression shape the random
generator can produce.
"""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import REGISTRY, Stats, get_algorithm, naive
from repro.core.parser import parse
from repro.core.pgraph import PGraph

ALL_ALGORITHMS = sorted(REGISTRY)


def reference(ranks, graph):
    return set(naive(ranks, graph).tolist())


class TestRegistry:
    def test_expected_algorithms_registered(self):
        assert {"naive", "bnl", "sfs", "less", "salsa", "dc", "osdc",
                "osdc-linear"} <= set(REGISTRY)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("quantum")

    def test_double_registration_rejected(self):
        from repro.algorithms.base import register
        with pytest.raises(ValueError):
            register("naive")(lambda *a, **k: None)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
class TestEdgeCases:
    def test_empty_relation(self, algorithm):
        graph = PGraph.from_expression(parse("A * B"))
        result = REGISTRY[algorithm](np.empty((0, 2)), graph)
        assert result.size == 0

    def test_single_tuple(self, algorithm):
        graph = PGraph.from_expression(parse("A & B"))
        result = REGISTRY[algorithm](np.array([[1.0, 2.0]]), graph)
        assert result.tolist() == [0]

    def test_all_duplicates(self, algorithm):
        graph = PGraph.from_expression(parse("(A & B) * C"))
        ranks = np.ones((7, 3))
        result = REGISTRY[algorithm](ranks, graph)
        assert result.tolist() == list(range(7))

    def test_constant_columns(self, algorithm):
        graph = PGraph.from_expression(parse("A & (B * C)"))
        ranks = np.column_stack([
            np.ones(10),
            np.arange(10.0),
            np.ones(10),
        ])
        result = REGISTRY[algorithm](ranks, graph)
        assert result.tolist() == [0]

    def test_total_order_returns_all_minima(self, algorithm):
        graph = PGraph.from_expression(parse("A & B"))
        ranks = np.array([[0.0, 1.0], [0.0, 1.0], [0.0, 2.0], [1.0, 0.0]])
        result = REGISTRY[algorithm](ranks, graph)
        assert result.tolist() == [0, 1]

    def test_wrong_arity_rejected(self, algorithm):
        graph = PGraph.from_expression(parse("A * B"))
        with pytest.raises(ValueError):
            REGISTRY[algorithm](np.ones((3, 3)), graph)

    def test_nan_rejected(self, algorithm):
        graph = PGraph.from_expression(parse("A * B"))
        ranks = np.ones((3, 2))
        ranks[1, 1] = np.nan
        with pytest.raises(ValueError):
            REGISTRY[algorithm](ranks, graph)


@pytest.mark.parametrize("algorithm",
                         [a for a in ALL_ALGORITHMS if a != "naive"])
@pytest.mark.parametrize("domain", [2, 5, 1000])
def test_matches_oracle_random(algorithm, domain, rng, nrng):
    for trial in range(12):
        d = rng.randint(1, 7)
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        n = rng.randint(1, 160)
        ranks = nrng.integers(0, domain, size=(n, d)).astype(float)
        expected = reference(ranks, graph)
        got = set(REGISTRY[algorithm](ranks, graph).tolist())
        assert got == expected, (algorithm, trial, d, n, domain)


def test_result_indices_are_sorted_and_unique(rng, nrng):
    names = ["A", "B", "C"]
    graph = PGraph.from_expression(parse("(A & B) * C"), names=names)
    ranks = nrng.integers(0, 4, size=(100, 3)).astype(float)
    for algorithm in ALL_ALGORITHMS:
        result = REGISTRY[algorithm](ranks, graph)
        assert result.dtype == np.intp
        assert np.all(np.diff(result) > 0)


class TestVariants:
    def test_bnl_bounded_window(self, rng, nrng):
        names = [f"A{i}" for i in range(4)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 6, size=(200, 4)).astype(float)
        expected = reference(ranks, graph)
        for window in (1, 3, 17, 400):
            got = set(REGISTRY["bnl"](ranks, graph,
                                      window_size=window).tolist())
            assert got == expected, window

    def test_bnl_invalid_window(self):
        graph = PGraph.from_expression(parse("A * B"))
        with pytest.raises(ValueError):
            REGISTRY["bnl"](np.ones((2, 2)), graph, window_size=0)

    def test_sfs_tuple_at_a_time(self, rng, nrng):
        names = [f"A{i}" for i in range(3)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 5, size=(80, 3)).astype(float)
        expected = reference(ranks, graph)
        assert set(REGISTRY["sfs"](ranks, graph,
                                   chunk_size=1).tolist()) == expected

    def test_less_filter_sizes(self, rng, nrng):
        names = [f"A{i}" for i in range(4)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 8, size=(150, 4)).astype(float)
        expected = reference(ranks, graph)
        for filter_size in (1, 5, 100, 10_000):
            got = set(REGISTRY["less"](ranks, graph,
                                       filter_size=filter_size).tolist())
            assert got == expected, filter_size

    def test_less_invalid_filter(self):
        graph = PGraph.from_expression(parse("A * B"))
        with pytest.raises(ValueError):
            REGISTRY["less"](np.ones((2, 2)), graph, filter_size=0)

    def test_dc_leaf_sizes(self, rng, nrng):
        names = [f"A{i}" for i in range(4)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 6, size=(120, 4)).astype(float)
        expected = reference(ranks, graph)
        for leaf in (1, 2, 64):
            for algorithm in ("dc", "osdc"):
                got = set(REGISTRY[algorithm](ranks, graph,
                                              leaf_size=leaf).tolist())
                assert got == expected, (algorithm, leaf)

    def test_selection_strategies(self, rng, nrng):
        from repro.algorithms.dc import SELECT_STRATEGIES
        names = [f"A{i}" for i in range(5)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 5, size=(200, 5)).astype(float)
        expected = reference(ranks, graph)
        for select in SELECT_STRATEGIES:
            for algorithm in ("dc", "osdc"):
                got = set(REGISTRY[algorithm](ranks, graph,
                                              select=select).tolist())
                assert got == expected, (algorithm, select)
        with pytest.raises(ValueError):
            REGISTRY["dc"](ranks, graph, select="nope")

    def test_osdc_without_lowdim(self, rng, nrng):
        names = [f"A{i}" for i in range(5)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 4, size=(150, 5)).astype(float)
        expected = reference(ranks, graph)
        got = set(REGISTRY["osdc"](ranks, graph, use_lowdim=False,
                                   dense_cutoff=1).tolist())
        assert got == expected


class TestStats:
    def test_stats_populated(self, nrng):
        graph = PGraph.from_expression(parse("(A & B) * C * D"))
        ranks = nrng.random((500, 4))
        for algorithm in ALL_ALGORITHMS:
            stats = Stats()
            REGISTRY[algorithm](ranks, graph, stats=stats)
            assert stats.dominance_tests > 0 or algorithm in ("dc", "osdc")

    def test_stats_merge(self):
        first = Stats(dominance_tests=3, max_depth=2, window_peak=5)
        second = Stats(dominance_tests=4, max_depth=7, window_peak=1)
        first.merge(second)
        assert first.dominance_tests == 7
        assert first.max_depth == 7
        assert first.window_peak == 5
