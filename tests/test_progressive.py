"""Tests for the progressive APIs (sfs_iter), BNL window policies, and
the new relation utilities."""

import numpy as np
import pytest

from conftest import random_expression
from repro.algorithms import REGISTRY, Stats, naive, sfs_iter
from repro.core.attributes import lowest
from repro.core.extension import ExtensionOrder
from repro.core.parser import parse
from repro.core.pgraph import PGraph
from repro.core.relation import Relation


class TestSfsIter:
    def test_emits_full_skyline_in_ext_order(self, rng, nrng):
        d = 4
        names = [f"A{i}" for i in range(d)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 6, size=(300, d)).astype(float)
        emitted = list(sfs_iter(ranks, graph))
        assert sorted(emitted) == naive(ranks, graph).tolist()
        extension = ExtensionOrder(graph)
        keys = [tuple(extension.keys(ranks[row].reshape(1, -1))[0])
                for row in emitted]
        assert keys == sorted(keys)

    def test_prefix_consumption_is_cheap(self, nrng):
        graph = PGraph.from_expression(parse("A0 * A1 * A2"),
                                       names=["A0", "A1", "A2"])
        base = nrng.random((20_000, 1))
        ranks = np.hstack([base, -base + nrng.normal(0, 0.02, (20_000, 2))])
        prefix_stats, full_stats = Stats(), Stats()
        iterator = sfs_iter(ranks, graph, stats=prefix_stats)
        first_three = [next(iterator) for _ in range(3)]
        assert len(first_three) == 3
        list(sfs_iter(ranks, graph, stats=full_stats))
        assert prefix_stats.dominance_tests * 10 < \
            full_stats.dominance_tests

    def test_empty_input(self):
        graph = PGraph.from_expression(parse("A"))
        assert list(sfs_iter(np.empty((0, 1)), graph)) == []


class TestBnlPolicies:
    @pytest.mark.parametrize("policy", ["append", "move-to-front"])
    def test_policies_are_correct(self, policy, rng, nrng):
        names = [f"A{i}" for i in range(4)]
        graph = PGraph.from_expression(random_expression(names, rng),
                                       names=names)
        ranks = nrng.integers(0, 6, size=(300, 4)).astype(float)
        expected = set(naive(ranks, graph).tolist())
        got = REGISTRY["bnl"](ranks, graph, window_size=16, policy=policy)
        assert set(got.tolist()) == expected

    def test_unknown_policy_rejected(self, nrng):
        graph = PGraph.from_expression(parse("A * B"))
        with pytest.raises(ValueError, match="policy"):
            REGISTRY["bnl"](nrng.random((10, 2)), graph, window_size=4,
                            policy="lifo")

    def test_move_to_front_saves_tests_on_skewed_input(self, nrng):
        # a dominator sitting deep in the window kills every incoming
        # tuple: move-to-front meets it first after its first hit
        graph = PGraph.from_expression(parse("A * B"))
        filler = np.column_stack([50.0 + np.arange(200.0),
                                  200.0 - np.arange(200.0)])  # staircase
        champion = np.array([[0.0, 300.0]])  # incomparable to the filler
        victims = np.column_stack([np.full(3000, 10.0),
                                   400.0 + nrng.integers(0, 5, 3000)])
        ranks = np.vstack([filler, champion, victims])
        append_stats, mtf_stats = Stats(), Stats()
        REGISTRY["bnl"](ranks, graph, window_size=500,
                        policy="append", stats=append_stats)
        REGISTRY["bnl"](ranks, graph, window_size=500,
                        policy="move-to-front", stats=mtf_stats)
        assert mtf_stats.dominance_tests < append_stats.dominance_tests


class TestRelationUtilities:
    @pytest.fixture
    def relation(self):
        return Relation.from_records(
            [{"a": 3}, {"a": 1}, {"a": 2}], [lowest("a")])

    def test_head(self, relation):
        assert len(relation.head(2)) == 2
        assert len(relation.head(99)) == 3
        with pytest.raises(ValueError):
            relation.head(-1)

    def test_sort_by(self, relation):
        assert [r["a"] for r in relation.sort_by("a")] == [1, 2, 3]
        assert [r["a"] for r in relation.sort_by("a", best_first=False)] \
            == [3, 2, 1]

    def test_concat(self, relation):
        doubled = Relation.concat([relation, relation])
        assert len(doubled) == 6
        with pytest.raises(ValueError):
            Relation.concat([])
        other = Relation.from_records([{"b": 1}], [lowest("b")])
        with pytest.raises(ValueError, match="schemas"):
            Relation.concat([relation, other])

    def test_iteration(self, relation):
        assert [record["a"] for record in relation] == [3, 1, 2]
